"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package (where
PEP 517 editable installs are unavailable) via ``python setup.py develop``.
"""

from setuptools import setup

setup()
