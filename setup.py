"""Packaging for the DeepSTUQ reproduction.

Pure setuptools (no ``pyproject.toml``): the package has no third-party
build requirements beyond setuptools itself, and keeping the configuration
here lets ``python setup.py develop`` work in environments without the
``wheel`` package (where PEP 517 editable installs are unavailable).
"""

from setuptools import find_packages, setup

setup(
    name="repro-deepstuq",
    version="0.9.0",
    description=(
        "Reproduction of DeepSTUQ (ICDE 2023): uncertainty-quantified "
        "traffic forecasting with a concurrent streaming/serving stack"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro-analyze=repro.analysis.cli:main",
        ]
    },
)
