"""HTTP gateway demo: the whole serving plane over real loopback sockets.

Run with::

    python examples/gateway_demo.py          # default sizes
    python examples/gateway_demo.py --fast   # smaller storm, a few seconds

The script stands up the ``repro.gateway`` subsystem end to end:

1. start an :class:`~repro.serving.InferenceServer` behind a
   :class:`~repro.gateway.Gateway` on an ephemeral port — every request
   below travels through a real ``ThreadingHTTPServer`` socket, exactly
   what ``curl`` would hit;
2. drive the data plane: ``POST /predict`` single and batched windows, and
   ``POST /observe`` rows into a small :class:`~repro.fleet.StreamFleet`
   until its streams warm up and return calibrated intervals;
3. run a full canary ramp purely over the admin verbs — deploy a candidate,
   give it a 30% traffic split, promote it, then deploy a bad candidate and
   roll it back — while a seeded closed-loop
   :class:`~repro.gateway.LoadGenerator` storms ``/predict`` the whole
   time (the report must say ``dropped: 0``);
4. scrape ``GET /metrics`` (Prometheus text exposition) and ``GET
   /snapshot``, and print the highlights.

Every HTTP call is printed with its ``curl`` equivalent, so the same
walkthrough works from a shell against a long-running gateway.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
import urllib.request

import numpy as np

from repro.core.inference import PredictionResult
from repro.fleet import StreamFleet
from repro.gateway import Gateway, LoadGenerator, parse_prometheus_text
from repro.serving import InferenceServer

HISTORY, HORIZON, NODES = 8, 4, 4


class Persistence:
    """Repeat-last-value forecaster (optionally biased, for the bad canary)."""

    def __init__(self, offset: float = 0.0, sigma: float = 6.0) -> None:
        self.offset, self.sigma = float(offset), float(sigma)

    def predict(self, windows: np.ndarray) -> PredictionResult:
        mean = np.repeat(windows[:, -1:, :], HORIZON, axis=1) + self.offset
        variance = np.full_like(mean, self.sigma ** 2)
        return PredictionResult(
            mean=mean, aleatoric_var=variance, epistemic_var=np.zeros_like(mean)
        )


def call(url: str, method: str, path: str, body=None, quiet: bool = False):
    """One JSON request, echoing the equivalent ``curl`` invocation."""
    if not quiet:
        if body is not None:
            shown = json.dumps(body) if len(json.dumps(body)) <= 70 else "@payload.json"
            print(f"  $ curl -X {method} {url}{path} -d '{shown}'")
        else:
            print(f"  $ curl {url}{path}")
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url + path, data=data, method=method,
                                     headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=15) as response:
        raw = response.read().decode()
    if response.headers.get("Content-Type", "").startswith("application/json"):
        return json.loads(raw)
    return raw


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller load storm")
    parser.add_argument("--requests", type=int, default=None,
                        help="storm size (default per preset)")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    total_requests = args.requests or (200 if args.fast else 600)
    rng = np.random.default_rng(0)

    # -- 1. the stack: server -> fleet -> gateway ------------------------- #
    server = InferenceServer(max_batch_size=16, max_wait_ms=0.5, cache_size=128)
    server.deploy("persistence", Persistence(), version="v0")
    fleet = StreamFleet(server, history=HISTORY, horizon=HORIZON, monitor_window=64)
    fleet.add_streams(["north", "south"])

    def resolver(spec):  # admin deploys name models over HTTP via this hook
        return Persistence(offset=float(spec.get("offset", 0.0)))

    gateway = Gateway(server, fleet=fleet, model_resolver=resolver)
    gateway.start(port=0)
    url = gateway.url
    print(f"=== Gateway listening on {url} (ephemeral port) ===\n")

    try:
        # -- 2. data plane ------------------------------------------------ #
        print("--- data plane ---")
        health = call(url, "GET", "/healthz")
        print(f"    healthz: {health}\n")

        window = rng.uniform(40.0, 80.0, size=(HISTORY, NODES))
        result = call(url, "POST", "/predict", {"window": window.tolist()})
        print(f"    forecast mean[0]: {np.round(result['mean'][0], 1).tolist()}"
              f"  (horizon {result['horizon']}, {result['num_nodes']} nodes)\n")

        print(f"    feeding {HISTORY + 4} observation rows per stream ...")
        for step in range(HISTORY + 4):
            tick = call(url, "POST", "/observe", {
                "observations": {
                    "north": rng.uniform(40.0, 80.0, NODES).tolist(),
                    "south": rng.uniform(40.0, 80.0, NODES).tolist(),
                },
                "return_forecasts": True,
            }, quiet=step > 0)
        for name, entry in tick["streams"].items():
            coverage = entry["coverage"]
            print(f"    {name}: step {entry['step']}, forecast_ready "
                  f"{entry['forecast_ready']}, rolling coverage "
                  f"{coverage if coverage is None else round(coverage, 1)}%")
        print()

        # -- 3. canary ramp under storm ----------------------------------- #
        print(f"--- canary ramp over /admin while {total_requests} requests storm /predict ---")
        loadgen = LoadGenerator(url, num_workers=4, seed=11,
                                history=HISTORY, nodes=NODES)
        outcome = {}
        storm = threading.Thread(
            target=lambda: outcome.update(report=loadgen.run(total_requests)),
            daemon=True,
        )
        storm.start()

        call(url, "POST", "/admin/deploy",
             {"name": "candidate", "model": {"offset": 0.0}, "version": "v1"})
        call(url, "POST", "/admin/routes",
             {"weights": {"": 0.7, "candidate": 0.3}})  # 30% canary split
        time.sleep(0.05)
        call(url, "POST", "/admin/promote", {"name": "candidate"})
        print("    candidate promoted to the default route")
        time.sleep(0.05)
        call(url, "POST", "/admin/deploy",
             {"name": "biased", "model": {"offset": 25.0}, "version": "v2"})
        call(url, "POST", "/admin/promote", {"name": "biased"})
        time.sleep(0.05)
        call(url, "POST", "/admin/rollback", {"name": "biased"})
        print("    biased candidate rolled back (and undeployed)")
        call(url, "POST", "/admin/routes", {"weights": {"": 1.0}})

        storm.join(timeout=120.0)
        report = outcome["report"]
        print("\n    load report:")
        for line in report.summary().splitlines():
            print(f"      {line}")
        routes = call(url, "GET", "/admin/routes", quiet=True)
        print(f"    routes after ramp: default_route={routes['default_route']!r}, "
              f"deployments={routes['deployments']}\n")

        # -- 4. ops plane ------------------------------------------------- #
        print("--- Prometheus scrape ---")
        text = call(url, "GET", "/metrics")
        series = parse_prometheus_text(text)
        predict_200 = series["gateway_requests_total"][
            (("code", "200"), ("route", "/predict"))]
        print(f"    {len(series)} metric families, "
              f"{sum(len(s) for s in series.values())} series")
        print(f"    gateway_requests_total{{route=/predict,code=200}} = {predict_200:.0f}")
        print(f"    repro_server_requests_served_total = "
              f"{series['repro_server_requests_served_total'][()]:.0f}")
        p99 = series["gateway_request_latency_seconds"].get(
            (("quantile", "0.99"), ("route", "/predict")))
        print(f"    /predict p99 latency = {p99 * 1e3:.2f} ms")

        snap = call(url, "GET", "/snapshot", quiet=True)
        print(f"    snapshot: tick {snap['tick']}, "
              f"{snap['num_streams']} streams, "
              f"server promotions {snap['server']['promotions']}, "
              f"rollbacks {snap['server']['rollbacks']}")
    finally:
        gateway.stop(timeout=10.0)
    print("\n=== gateway stopped cleanly ===")


if __name__ == "__main__":
    main()
