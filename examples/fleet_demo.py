"""Fleet orchestration: many corridors, one shared model, spatial incidents,
coordinated region refits.

Run with::

    python examples/fleet_demo.py           # 24 corridors, ~300-step stream
    python examples/fleet_demo.py --fast    # 12 corridors, shorter stream

The script demonstrates the ``repro.fleet`` subsystem end to end:

1. build a corridor road graph and one live traffic feed per corridor; a
   connected cluster of neighboring corridors takes a scripted
   ``incident_storm`` (capacity-drop burst), and each of the two regions
   later takes a noise regime shift;
2. drive all corridors as a :class:`~repro.fleet.StreamFleet`: every stream
   keeps its own adaptive conformal calibrator, rolling monitor and drift
   detectors, but all per-tick predicts funnel through **one** shared
   micro-batched :class:`~repro.serving.InferenceServer` — a tick over N
   corridors is ~1 model call, not N;
3. watch the :class:`~repro.fleet.SpatialDriftAggregator` collapse the
   cluster's correlated per-stream alarms into a single
   ``spatial_incident`` event naming the affected corridors;
4. watch the :class:`~repro.fleet.RefitCoordinator` answer each region's
   regime shift with ONE budgeted refit: the east region's candidate
   (honestly re-scaled) wins its cross-stream trial and is *promoted* —
   the region's routes re-point atomically — while the west region's
   deliberately degraded candidate loses and is *rejected*, all with zero
   dropped requests;
5. print the fleet snapshot — per-corridor rolling coverage/MAE, the shared
   server's serving counters, and the fleet event log — the same dict a
   ``/metrics`` endpoint would export.

The persistence baseline keeps the demo model-free and fast; swap in any
fitted :class:`~repro.api.Forecaster` (``forecaster.fleet(...)``) for the
same loop over a trained model.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.inference import PredictionResult
from repro.data import StreamingTrafficFeed, SyntheticTrafficConfig
from repro.fleet import FleetRefitPolicy, SpatialDriftAggregator, StreamFleet
from repro.graph import grid_network
from repro.serving import InferenceServer
from repro.streaming import ErrorCusumDetector, PersistenceForecaster
from repro.utils import format_table

HISTORY, HORIZON = 8, 4

#: Flat daily profile so the scripted events are the only nonstationarity.
FLAT = SyntheticTrafficConfig(peak_amplitude=0.0, weekend_attenuation=1.0)


class BiasedPersistence:
    """A deliberately degraded refit: persistence plus a constant bias.

    Stands in for a refit gone wrong (bad window, corrupted data) — the
    trial must catch it and reject the candidate.
    """

    def __init__(self, horizon: int, offset: float, sigma: float) -> None:
        self.horizon, self.offset, self.sigma = int(horizon), float(offset), float(sigma)

    def predict(self, windows: np.ndarray) -> PredictionResult:
        mean = np.repeat(windows[:, -1:, :], self.horizon, axis=1) + self.offset
        variance = np.full_like(mean, self.sigma ** 2)
        return PredictionResult(
            mean=mean, aleatoric_var=variance, epistemic_var=np.zeros_like(mean)
        )


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="fewer corridors, shorter stream")
    parser.add_argument("--steps", type=int, default=None, help="stream length (default per preset)")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    rows, cols = (3, 4) if args.fast else (4, 6)
    steps = args.steps or (200 if args.fast else 320)
    # storm after the detectors' warmup, then one regime shift per region
    storm_at, storm_len = int(steps * 0.35), max(steps // 8, 20)
    east_shift_at, west_shift_at = int(steps * 0.55), int(steps * 0.75)

    corridor_graph = grid_network(rows, cols)
    sensors = grid_network(2, 2)  # each corridor observes 4 sensors
    num_corridors = corridor_graph.num_nodes
    half = num_corridors // 2
    # a connected 2x2 corridor block in the east half takes the storm
    anchor = (rows // 2 - 1) * cols + cols // 2 - 1
    cluster = {anchor, anchor + 1, anchor + cols, anchor + cols + 1}

    def region_of(node: int):
        if node in cluster:
            return None  # the storm cluster is the spatial demo, not a refit domain
        return "east" if node < half else "west"

    print(f"=== {num_corridors} corridors | storm on {sorted(cluster)} at "
          f"step {storm_at} | regime shifts: east@{east_shift_at}, "
          f"west@{west_shift_at} ===")
    feeds = {}
    for node in range(num_corridors):
        name = f"c{node}"
        if node in cluster:
            feeds[name] = StreamingTrafficFeed.scenario(
                sensors, "incident_storm", num_steps=steps, seed=node,
                start=storm_at, duration=storm_len, rate=0.5, severity=0.7,
                config=FLAT,
            )
        else:
            shift_at = east_shift_at if region_of(node) == "east" else west_shift_at
            feeds[name] = StreamingTrafficFeed.scenario(
                sensors, "regime_shift", num_steps=steps, seed=node,
                start=shift_at, noise_scale=3.0, config=FLAT,
            )

    def refit_fn(region, recents):
        # ONE refit per drifting region, pooled over its streams' recent
        # data.  East re-estimates its scale honestly; west's "refit" is
        # broken on purpose so the trial has something to reject.
        if region == "east":
            return PersistenceForecaster(horizon=HORIZON, sigma=75.0)
        return BiasedPersistence(HORIZON, offset=120.0, sigma=25.0)

    model = PersistenceForecaster(horizon=HORIZON, sigma=25.0)
    server = InferenceServer(
        model.predict, model_version="shared-v0",
        max_batch_size=2 * num_corridors, max_wait_ms=2.0,
    )
    expected_predictions = predictions_received = 0
    with server:
        fleet = StreamFleet(
            server, HISTORY, HORIZON,
            aci={"window": 500, "gamma": 0.01},
            # slack absorbs the slow heteroscedastic error drift (noise sigma
            # tracks the flow level); only a genuine jump accumulates
            detector_factory=lambda: [ErrorCusumDetector(slack=1.5, threshold=30.0, warmup=50)],
            refit_fn=refit_fn,
            refit_policy=FleetRefitPolicy(
                # roughly half the region must drift together — scattered
                # single-stream noise never launches a region refit
                quorum=3 if args.fast else 5,
                window=30, cooldown=steps, max_concurrent=1,
                eval_steps=30, mae_tolerance=0.05, coverage_tolerance=0.25,
            ),
            spatial=SpatialDriftAggregator(
                corridor_graph.adjacency_matrix(weighted=False),
                window=30, min_cluster=3, cooldown=steps,
            ),
        )
        for node in range(num_corridors):
            fleet.add_stream(f"c{node}", region=region_of(node), node=node)

        iterators = {name: iter(feed) for name, feed in feeds.items()}
        for t in range(steps):
            result = fleet.tick({name: next(it) for name, it in iterators.items()})
            if t >= HISTORY - 1:
                expected_predictions += len(result.results)
            predictions_received += sum(
                1 for _, step in result if step.prediction is not None
            )
            for event in result.events:
                print(f"  !! {event}")
        fleet.join_refits()

        snapshot = fleet.snapshot()
        stats = snapshot["server"]
        print("\n=== Shared serving path ===")
        print(f"requests served : {stats['requests_served']} "
              f"(dropped: {expected_predictions - predictions_received}, "
              f"route fallbacks: {stats['route_fallbacks']})")
        print(f"model batches   : {stats['batches_dispatched']} "
              f"(mean batch {stats['mean_batch_size']:.1f} — "
              f"~1 model call per tick for {num_corridors} corridors)")
        print(f"region routes   : {snapshot['region_deployments']}")

        print("\n=== Per-corridor rolling metrics (sample) ===")
        sample = sorted(cluster) + [0, num_corridors - 1]
        rows_out = []
        for node in sample:
            entry = snapshot["streams"][f"c{node}"]
            metrics = entry["metrics"]
            rows_out.append([
                f"c{node}" + (" *storm*" if node in cluster else f" ({region_of(node)})"),
                f"{metrics['coverage']:.1f}",
                f"{metrics['mae']:.1f}",
                sum(1 for e in entry["events"] if e["kind"] == "error_cusum"),
            ])
        print(format_table(["corridor", "coverage %", "MAE", "drift events"], rows_out))

        incidents = [e for e in fleet.event_log if e.kind == "spatial_incident"]
        print(f"\n=== Spatial incidents: {len(incidents)} ===")
        for event in incidents:
            print(f"  {event}")
        if incidents:
            print("N correlated per-corridor alarms collapsed into "
                  "one fleet-level incident event.")

        print("\n=== Coordinated refits ===")
        for event in fleet.event_log:
            if event.kind.startswith("region_"):
                print(f"  {event}")
        print("One budgeted refit per drifting region: east's candidate won "
              "its cross-stream trial (promoted), west's degraded candidate "
              "lost (rejected) — zero requests dropped either way.")


if __name__ == "__main__":
    main()
