"""Risk-aware emergency routing with forecast uncertainty.

The paper motivates uncertainty quantification with emergency management:
"route planning for rescuing vehicles and ambulances" needs not only the
expected traffic but also how wrong that expectation could be.  This example
shows the pattern on a synthetic corridor network:

1. build a road network with several corridors between a depot and a hospital;
2. train DeepSTUQ on its (synthetic) traffic;
3. enumerate candidate routes with NetworkX;
4. score each route by the *upper confidence bound* of the forecast flow along
   its segments (a proxy for worst-case congestion / travel time);
5. compare the route a point forecast would choose with the route the
   risk-aware criterion chooses.

Run with ``python examples/emergency_routing.py --fast``.
"""

from __future__ import annotations

import argparse
from typing import List, Sequence

import networkx as nx
import numpy as np

from repro.core import AWAConfig, DeepSTUQConfig, DeepSTUQPipeline, TrainingConfig
from repro.data import TrafficData, generate_traffic, train_val_test_split
from repro.graph import corridor_network
from repro.utils import format_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="shorter training")
    parser.add_argument("--num-sensors", type=int, default=24)
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args()


def route_scores(
    route: Sequence[int],
    mean: np.ndarray,
    upper: np.ndarray,
    horizon_step: int,
) -> tuple:
    """Expected and worst-case congestion of a route at a given horizon step."""
    expected = float(np.mean([mean[horizon_step, node] for node in route]))
    worst_case = float(np.mean([upper[horizon_step, node] for node in route]))
    return expected, worst_case


def main() -> None:
    args = parse_args()
    rng = np.random.default_rng(args.seed)

    # 1. Road network: parallel corridors joined at interchanges.
    network = corridor_network(args.num_sensors, num_corridors=3, rng=rng, name="emergency-grid")
    values = generate_traffic(network, num_steps=288 * (3 if args.fast else 7), seed=args.seed)
    traffic = TrafficData(name="emergency", values=values, network=network)
    train, val, test = train_val_test_split(traffic)
    depot, hospital = 0, args.num_sensors - 1
    print(f"Network: {network.num_nodes} sensors, {network.num_edges} segments; "
          f"routing from sensor {depot} (depot) to sensor {hospital} (hospital)")

    # 2. Train DeepSTUQ.
    history, horizon = (6, 3) if args.fast else (12, 12)
    pipeline = DeepSTUQPipeline(
        network.num_nodes,
        DeepSTUQConfig(
            training=TrainingConfig(
                history=history, horizon=horizon, hidden_dim=8 if args.fast else 16,
                embed_dim=3, epochs=4 if args.fast else 12,
                mc_samples=3 if args.fast else 10, encoder_dropout=0.05,
            ),
            awa=AWAConfig(epochs=2 if args.fast else 4),
        ),
    )
    print("Training DeepSTUQ ...")
    pipeline.fit(train, val)

    # 3. Forecast the situation right now (last available history window).
    current_history = test.values[-history:][None, :, :]
    result = pipeline.predict(current_history)
    lower, upper = result.interval()
    mean, upper = result.mean[0], upper[0]

    # 4. Candidate routes between depot and hospital.
    graph = network.to_networkx()
    routes: List[List[int]] = list(
        nx.all_simple_paths(graph, depot, hospital, cutoff=network.num_nodes)
    )[:6]
    if not routes:
        routes = [nx.shortest_path(graph, depot, hospital)]
    horizon_step = min(2, horizon - 1)  # plan for ~15 minutes ahead

    rows = []
    for index, route in enumerate(routes):
        expected, worst = route_scores(route, mean, upper, horizon_step)
        rows.append([index, len(route), expected, worst])
    print()
    print(format_table(
        ["route", "# sensors", "expected flow", "95% worst-case flow"],
        rows,
        precision=1,
        title=f"Candidate routes, {5 * (horizon_step + 1)} minutes ahead",
    ))

    # 5. Decision: lowest expected congestion vs lowest worst-case congestion.
    by_expected = min(range(len(routes)), key=lambda i: rows[i][2])
    by_worst_case = min(range(len(routes)), key=lambda i: rows[i][3])
    print(f"\nPoint-forecast choice     : route {by_expected}")
    print(f"Risk-aware (UCB) choice   : route {by_worst_case}")
    if by_expected != by_worst_case:
        print("The two criteria disagree: the uncertainty-aware planner avoids a route "
              "whose congestion forecast is good on average but unreliable.")
    else:
        print("Both criteria agree here; the interval width still quantifies how much "
              "slack the dispatcher should plan for.")


if __name__ == "__main__":
    main()
