"""Quickstart: train DeepSTUQ on a synthetic PEMS08 dataset and forecast with
uncertainty, through the unified ``repro.api`` facade.

Run with::

    python examples/quickstart.py          # a few minutes (small preset)
    python examples/quickstart.py --fast   # under a minute (tiny preset)

The script walks through the full public API:

1. load a (synthetic) PEMS dataset and split it chronologically 6:2:2;
2. describe the forecaster as one declarative, JSON-round-trippable spec
   (UQ method + backbone + training config) and fit it in one call
   (pre-training -> AWA re-training -> temperature calibration);
3. produce probabilistic forecasts on the test split;
4. save a full-state checkpoint, reload it, and verify the restored
   forecaster reproduces the predictions bit-identically;
5. report the paper's point and uncertainty metrics.

The low-level API is still available when you need stage-level control::

    from repro.core import DeepSTUQConfig, DeepSTUQPipeline
    pipeline = DeepSTUQPipeline(traffic.num_nodes, DeepSTUQConfig(...))
    pipeline.fit(train, val); result, targets = pipeline.predict_on(test)
"""

from __future__ import annotations

import argparse
import tempfile

import numpy as np

from repro.api import Forecaster
from repro.data import load_pems, train_val_test_split
from repro.metrics import point_metrics, uncertainty_metrics
from repro.utils import format_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="PEMS08", help="PEMS03 / PEMS04 / PEMS07 / PEMS08")
    parser.add_argument("--fast", action="store_true", help="tiny dataset and very short training")
    parser.add_argument("--epochs", type=int, default=None, help="override the number of pre-training epochs")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    size = "tiny" if args.fast else "small"
    epochs = args.epochs if args.epochs is not None else (4 if args.fast else 15)

    print(f"Loading synthetic {args.dataset} ({size}) ...")
    traffic = load_pems(args.dataset, size=size)
    train, val, test = train_val_test_split(traffic)
    print(f"  {traffic.num_nodes} sensors, {traffic.num_steps} five-minute steps "
          f"({train.num_steps} train / {val.num_steps} val / {test.num_steps} test)")

    history, horizon = (6, 3) if args.fast else (12, 12)
    spec = {
        "method": "DeepSTUQ",
        "backbone": "AGCRN",
        "method_kwargs": {"awa_config": {"epochs": 2 if args.fast else 6}},
        "training": {
            "history": history,
            "horizon": horizon,
            "hidden_dim": 8 if args.fast else 16,
            "embed_dim": 3 if args.fast else 4,
            "epochs": epochs,
            "mc_samples": 3 if args.fast else 10,
            "encoder_dropout": 0.05,
        },
    }

    print("Fitting DeepSTUQ (pre-train -> AWA re-train -> calibrate) ...")
    forecaster = Forecaster.from_spec(spec)
    forecaster.fit(train, val)
    print(f"  calibration temperature T = {forecaster.method.temperature:.3f}")

    print("Forecasting the test split ...")
    result, targets = forecaster.predict_on(test)
    point = point_metrics(result.mean, targets)
    interval = uncertainty_metrics(targets, result.mean, result.std)

    # Full-state checkpoint round trip: spec + weights + scaler + temperature.
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        forecaster.save(checkpoint_dir)
        restored = Forecaster.load(checkpoint_dir)
        restored_result, _ = restored.predict_on(test)
        identical = np.array_equal(result.mean, restored_result.mean)
    print(f"Checkpoint reload reproduces predictions bit-identically: {identical}")

    print()
    print(format_table(
        ["Metric", "Value"],
        [["MAE", point["MAE"]], ["RMSE", point["RMSE"]], ["MAPE (%)", point["MAPE"]],
         ["MNLL", interval["MNLL"]], ["PICP (%)", interval["PICP"]], ["MPIW", interval["MPIW"]]],
        title=f"DeepSTUQ on synthetic {args.dataset}",
    ))

    # Show one concrete forecast with its 95% interval and decomposition.
    sample, node = 0, 0
    lower, upper = result.interval()
    rows = []
    for step in range(min(horizon, 6)):
        rows.append([
            (step + 1) * 5,
            targets[sample, step, node],
            result.mean[sample, step, node],
            lower[sample, step, node],
            upper[sample, step, node],
            result.aleatoric_std[sample, step, node],
            result.epistemic_std[sample, step, node],
        ])
    print()
    print(format_table(
        ["min ahead", "truth", "forecast", "lower", "upper", "aleatoric std", "epistemic std"],
        rows,
        precision=1,
        title=f"Example forecast for sensor {node}",
    ))


if __name__ == "__main__":
    main()
