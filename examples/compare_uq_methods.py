"""Compare uncertainty-quantification methods on one dataset (mini Table IV).

Run with::

    python examples/compare_uq_methods.py --fast
    python examples/compare_uq_methods.py --methods MVE MCDO Combined DeepSTUQ
    python examples/compare_uq_methods.py --fast --backbone DCRNN

Every selected method is described as one declarative ``repro.api`` spec —
(UQ method x backbone x training config) — and fitted through the
:class:`~repro.api.Forecaster` facade, then scored on the six Table IV
metrics side by side.  The ``--backbone`` flag swaps the shared base
architecture under *all* methods (the paper's setting is AGCRN); backbones
without native probabilistic heads are wrapped in a head adapter
automatically.  The typical outcome mirrors the paper: the epistemic-only
methods (MCDO, FGE) under-cover badly, the aleatoric-aware methods cover
well, and DeepSTUQ gives the best overall balance.

The low-level API remains available for direct method construction::

    from repro.uq import create_method
    method = create_method("MVE", traffic.num_nodes, config=config)
    method.fit(train, val)
"""

from __future__ import annotations

import argparse

from repro.api import Forecaster, ForecasterSpec
from repro.data import load_pems, train_val_test_split
from repro.evaluation.uncertainty_quantification import evaluate_uq_method
from repro.evaluation.datasets import evaluation_windows
from repro.evaluation.config import UNIT_SCALE, BENCH_SCALE
from repro.models import BACKBONE_INFO
from repro.uq import available_methods
from repro.utils import format_table

DEFAULT_METHODS = ("Point", "MVE", "MCDO", "Combined", "TS", "Conformal", "DeepSTUQ")
TRAINABLE_BACKBONES = [name for name, info in BACKBONE_INFO.items() if info.trainable]


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="PEMS08")
    parser.add_argument("--methods", nargs="+", default=list(DEFAULT_METHODS),
                        choices=available_methods(), metavar="METHOD")
    parser.add_argument("--backbone", default="AGCRN", choices=TRAINABLE_BACKBONES,
                        help="shared base architecture under every method")
    parser.add_argument("--fast", action="store_true", help="tiny dataset and very short training")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    scale = UNIT_SCALE if args.fast else BENCH_SCALE
    traffic = load_pems(args.dataset, size=scale.dataset_size)
    train, val, test = train_val_test_split(traffic)
    print(f"Dataset: synthetic {args.dataset} with {traffic.num_nodes} sensors, "
          f"{traffic.num_steps} steps; backbone: {args.backbone}")

    training = {
        "history": scale.history, "horizon": scale.horizon,
        "hidden_dim": scale.hidden_dim, "embed_dim": scale.embed_dim,
        "epochs": scale.epochs, "mc_samples": scale.mc_samples,
        "encoder_dropout": 0.05,
    }
    inputs, targets = evaluation_windows(test, scale)

    rows = []
    for name in args.methods:
        print(f"Training {name} ...")
        method_kwargs = (
            {"awa_config": {"epochs": scale.awa_epochs}} if name == "DeepSTUQ" else {}
        )
        spec = ForecasterSpec(
            method=name, backbone=args.backbone,
            method_kwargs=method_kwargs, training=training,
        )
        forecaster = Forecaster.from_spec(spec).fit(train, val)
        metrics = evaluate_uq_method(forecaster.method, inputs, targets)
        rows.append([name, forecaster.method.paradigm, metrics["MAE"], metrics["MNLL"],
                     metrics["PICP"], metrics["MPIW"]])

    print()
    print(format_table(
        ["Method", "Paradigm", "MAE", "MNLL", "PICP (%)", "MPIW"],
        rows,
        title=f"Uncertainty quantification on synthetic {args.dataset} "
              f"({args.backbone} backbone, 95% intervals)",
    ))
    print("\nReading guide: PICP should be close to (or above) 95% with the smallest "
          "possible MPIW; epistemic-only methods typically sit far below 95%.")


if __name__ == "__main__":
    main()
