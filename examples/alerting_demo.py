"""SLO alerting demo: a chaos fault pages, every surface shows it, it resolves.

Run with::

    python examples/alerting_demo.py          # default sizes
    python examples/alerting_demo.py --fast   # smaller run, a couple seconds

The script wires the full closed loop the observability PR added:

1. declare an :class:`~repro.obs.SLOSpec` ("zero stream predict failures,
   ever" — page severity) and attach an :class:`~repro.obs.SLOEngine` to a
   :class:`~repro.fleet.StreamFleet`, so burn rates are evaluated on the
   fleet's own deterministic tick clock;
2. inject a :class:`~repro.scenarios.PredictFault` mid-run — the model pass
   raises, streams log ``stream_predict_failed``, the zero-drop SLO breaches
   on its short *and* long burn windows and the alert walks
   ``pending -> firing``;
3. while the page is live, show each gateway surface reacting:
   ``GET /alerts`` (the engine snapshot), ``GET /healthz`` (503 degraded),
   ``GET /metrics`` (``ALERTS`` + ``repro_slo_*`` families);
4. stop the chaos, tick on — the short window drains, the alert resolves,
   ``/healthz`` is green again, and ``GET /tail?kinds=slo.`` replays the
   whole lifecycle as Server-Sent Events with sequence IDs.

Point the same ``curl`` at any long-running gateway with an engine attached.
"""

from __future__ import annotations

import argparse
import json
import urllib.request

import repro.obs as obs
from repro.fleet import StreamFleet
from repro.gateway import Gateway, parse_prometheus_text
from repro.obs import SLOEngine, SLOSpec
from repro.scenarios import PredictFault, ScenarioSpec
from repro.graph import grid_network
from repro.streaming import PersistenceForecaster
from repro.serving import InferenceServer

HISTORY, HORIZON = 6, 2
FLAT = {"peak_amplitude": 0.0, "weekend_attenuation": 1.0}


def http_call(url: str, method: str, path: str, body=None):
    """One JSON request; returns ``(status, parsed_body_or_text)``."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=15) as response:
            status, raw = response.status, response.read().decode()
            content_type = response.headers.get("Content-Type", "")
    except urllib.error.HTTPError as error:  # 503 while degraded is expected
        status, raw = error.code, error.read().decode()
        content_type = error.headers.get("Content-Type", "")
    if content_type.startswith("application/json"):
        return status, json.loads(raw)
    return status, raw


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true", help="smaller run")
    parser.add_argument("--streams", type=int, default=None)
    args = parser.parse_args()
    num_streams = args.streams or (3 if args.fast else 8)
    steps = 24 if args.fast else 60
    fault_at, fault_ticks = steps // 2, 2

    obs.configure(logging=True, log_sink=False, seed=0)

    # -- build: server + fleet + the SLO engine on the fleet clock ---------
    model = PersistenceForecaster(horizon=HORIZON, sigma=20.0)
    server = InferenceServer(
        model.predict, model_version="base", max_batch_size=64
    ).start()
    fleet = StreamFleet(server, HISTORY, HORIZON, detector_factory=list)
    network = grid_network(2, 2)
    feeds = {
        f"c{i}": list(
            ScenarioSpec(
                name="plain", num_steps=steps, seed=i, config=FLAT
            ).build(network)
        )
        for i in range(num_streams)
    }
    for name in feeds:
        fleet.add_stream(name)
    engine = fleet.attach_slo(
        SLOEngine(
            specs=[
                SLOSpec(
                    name="zero_drop",
                    kind="zero",
                    metric="fleet.events.stream_predict_failed",
                    long_window=8,
                    short_window=2,
                    severity="page",
                    description="no stream predict failures, ever",
                )
            ]
        )
    )
    gateway = Gateway(server, fleet=fleet, slo=engine).start(port=0)
    print(f"gateway on {gateway.url}, SLO: zero_drop (page) attached")

    def tick_range(lo, hi):
        for t in range(lo, hi):
            fleet.tick({name: rows[t] for name, rows in feeds.items()})

    try:
        # -- quiet warmup --------------------------------------------------
        tick_range(0, fault_at)
        status, health = http_call(gateway.url, "GET", "/healthz")
        print(f"\nbefore chaos: /healthz -> {status} ({health['status']}), "
              f"alerts firing: {health['alerts_firing']}")

        # -- chaos: the model pass dies for a couple of ticks --------------
        print(f"injecting PredictFault for ticks "
              f"{fault_at}..{fault_at + fault_ticks - 1}")
        server.fault_injector = PredictFault(
            error=RuntimeError("chaos: model pass died"), count=None
        )
        tick_range(fault_at, fault_at + fault_ticks)
        server.fault_injector = None

        status, alerts = http_call(gateway.url, "GET", "/alerts")
        firing = alerts["firing"][0]
        print(f"\nwhile paging: /alerts -> {firing['slo']} is "
              f"{firing['state']} (severity {firing['severity']}, "
              f"fired_at tick {firing['fired_at']})")
        status, health = http_call(gateway.url, "GET", "/healthz")
        print(f"while paging: /healthz -> {status} ({health['status']})")
        status, text = http_call(gateway.url, "GET", "/metrics")
        series = parse_prometheus_text(text)
        for key, value in series["ALERTS"].items():
            labels = ", ".join(f"{k}={v}" for k, v in key)
            print(f"while paging: ALERTS{{{labels}}} = {value:.0f}")

        # -- recovery: the short burn window drains, the page resolves -----
        tick_range(fault_at + fault_ticks, steps)
        status, health = http_call(gateway.url, "GET", "/healthz")
        print(f"\nafter recovery: /healthz -> {status} ({health['status']})")
        status, alerts = http_call(gateway.url, "GET", "/alerts")
        lifecycle = " -> ".join(
            t["state"] for t in alerts["transitions"]
        )
        print(f"after recovery: alert lifecycle was {lifecycle}")

        # -- the whole story as an SSE stream ------------------------------
        status, raw = http_call(
            gateway.url, "GET",
            "/tail?kinds=slo.&since=0&max_events=3&timeout=5",
        )
        print("\nGET /tail?kinds=slo.&since=0 replays the lifecycle:")
        for line in raw.splitlines():
            if line.startswith(("event: ", "id: ")):
                print(f"  {line}")
            elif line.startswith("data: "):
                record = json.loads(line[len("data: "):])
                print(f"  data: tick={record['tick']} slo={record['slo']} "
                      f"burn_long={record['burn_long']:.1f}")
    finally:
        gateway.stop()
        server.stop()
        obs.reset()
    print("\ndone: the fault paged, every surface showed it, and it resolved.")


if __name__ == "__main__":
    main()
