"""Use the library on your own sensor network and measurements.

The PEMS loaders are just convenience wrappers; any ``(num_steps, num_nodes)``
array plus a road graph works.  This example builds a small city grid, attaches
externally supplied measurements (here: synthetic, but this is where you would
plug in your own CSV), trains the MVE and DeepSTUQ methods, and compares their
calibration with and without temperature scaling.

Run with ``python examples/custom_dataset.py --fast``.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import AWAConfig, TrainingConfig
from repro.data import TrafficData, train_val_test_split
from repro.data.synthetic import SyntheticTrafficConfig, generate_traffic
from repro.evaluation.uncertainty_quantification import evaluate_uq_method
from repro.graph import grid_network
from repro.metrics import picp
from repro.uq import DeepSTUQ, MVE, TemperatureScaledMVE
from repro.utils import format_table, seed_everything


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=4)
    parser.add_argument("--cols", type=int, default=5)
    parser.add_argument("--days", type=int, default=7)
    parser.add_argument("--fast", action="store_true")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    seed_everything(0)

    # --- 1. your road network -------------------------------------------------
    network = grid_network(args.rows, args.cols, name="my-city-grid")
    print(f"Road network: {network.num_nodes} sensors, {network.num_edges} segments")

    # --- 2. your measurements ---------------------------------------------------
    # Replace this block with e.g. np.loadtxt("my_flows.csv", delimiter=",").
    days = 3 if args.fast else args.days
    measurements = generate_traffic(
        network,
        num_steps=288 * days,
        config=SyntheticTrafficConfig(noise_fraction=0.08),
        seed=42,
    )
    traffic = TrafficData(name="my-city", values=measurements, network=network)
    train, val, test = train_val_test_split(traffic)
    print(f"Series: {traffic.num_steps} steps at 5-minute resolution ({days} days)")

    # --- 3. fit three uncertainty-aware forecasters ----------------------------
    history, horizon = (6, 3) if args.fast else (12, 12)
    config = TrainingConfig(
        history=history, horizon=horizon,
        hidden_dim=8 if args.fast else 16, embed_dim=3,
        epochs=4 if args.fast else 12, mc_samples=3 if args.fast else 10,
        encoder_dropout=0.05,
    )
    from repro.evaluation.datasets import evaluation_windows
    from repro.evaluation.config import UNIT_SCALE, BENCH_SCALE

    scale = UNIT_SCALE if args.fast else BENCH_SCALE
    inputs, targets = evaluation_windows(test, scale)

    rows = []
    methods = {
        "MVE (uncalibrated)": MVE(network.num_nodes, config=config),
        "MVE + temperature scaling": TemperatureScaledMVE(network.num_nodes, config=config),
        "DeepSTUQ": DeepSTUQ(network.num_nodes, config=config, awa_config=AWAConfig(epochs=2)),
    }
    for label, method in methods.items():
        print(f"Training {label} ...")
        method.fit(train, val)
        metrics = evaluate_uq_method(method, inputs, targets)
        rows.append([label, metrics["MAE"], metrics["MNLL"], metrics["PICP"], metrics["MPIW"]])

    print()
    print(format_table(
        ["Method", "MAE", "MNLL", "PICP (%)", "MPIW"],
        rows,
        title="Forecasting your own network with calibrated uncertainty",
    ))

    # --- 4. inspect one sensor's interval --------------------------------------
    deepstuq = methods["DeepSTUQ"]
    result = deepstuq.predict(inputs[:50])
    lower, upper = result.interval()
    sensor = network.num_nodes // 2
    coverage = picp(targets[:50, :, sensor], lower[:, :, sensor], upper[:, :, sensor])
    print(f"\nSensor {sensor}: 95% interval covers {coverage:.1f}% of the next "
          f"{horizon * 5} minutes over the last 50 test windows.")


if __name__ == "__main__":
    main()
