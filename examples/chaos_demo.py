"""Chaos engineering the streaming fleet: kill it mid-drift, restore it,
and watch the drift fire exactly on schedule anyway.

Run with::

    python examples/chaos_demo.py           # 8 corridors, 220-step stream
    python examples/chaos_demo.py --fast    # 4 corridors, shorter stream

The script demonstrates the ``repro.scenarios`` subsystem end to end:

1. declare the traffic scenario with the **scenario DSL** instead of
   hand-wiring feed events: a JSON-serializable :class:`ScenarioSpec` per
   corridor composes a scripted noise regime shift with an adversarial
   spike burst (the DSL compiles the legacy primitives bit-identically to
   ``StreamingTrafficFeed.scenario``);
2. run the fleet **uninterrupted** to establish ground truth: each
   corridor's error-CUSUM detector fires a few ticks after the shift;
3. re-run the same scenario under the **chaos harness**: two ticks after
   the shift starts — while every detector's CUSUM statistic is mid-climb
   but nothing has fired yet — a scheduled
   :func:`~repro.scenarios.kill_and_restore` checkpoints the fleet,
   throws away the process state (stopping its server), and rebuilds
   from disk onto a fresh server;
4. compare the two runs: same drift events at the same steps, bit-identical
   per-stream state — the v2 stream-core checkpoint carries calibration
   buffers, pending-forecast ledgers, *and* detector evidence;
5. inject a raising model pass with :class:`~repro.scenarios.PredictFault`
   on the restored fleet and show the tick degrades gracefully
   (``stream_predict_failed``, zero dropped futures) instead of desyncing.

Every fault here is deterministic — the same injections back the tier-1
chaos suite (``tests/scenarios/test_chaos.py``).
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.fleet import StreamFleet
from repro.graph import grid_network
from repro.scenarios import (
    ChaosSchedule,
    PredictFault,
    ScenarioSpec,
    kill_and_restore,
    run_fleet_scenario,
)
from repro.serving import InferenceServer
from repro.streaming import ErrorCusumDetector, PersistenceForecaster

HISTORY, HORIZON = 6, 2

#: Flat daily profile so the scripted shift is the only nonstationarity.
FLAT = {"peak_amplitude": 0.0, "weekend_attenuation": 1.0}


def make_server() -> InferenceServer:
    model = PersistenceForecaster(horizon=HORIZON, sigma=20.0)
    return InferenceServer(
        model.predict, model_version="persistence", max_batch_size=64
    ).start()


def make_detectors():
    return [ErrorCusumDetector(slack=1.0, threshold=20.0, warmup=80)]


def make_specs(num_streams: int, steps: int, shift: int):
    """One DSL spec per corridor: regime shift + an adversarial spike burst."""
    return {
        f"c{i}": ScenarioSpec(
            name=f"shift-c{i}",
            num_steps=steps,
            seed=i,
            config=FLAT,
            primitives=(
                {"kind": "regime_shift", "start": shift, "noise_scale": 3.0},
                {"kind": "adversarial_spike", "start": 20, "duration": 30,
                 "rate": 0.02, "magnitude": 6.0},
            ),
        )
        for i in range(num_streams)
    }


def make_fleet(server: InferenceServer, num_streams: int) -> StreamFleet:
    fleet = StreamFleet(
        server,
        HISTORY,
        HORIZON,
        aci={"window": 400, "gamma": 0.01},
        detector_factory=make_detectors,
    )
    for i in range(num_streams):
        fleet.add_stream(f"c{i}", region="metro")
    return fleet


def first_fires(fleet: StreamFleet) -> dict:
    return {
        name: next(
            (e.step for e in stream.core.event_log if e.kind == "error_cusum"),
            None,
        )
        for name, stream in fleet.streams.items()
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true", help="smaller run")
    args = parser.parse_args()

    num_streams = 4 if args.fast else 8
    steps = 160 if args.fast else 220
    shift = 100 if args.fast else 140
    kill = shift + 2
    network = grid_network(2, 2)
    specs = make_specs(num_streams, steps, shift)

    print(f"Scenario DSL: {num_streams} corridors x {steps} steps, "
          f"regime shift at {shift} (spec below)\n")
    print(next(iter(specs.values())).to_json())

    # ---- Run 1: uninterrupted ground truth -------------------------------
    server = make_server()
    reference = make_fleet(server, num_streams)
    run_fleet_scenario(
        reference, {name: spec.build(network) for name, spec in specs.items()}
    )
    server.stop()
    reference_fires = first_fires(reference)
    print(f"\nUninterrupted run: drift fires at {reference_fires}")

    # ---- Run 2: kill the process mid-drift, restore from checkpoint ------
    checkpoint = Path(tempfile.mkdtemp(prefix="chaos_demo_")) / "ckpt"

    def killer(fleet: StreamFleet, tick: int) -> StreamFleet:
        statistics = [
            round(s.core.detectors[0].statistic, 2) for s in fleet.streams.values()
        ]
        print(f"\ntick {tick}: KILL — checkpointing mid-drift "
              f"(CUSUM statistics {statistics}, nothing fired yet)")
        return kill_and_restore(
            fleet, checkpoint, make_server(), detector_factory=make_detectors
        )

    server2 = make_server()
    chaotic = make_fleet(server2, num_streams)
    survivor, _ = run_fleet_scenario(
        chaotic,
        {name: spec.build(network) for name, spec in specs.items()},
        chaos=ChaosSchedule().at(kill, killer),
    )
    survivor_fires = first_fires(survivor)
    print(f"Killed-and-restored run: drift fires at {survivor_fires}")
    assert survivor_fires == reference_fires, "restore changed the firing steps!"
    print("=> identical firing steps: detector evidence survived the restore")

    # ---- Fault injection on the restored fleet ---------------------------
    fault = PredictFault(error=RuntimeError("chaos: model pass died"), count=1)
    survivor.server.fault_injector = fault
    # One more mini-scenario on fresh feeds: the injected failure degrades
    # one tick (stream_predict_failed) and the fleet keeps lock-step.
    tail_specs = {
        name: ScenarioSpec(name="tail", num_steps=40, seed=90 + i, config=FLAT)
        for i, name in enumerate(survivor.streams)
    }
    before = len(survivor.event_log.events)
    run_fleet_scenario(
        survivor, {name: spec.build(network) for name, spec in tail_specs.items()}
    )
    failed = [
        e for e in survivor.event_log.events[before:]
        if e.kind == "stream_predict_failed"
    ]
    stats = survivor.server.stats
    print(f"\nInjected model-pass failure: {len(failed)} stream_predict_failed "
          f"event(s), fleet still in lock-step "
          f"(served: {stats['requests_served']}, "
          f"stranded: {stats['stranded_requests']})")
    survivor.server.stop()
    print("\nDone: kill-and-restore equivalence + graceful predict failure.")


if __name__ == "__main__":
    main()
