"""Canary promotion: drift → refit → shadow eval → auto-promote (or reject).

Run with::

    python examples/canary_promotion.py          # ~1000-step stream
    python examples/canary_promotion.py --fast   # shorter stream, ~2 s

The script demonstrates the multi-model serving layer end to end:

1. a persistence forecaster (scale calibrated pre-shift) serves a regime-
   shifting stream behind an :class:`~repro.serving.InferenceServer`, while
   background client threads keep submitting windows — every one of their
   futures must resolve, through every deployment change;
2. the drift detector fires after the shift and the refit is **staged as a
   named candidate deployment** instead of being swapped in blindly: the
   server mirrors live traffic to it (shadow mode) while the streaming loop
   scores candidate and incumbent on the same observations;
3. after ``eval_steps`` scored steps the candidate's rolling MAE/coverage
   are compared with the incumbent's and it is **promoted** — the default
   route re-points atomically, zero requests dropped;
4. the same machinery is then shown *rejecting* a deliberately degraded
   refit: the candidate loses the trial, is rolled back off the pool, and
   the incumbent keeps serving.

The full decision log — drift alarms, staging, verdicts, promotions — is
printed at the end of each phase.
"""

from __future__ import annotations

import argparse
import threading

import numpy as np

from repro.data import StreamingTrafficFeed, SyntheticTrafficConfig
from repro.graph import grid_network
from repro.serving import InferenceServer
from repro.streaming import (
    CoverageBreachDetector,
    PersistenceForecaster,
    PromotionPolicy,
    StreamingForecaster,
)

HISTORY, HORIZON = 8, 4


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="shorter stream")
    return parser.parse_args()


def make_feed(steps: int) -> StreamingTrafficFeed:
    network = grid_network(3, 3)
    return StreamingTrafficFeed.scenario(
        network, "regime_shift", num_steps=steps, seed=7, noise_scale=2.5,
        config=SyntheticTrafficConfig(noise_fraction=0.25),
    )


def run_phase(title: str, steps: int, degrade: bool) -> None:
    shift = steps // 2
    feed = make_feed(steps)
    sigma0 = float(np.median(np.abs(np.diff(feed.values[: shift // 2], axis=0))))
    incumbent = PersistenceForecaster(horizon=HORIZON, sigma=sigma0)

    def refit_fn(recent: np.ndarray) -> PersistenceForecaster:
        """Re-estimate the scale post-drift; optionally sabotage it."""
        sigma = float(np.median(np.abs(np.diff(recent, axis=0))))
        if degrade:
            # A refit gone wrong: a scale 25x too small produces confident,
            # badly-covering intervals — exactly what a gate must catch.
            sigma = max(sigma / 25.0, 1e-3)
        return PersistenceForecaster(horizon=HORIZON, sigma=sigma)

    server = InferenceServer(
        incumbent.predict, model_version="prod-v0", max_wait_ms=1.0, cache_size=512
    )
    runner = StreamingForecaster(
        incumbent, history=HISTORY, horizon=HORIZON,
        # Frozen split-conformal calibration: its coverage collapses after
        # the shift, which is exactly what arms the drift detector.
        aci={"mode": "static", "window": 1800},
        detectors=[
            CoverageBreachDetector(
                nominal=0.95, tolerance=0.08, window=100,
                patience=25, warmup=max(shift // 2, 100),
            )
        ],
        server=server,
        refit_fn=refit_fn,
        refit_window=max(shift // 3, 100),
        cooldown=max(steps // 3, 100),
        promotion=PromotionPolicy(
            mode="shadow", eval_steps=max(steps // 10, 40),
            coverage_tolerance=0.03,
        ),
    )

    print(f"\n=== {title} ===")
    print(f"{steps}-step stream, 2.5x noise shift at step {shift}; "
          f"incumbent sigma={sigma0:.1f}")

    submitted, resolved = [], []
    stop = threading.Event()

    def client() -> None:
        rng = np.random.default_rng(11)
        while not stop.is_set():
            window = rng.uniform(0.0, 600.0, size=(HISTORY, feed.values.shape[1]))
            submitted.append(server.submit(window))

    with server:
        thread = threading.Thread(target=client, daemon=True)
        thread.start()
        for row in feed:
            runner.observe(row)
        runner.join_refit()
        stop.set()
        thread.join(timeout=10.0)
        resolved = [future.result(timeout=30.0) for future in submitted]

    print(f"client traffic: {len(resolved)}/{len(submitted)} requests resolved "
          f"(dropped: {len(submitted) - len(resolved)})")
    print(f"default route: {server.pool.default_name!r} "
          f"(version {server.model_version}), deployments: {server.pool.names()}")
    snapshot = runner.monitor.snapshot()
    print(f"rolling metrics now: coverage {snapshot['coverage']:.1f}%, "
          f"MAE {snapshot['mae']:.1f}")
    print("decision log:")
    for event in runner.event_log:
        if event.kind in ("coverage_breach", "candidate_staged", "model_swapped",
                          "candidate_promoted", "candidate_rejected", "recalibrated"):
            print(f"  {event}")


def main() -> None:
    args = parse_args()
    steps = 500 if args.fast else 1000
    run_phase("Phase 1: honest refit -> shadow eval -> auto-promote",
              steps, degrade=False)
    run_phase("Phase 2: degraded refit -> shadow eval -> reject + rollback",
              steps, degrade=True)
    print("\nSame gate, opposite verdicts: candidates earn promotion on live "
          "traffic, and a bad refit never reaches clients.")


if __name__ == "__main__":
    main()
