"""Streaming dashboard: live coverage through a mid-stream regime shift.

Run with::

    python examples/streaming_dashboard.py          # ~1400-step stream
    python examples/streaming_dashboard.py --fast   # shorter stream, ~2 s

The script demonstrates the ``repro.streaming`` subsystem end to end:

1. generate a :class:`~repro.data.StreamingTrafficFeed` whose observation
   noise jumps 2.5x half-way through the stream (a regime shift);
2. replay it through two online loops sharing a persistence forecaster —
   one with frozen split-conformal calibration, one with adaptive conformal
   inference (ACI) plus drift detection, a drift-triggered refit (the
   predictive scale is re-estimated from post-shift residuals) and
   :meth:`~repro.serving.InferenceServer.swap_model` publication;
3. print the rolling-coverage timeline — static coverage collapses after
   the shift while ACI pulls back to ~95% — and the auto-swap event log.

The persistence baseline keeps the demo model-free and fast; swap in any
fitted :class:`~repro.api.Forecaster` (``forecaster.stream(...)``) for the
same loop over a trained model.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.data import StreamingTrafficFeed, SyntheticTrafficConfig
from repro.graph import grid_network
from repro.serving import InferenceServer
from repro.streaming import (
    CoverageBreachDetector,
    ErrorCusumDetector,
    PersistenceForecaster,
    StreamingForecaster,
    StreamingMonitor,
)
from repro.utils import format_table

HISTORY, HORIZON = 8, 4


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="shorter stream")
    parser.add_argument("--steps", type=int, default=None, help="stream length (default per preset)")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    steps = args.steps or (700 if args.fast else 1400)
    shift = steps // 2
    network = grid_network(3, 3)

    print(f"Generating a {steps}-step stream with a 2.5x noise regime shift at step {shift} ...")
    feed = StreamingTrafficFeed.scenario(
        network, "regime_shift", num_steps=steps, seed=7, noise_scale=2.5,
        config=SyntheticTrafficConfig(noise_fraction=0.25),
    )

    # Persistence forecaster with a scale estimated on the pre-shift regime —
    # the online analogue of calibrating on a static validation split.
    sigma0 = float(np.median(np.abs(np.diff(feed.values[: shift // 2], axis=0))))
    model = PersistenceForecaster(horizon=HORIZON, sigma=sigma0)
    print(f"Persistence forecaster with pre-shift scale estimate sigma={sigma0:.1f}")

    def refit_fn(recent: np.ndarray) -> PersistenceForecaster:
        """Re-estimate the predictive scale from the drifted recent window."""
        sigma = float(np.median(np.abs(np.diff(recent, axis=0))))
        return PersistenceForecaster(horizon=HORIZON, sigma=sigma)

    monitor_window = min(288, max(steps // 5, 60))
    runners = {}
    # The static baseline gets *no* detectors: it models yesterday's batch
    # pipeline — calibrate once, freeze, hope.  The ACI loop carries the full
    # adaptive system: drift alarms, background refit, hot-swap publication.
    server = InferenceServer(model.predict, model_version="dashboard-v0", cache_size=0).start()
    runners["static"] = StreamingForecaster(
        model, history=HISTORY, horizon=HORIZON,
        aci={"mode": "static", "window": 1800},
        monitor=StreamingMonitor(window=monitor_window),
        detectors=[],
    )
    runners["ACI"] = StreamingForecaster(
        model, history=HISTORY, horizon=HORIZON,
        aci={"mode": "aci", "window": 1800, "gamma": 0.01},
        monitor=StreamingMonitor(window=monitor_window),
        detectors=[
            # Calibration alarm: rolling coverage collapsed.
            CoverageBreachDetector(
                nominal=0.95, tolerance=0.08, window=100,
                patience=25, warmup=max(shift // 2, 100),
            ),
            # Accuracy alarm: the error level itself jumped (fires even
            # when ACI keeps coverage afloat by widening the intervals).
            ErrorCusumDetector(slack=1.0, threshold=25.0, warmup=min(shift - 25, 300)),
        ],
        server=server,
        refit_fn=refit_fn,
        refit_window=max(shift // 3, 100),
        cooldown=max(steps // 3, 100),
    )

    print("Replaying the stream through both calibration modes ...")
    checkpoints = sorted({shift - 1, *range(steps // 7, steps, steps // 7), steps - 1})
    timeline = {label: {} for label in runners}
    for t, row in enumerate(feed):
        for label, runner in runners.items():
            runner.observe(row)
            if t in checkpoints:
                timeline[label][t] = runner.monitor.coverage
    for runner in runners.values():
        runner.join_refit()

    rows = [
        [
            t,
            "post-shift" if t >= shift else "pre-shift",
            f"{timeline['static'][t]:.1f}",
            f"{timeline['ACI'][t]:.1f}",
        ]
        for t in checkpoints
    ]
    print()
    print(format_table(
        ["step", "regime", "static coverage %", "ACI coverage %"],
        rows,
        title=f"Rolling coverage (window {monitor_window} steps, nominal 95%)",
    ))

    aci_runner = runners["ACI"]
    print("\nEvent log (ACI loop):")
    events = list(aci_runner.event_log)
    if not events:
        print("  (no events fired)")
    for event in events[:10]:
        print(f"  {event}")
    if len(events) > 10:
        remaining = len(events) - 10
        print(f"  ... (+{remaining} more; the CUSUM alarm keeps re-firing while "
              "the error level stays above its pre-shift baseline)")
    if aci_runner.server is not None:
        print(f"\nServer model version after auto-swap: {aci_runner.server.model_version}")
        aci_runner.server.stop()

    print(
        f"\nFinal rolling coverage — static: {runners['static'].monitor.coverage:.1f}%  "
        f"ACI: {aci_runner.monitor.coverage:.1f}% (target 95%)"
    )


if __name__ == "__main__":
    main()
