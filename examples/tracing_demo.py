"""Observability demo: tracing, tick profiling and structured logs, live.

Run with::

    python examples/tracing_demo.py          # default sizes
    python examples/tracing_demo.py --fast   # smaller run, a couple seconds

The script turns the ``repro.obs`` layer on and shows every surface over a
real HTTP gateway:

1. enable tracing + profiling + structured logging with a fixed seed
   (``repro.obs.configure``) — IDs and sampling are deterministic;
2. send ``POST /predict`` requests and follow one ``X-Trace-Id`` into
   ``GET /trace``: the span tree crosses threads, from the gateway handler
   through the router into the batch worker and the model pass;
3. drive a small :class:`~repro.fleet.StreamFleet` through warmup so every
   tick is its own trace and the per-tick phases (``window_build``,
   ``batch_wait``, ``model_forward``, ``unscale``, ``aci_update``, ...)
   accumulate in the profiler — then print the cost breakdown;
4. print the structured event ring (promotions, drift, chaos would land
   here too) and the obs families a Prometheus scrape exports.

Every surface is also plain HTTP — the same ``curl`` works against any
long-running gateway with obs enabled.
"""

from __future__ import annotations

import argparse
import json
import urllib.request

import numpy as np

import repro.obs as obs
from repro.core.inference import PredictionResult
from repro.fleet import StreamFleet
from repro.gateway import Gateway, parse_prometheus_text
from repro.obs.events import recent_events
from repro.obs.profiler import profiler
from repro.serving import InferenceServer

HISTORY, HORIZON, NODES = 8, 4, 4


def http_call(url: str, method: str, path: str, body=None):
    """One JSON request; returns ``(status, parsed_body, headers)``."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=15) as response:
        status, raw = response.status, response.read().decode()
        headers = dict(response.headers)
    if headers.get("Content-Type", "").startswith("application/json"):
        return status, json.loads(raw), headers
    return status, raw, headers


class Persistence:
    """Repeat-last-value forecaster — fast and deterministic."""

    def predict(self, windows: np.ndarray) -> PredictionResult:
        mean = np.repeat(windows[:, -1:, :], HORIZON, axis=1)
        variance = np.full_like(mean, 36.0)
        return PredictionResult(
            mean=mean, aleatoric_var=variance, epistemic_var=np.zeros_like(mean)
        )


def print_span_tree(tree: dict) -> None:
    def walk(record: dict, depth: int) -> None:
        duration = record["duration_ms"]
        timing = f"{duration:.2f} ms" if duration is not None else "open"
        print(f"    {'  ' * depth}{record['name']}  [{timing}]  ({record['thread']})")
        for child in record["children"]:
            walk(child, depth + 1)

    print(f"  trace {tree['trace_id']} ({tree['num_spans']} spans)")
    for root in tree["spans"]:
        walk(root, 0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller run")
    parser.add_argument("--streams", type=int, default=None)
    parser.add_argument("--ticks", type=int, default=None)
    args = parser.parse_args()
    num_streams = args.streams or (4 if args.fast else 16)
    num_ticks = args.ticks or (HISTORY + 4 if args.fast else HISTORY + 24)

    # 1. Flip the whole obs layer on (it is off, and free, by default).
    obs.configure(enabled=True, seed=0, log_sink=False)
    print("Tracing enabled: deterministic IDs under seed 0\n")

    model = Persistence()
    server = InferenceServer(
        model.predict, model_version="demo", max_batch_size=64, max_wait_ms=2.0
    )
    fleet = StreamFleet(server, history=HISTORY, horizon=HORIZON)
    stream_names = [f"corridor-{i}" for i in range(num_streams)]
    fleet.add_streams(stream_names)
    gateway = Gateway(server, fleet=fleet)
    gateway.start(port=0)
    print(f"Gateway listening on {gateway.url}\n")
    try:
        # 2. One traced request, followed end to end by its X-Trace-Id.
        rng = np.random.default_rng(0)
        window = rng.uniform(0.0, 120.0, size=(HISTORY, NODES)).tolist()
        status, _, headers = http_call(
            gateway.url, "POST", "/predict", {"window": window}
        )
        trace_id = headers.get("X-Trace-Id")
        print(f"POST /predict -> {status}, X-Trace-Id: {trace_id}")

        status, body, _ = http_call(gateway.url, "GET", "/trace?limit=5")
        [tree] = [t for t in body["traces"] if t["trace_id"] == trace_id]
        print("the request's span tree (note the thread hop into the batch worker):")
        print_span_tree(tree)

        # 3. Tick the fleet through warmup; every tick is its own trace and
        #    every phase lands in the shared profiler.
        for tick in range(num_ticks):
            observations = {
                name: rng.uniform(0.0, 120.0, size=NODES).tolist()
                for name in stream_names
            }
            status, _, _ = http_call(
                gateway.url, "POST", "/observe", {"observations": observations}
            )
            assert status == 200
        print(f"\nObserved {num_ticks} ticks over {num_streams} streams.")
        print("Phase profile (where a tick's time goes):")
        print(profiler().summary())
        print(f"top phases by total cost: {', '.join(profiler().top_phases(3))}")

        # 4. The structured event ring + what Prometheus scrapes.
        print("\nEvent log (most recent structured events):")
        for record in recent_events(limit=5):
            kind = record["kind"]
            rest = {
                key: value
                for key, value in record.items()
                if key not in ("ts", "kind")
            }
            print(f"  {kind}: {rest}")
        if not recent_events():
            print("  (no drift/lifecycle events this short run)")

        status, text, _ = http_call(gateway.url, "GET", "/metrics")
        series = parse_prometheus_text(text)
        obs_families = sorted(
            name
            for name in series
            if name.startswith("obs_") or name.startswith("repro_phase_seconds")
        )
        print("\nObs families on GET /metrics:")
        for name in obs_families:
            print(f"  {name}")
        forward = series.get("repro_phase_seconds_count", {})
        count = forward.get((("phase", "model_forward"),))
        print(f"model_forward occurrences scraped: {count:.0f}")
    finally:
        gateway.stop(timeout=10.0)
        server.stop()
        obs.reset()
    print("\ngateway stopped cleanly")


if __name__ == "__main__":
    main()
