"""Serving demo: a fitted UQ method behind the threaded inference server.

Run with::

    python examples/serving_demo.py          # small preset
    python examples/serving_demo.py --fast   # tiny preset, a few seconds

The script walks through the serving stack added on top of the batched
Monte-Carlo engine:

1. train a heteroscedastic AGCRN with MC dropout (the "Combined" method);
2. time looped vs. vectorized (sample-folded) MC inference;
3. start an :class:`~repro.serving.InferenceServer` (micro-batching + LRU
   cache + worker pool) and push a stream of single-window requests at it,
   including duplicates that the cache absorbs;
4. print the serving statistics.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import TrainingConfig
from repro.data import SlidingWindowDataset, load_pems, train_val_test_split
from repro.uq import create_method
from repro.utils import format_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="tiny dataset and very short training")
    parser.add_argument("--num-samples", type=int, default=8, help="MC dropout samples per forecast")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    size = "tiny" if args.fast else "small"

    print(f"Loading synthetic PEMS08 ({size}) ...")
    traffic = load_pems("PEMS08", size=size)
    train, val, test = train_val_test_split(traffic)

    history, horizon = (6, 3) if args.fast else (12, 6)
    config = TrainingConfig(
        history=history,
        horizon=horizon,
        hidden_dim=8 if args.fast else 16,
        embed_dim=3,
        epochs=3 if args.fast else 8,
        mc_samples=args.num_samples,
    )
    print("Fitting the Combined method (heteroscedastic heads + MC dropout) ...")
    method = create_method("Combined", traffic.num_nodes, config=config)
    method.fit(train, val)

    windows, _ = SlidingWindowDataset(
        test.slice_steps(0, 60), history=history, horizon=horizon
    ).arrays()
    probe = windows[:4]

    print("Timing looped vs batched MC inference ...")
    start = time.perf_counter()
    method.predict(probe, vectorized=False)
    looped = time.perf_counter() - start
    start = time.perf_counter()
    method.predict(probe)
    batched = time.perf_counter() - start
    print(format_table(
        ["path", "latency (ms)", "speedup"],
        [["looped", looped * 1000.0, 1.0], ["batched", batched * 1000.0, looped / batched]],
        title=f"{len(probe)} windows x {args.num_samples} MC samples",
    ))

    print()
    print("Serving a request stream (every window twice -> 50% cache hits) ...")
    request_stream = np.concatenate([windows, windows], axis=0)
    server = method.serve(max_batch_size=8, max_wait_ms=2.0, cache_size=2048)
    with server:
        start = time.perf_counter()
        results = server.predict_many(request_stream)
        elapsed = time.perf_counter() - start
        stats = server.stats
    print(f"  served {len(results)} requests in {elapsed:.2f}s "
          f"({len(results) / elapsed:.0f} windows/s)")
    print(format_table(
        ["stat", "value"],
        [[name, value] for name, value in sorted(stats.items())],
        title="Server statistics",
    ))
    first = results[0]
    print(f"\nFirst forecast: mean[0,0]={first.mean[0, 0, 0]:.1f}, "
          f"95% interval half-width={1.96 * first.std[0, 0, 0]:.1f}")


if __name__ == "__main__":
    main()
