"""Tests for RoadNetwork, graph generators and adjacency normalizations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import graph
from repro.graph import RoadNetwork


class TestRoadNetwork:
    def test_basic_counts(self):
        net = RoadNetwork(4, [(0, 1), (1, 2), (2, 3)])
        assert net.num_nodes == 4
        assert net.num_edges == 3

    def test_degree(self):
        net = RoadNetwork(4, [(0, 1), (1, 2), (2, 3)])
        assert list(net.degree()) == [1, 2, 2, 1]

    def test_adjacency_symmetric(self):
        net = RoadNetwork(3, [(0, 1, 2.0), (1, 2)])
        adj = net.adjacency_matrix()
        assert np.allclose(adj, adj.T)
        assert adj[0, 1] == 2.0
        assert adj[1, 2] == 1.0

    def test_unweighted_adjacency(self):
        net = RoadNetwork(3, [(0, 1, 5.0)])
        assert net.adjacency_matrix(weighted=False)[0, 1] == 1.0

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            RoadNetwork(3, [(1, 1)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValueError):
            RoadNetwork(3, [(0, 1), (1, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            RoadNetwork(3, [(0, 5)])

    def test_rejects_bad_tuple(self):
        with pytest.raises(ValueError):
            RoadNetwork(3, [(0,)])

    def test_neighbors(self):
        net = RoadNetwork(4, [(0, 1), (0, 2), (2, 3)])
        assert net.neighbors(0) == [1, 2]
        assert net.neighbors(3) == [2]

    def test_is_connected(self):
        assert RoadNetwork(3, [(0, 1), (1, 2)]).is_connected()
        assert not RoadNetwork(3, [(0, 1)]).is_connected()

    def test_shortest_path_hops(self):
        net = RoadNetwork(4, [(0, 1), (1, 2), (2, 3)])
        hops = net.shortest_path_hops()
        assert hops[0, 3] == 3
        assert hops[0, 0] == 0

    def test_shortest_path_disconnected_is_inf(self):
        net = RoadNetwork(3, [(0, 1)])
        assert np.isinf(net.shortest_path_hops()[0, 2])

    def test_from_adjacency_roundtrip(self):
        original = RoadNetwork(4, [(0, 1), (1, 2, 3.0), (2, 3)])
        rebuilt = RoadNetwork.from_adjacency(original.adjacency_matrix())
        assert rebuilt.num_edges == original.num_edges
        assert np.allclose(rebuilt.adjacency_matrix(), original.adjacency_matrix())

    def test_from_adjacency_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            RoadNetwork.from_adjacency(np.ones((2, 3)))

    def test_to_networkx(self):
        net = RoadNetwork(3, [(0, 1), (1, 2)])
        g = net.to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 2


class TestGenerators:
    def test_ring(self):
        net = graph.ring_network(10)
        assert net.num_edges == 10
        assert np.all(net.degree() == 2)

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            graph.ring_network(2)

    def test_grid(self):
        net = graph.grid_network(3, 4)
        assert net.num_nodes == 12
        assert net.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert net.is_connected()

    def test_corridor_connected(self):
        net = graph.corridor_network(20, num_corridors=3, rng=np.random.default_rng(0))
        assert net.num_nodes == 20
        assert net.is_connected()

    def test_corridor_invalid(self):
        with pytest.raises(ValueError):
            graph.corridor_network(3, num_corridors=2)

    @pytest.mark.parametrize(
        "nodes,edges",
        [(358, 547), (307, 340), (883, 866), (170, 295)],
    )
    def test_pems_like_matches_table1_statistics(self, nodes, edges):
        net = graph.pems_like_network(nodes, edges, seed=1)
        assert net.num_nodes == nodes
        assert net.num_edges == edges

    def test_pems_like_small(self):
        net = graph.pems_like_network(20, 28, seed=0)
        assert net.num_nodes == 20
        assert net.num_edges == 28

    def test_pems_like_reproducible(self):
        a = graph.pems_like_network(40, 55, seed=7)
        b = graph.pems_like_network(40, 55, seed=7)
        assert a.edges == b.edges

    def test_pems_like_rejects_tiny_edge_budget(self):
        with pytest.raises(ValueError):
            graph.pems_like_network(100, 10)

    @given(
        nodes=st.integers(min_value=10, max_value=80),
        extra=st.integers(min_value=0, max_value=40),
        seed=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=20, deadline=None)
    def test_pems_like_edge_budget_property(self, nodes, extra, seed):
        edges = nodes - 1 + extra
        net = graph.pems_like_network(nodes, edges, seed=seed)
        assert net.num_nodes == nodes
        assert net.num_edges == edges
        # Road networks stay hub-free: the maximum degree should stay within a
        # small multiple of the average degree (2 * edges / nodes).
        average_degree = 2.0 * edges / nodes
        assert net.degree().max() <= max(6.0, 4.0 * average_degree)


class TestAdjacencyNormalizations:
    def _net(self):
        return graph.grid_network(3, 3)

    def test_symmetric_normalization_eigenvalues(self):
        adj = self._net().adjacency_matrix()
        sym = graph.symmetric_normalized_adjacency(adj)
        eigenvalues = np.linalg.eigvalsh(sym)
        assert eigenvalues.max() <= 1.0 + 1e-9
        assert eigenvalues.min() >= -1.0 - 1e-9

    def test_gcn_support_is_identity_plus_norm(self):
        adj = self._net().adjacency_matrix()
        support = graph.gcn_support(adj)
        assert np.allclose(support, np.eye(9) + graph.symmetric_normalized_adjacency(adj))

    def test_normalized_laplacian_psd(self):
        adj = self._net().adjacency_matrix()
        lap = graph.normalized_laplacian(adj)
        assert np.linalg.eigvalsh(lap).min() >= -1e-9

    def test_scaled_laplacian_spectrum_in_unit_interval(self):
        adj = self._net().adjacency_matrix()
        scaled = graph.scaled_laplacian(adj)
        eigenvalues = np.linalg.eigvalsh(scaled)
        assert eigenvalues.max() <= 1.0 + 1e-9
        assert eigenvalues.min() >= -1.0 - 1e-9

    def test_random_walk_rows_sum_to_one(self):
        adj = self._net().adjacency_matrix()
        walk = graph.random_walk_matrix(adj)
        assert np.allclose(walk.sum(axis=1), 1.0)

    def test_random_walk_isolated_node_row_is_zero(self):
        adj = np.zeros((3, 3))
        adj[0, 1] = adj[1, 0] = 1.0
        walk = graph.random_walk_matrix(adj)
        assert np.allclose(walk[2], 0.0)

    def test_chebyshev_polynomials_recurrence(self):
        adj = self._net().adjacency_matrix()
        polys = graph.chebyshev_polynomials(adj, order=4)
        assert len(polys) == 4
        assert np.allclose(polys[0], np.eye(9))
        scaled = graph.scaled_laplacian(adj)
        assert np.allclose(polys[3], 2.0 * scaled @ polys[2] - polys[1])

    def test_chebyshev_invalid_order(self):
        with pytest.raises(ValueError):
            graph.chebyshev_polynomials(np.eye(3), order=0)

    def test_diffusion_supports(self):
        adj = self._net().adjacency_matrix()
        forward, backward = graph.diffusion_supports(adj)
        assert np.allclose(forward.sum(axis=1), 1.0)
        assert np.allclose(backward.sum(axis=1), 1.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            graph.symmetric_normalized_adjacency(-np.eye(3))

    def test_gaussian_kernel_adjacency(self):
        distances = np.array([[0.0, 1.0, 10.0], [1.0, 0.0, 1.0], [10.0, 1.0, 0.0]])
        adj = graph.gaussian_kernel_adjacency(distances, threshold=0.05)
        assert adj[0, 1] > adj[0, 2]
        assert np.allclose(np.diag(adj), 0.0)

    def test_gaussian_kernel_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            graph.gaussian_kernel_adjacency(np.ones((2, 3)))
