"""Tests for the DeepSTUQ losses, temperature calibration and MC inference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    PredictionResult,
    TemperatureCalibrator,
    combined_loss,
    deterministic_forecast,
    heteroscedastic_gaussian_loss,
    monte_carlo_forecast,
    point_l1_loss,
    quantile_loss,
)
from repro.data.scalers import StandardScaler
from repro.models import AGCRN
from repro.tensor import Tensor, gradcheck


class TestLosses:
    def test_heteroscedastic_loss_minimized_at_truth(self):
        target = Tensor(np.zeros(10))
        good = heteroscedastic_gaussian_loss(Tensor(np.zeros(10)), Tensor(np.zeros(10)), target)
        bad_mean = heteroscedastic_gaussian_loss(Tensor(np.ones(10) * 3), Tensor(np.zeros(10)), target)
        assert bad_mean.item() > good.item()

    def test_heteroscedastic_loss_learns_variance(self):
        """For a fixed wrong mean, larger predicted variance lowers the loss."""
        target = Tensor(np.full(10, 5.0))
        mean = Tensor(np.zeros(10))
        small_var = heteroscedastic_gaussian_loss(mean, Tensor(np.zeros(10)), target)
        large_var = heteroscedastic_gaussian_loss(mean, Tensor(np.full(10, 3.0)), target)
        assert large_var.item() < small_var.item()

    def test_combined_loss_lambda_validation(self):
        x = Tensor(np.zeros(3))
        with pytest.raises(ValueError):
            combined_loss(x, x, x, lambda_weight=0.0)
        with pytest.raises(ValueError):
            combined_loss(x, x, x, lambda_weight=1.5)

    def test_combined_loss_interpolates(self):
        target = Tensor(np.zeros(5))
        mean = Tensor(np.full(5, 2.0))
        log_var = Tensor(np.zeros(5))
        pure_nll = combined_loss(mean, log_var, target, lambda_weight=1.0).item()
        mostly_l1 = combined_loss(mean, log_var, target, lambda_weight=0.01).item()
        expected_nll = heteroscedastic_gaussian_loss(mean, log_var, target).item()
        assert pure_nll == pytest.approx(expected_nll)
        assert mostly_l1 == pytest.approx(0.01 * expected_nll + 0.99 * 2.0, rel=1e-6)

    def test_combined_loss_gradcheck(self):
        rng = np.random.default_rng(0)
        mean = Tensor(rng.normal(size=6), requires_grad=True)
        log_var = Tensor(rng.normal(size=6), requires_grad=True)
        target = Tensor(rng.normal(size=6))
        assert gradcheck(lambda m, lv: combined_loss(m, lv, target, 0.3), [mean, log_var])

    def test_point_l1(self):
        assert point_l1_loss(Tensor([1.0, -1.0]), Tensor([0.0, 0.0])).item() == pytest.approx(1.0)

    def test_quantile_loss_mismatched_heads(self):
        outputs = {"lower": Tensor([0.0]), "upper": Tensor([1.0])}
        with pytest.raises(ValueError):
            quantile_loss(outputs, Tensor([0.5]), {"lower": 0.025})

    def test_quantile_loss_value(self):
        outputs = {"mean": Tensor([0.0])}
        loss = quantile_loss(outputs, Tensor([1.0]), {"mean": 0.5})
        assert loss.item() == pytest.approx(0.5)


class TestTemperatureCalibrator:
    def _predictions(self, scale, n=4000, seed=0):
        """Predictions whose claimed std is `scale`x the true residual std."""
        rng = np.random.default_rng(seed)
        mean = rng.uniform(0, 100, size=n)
        true_std = 5.0
        target = mean + rng.normal(scale=true_std, size=n)
        variance = np.full(n, (true_std * scale) ** 2)
        return target, mean, variance

    def test_closed_form_recovers_overconfidence(self):
        target, mean, variance = self._predictions(scale=0.5)
        t = TemperatureCalibrator.closed_form_temperature(target, mean, variance)
        assert t == pytest.approx(0.5, rel=0.05)

    def test_closed_form_recovers_underconfidence(self):
        target, mean, variance = self._predictions(scale=2.0)
        t = TemperatureCalibrator.closed_form_temperature(target, mean, variance)
        assert t == pytest.approx(2.0, rel=0.05)

    def test_lbfgs_matches_closed_form(self):
        target, mean, variance = self._predictions(scale=1.7)
        calibrator = TemperatureCalibrator()
        fitted = calibrator.fit(target, mean, variance, use_lbfgs=True)
        closed = calibrator.closed_form_temperature(target, mean, variance)
        assert fitted == pytest.approx(closed, rel=1e-3)

    def test_calibration_fixes_variance_scale(self):
        target, mean, variance = self._predictions(scale=3.0)
        calibrator = TemperatureCalibrator()
        calibrator.fit(target, mean, variance)
        calibrated = calibrator.calibrate_variance(variance)
        empirical = np.mean((target - mean) ** 2)
        assert np.mean(calibrated) == pytest.approx(empirical, rel=0.1)

    def test_calibrate_std(self):
        calibrator = TemperatureCalibrator()
        calibrator.temperature = 2.0
        assert calibrator.calibrate_std(np.array([4.0]))[0] == pytest.approx(2.0)

    def test_objective_gradient_matches_finite_difference(self):
        target, mean, variance = self._predictions(scale=1.3, n=500)
        calibrator = TemperatureCalibrator()
        t = 1.234
        value, gradient = calibrator.objective(t, target, mean, variance)
        eps = 1e-5
        plus, _ = calibrator.objective(t + eps, target, mean, variance)
        minus, _ = calibrator.objective(t - eps, target, mean, variance)
        assert gradient == pytest.approx((plus - minus) / (2 * eps), rel=1e-4)

    def test_well_calibrated_gives_temperature_near_one(self):
        target, mean, variance = self._predictions(scale=1.0)
        t = TemperatureCalibrator().fit(target, mean, variance)
        assert t == pytest.approx(1.0, abs=0.05)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            TemperatureCalibrator().fit(np.zeros(3), np.zeros(4), np.ones(3))

    def test_invalid_max_iter(self):
        with pytest.raises(ValueError):
            TemperatureCalibrator(max_iter=0)

    @given(st.floats(min_value=0.3, max_value=3.0))
    @settings(max_examples=20, deadline=None)
    def test_closed_form_property(self, scale):
        target, mean, variance = self._predictions(scale=scale, n=3000, seed=7)
        t = TemperatureCalibrator.closed_form_temperature(target, mean, variance)
        assert t == pytest.approx(scale, rel=0.1)


class TestPredictionResultAndInference:
    def _result(self):
        mean = np.full((4, 3, 2), 100.0)
        return PredictionResult(
            mean=mean, aleatoric_var=np.full_like(mean, 9.0), epistemic_var=np.full_like(mean, 16.0)
        )

    def test_total_variance_decomposition(self):
        result = self._result()
        assert np.allclose(result.total_var, 25.0)
        assert np.allclose(result.std, 5.0)
        assert np.allclose(result.aleatoric_std, 3.0)
        assert np.allclose(result.epistemic_std, 4.0)

    def test_interval(self):
        lower, upper = self._result().interval()
        assert np.allclose(upper - lower, 2 * 1.96 * 5.0, atol=0.01)

    def test_replace_interval_std(self):
        replaced = self._result().replace_interval_std(np.full((4, 3, 2), 2.0))
        assert np.allclose(replaced.total_var, 4.0)
        assert np.allclose(replaced.epistemic_var, 0.0)

    def _tiny_model_and_inputs(self):
        rng = np.random.default_rng(0)
        model = AGCRN(
            num_nodes=4, history=5, horizon=3, hidden_dim=4, embed_dim=2,
            encoder_dropout=0.2, decoder_dropout=0.2,
            heads=("mean", "log_var"), rng=rng,
        )
        scaler = StandardScaler().fit(np.array([0.0, 100.0]))
        inputs = rng.uniform(-1, 1, size=(6, 5, 4))
        return model, scaler, inputs

    def test_deterministic_forecast_shapes_and_zero_epistemic(self):
        model, scaler, inputs = self._tiny_model_and_inputs()
        result = deterministic_forecast(model, inputs, scaler)
        assert result.mean.shape == (6, 3, 4)
        assert np.allclose(result.epistemic_var, 0.0)
        assert np.all(result.aleatoric_var > 0.0)

    def test_deterministic_forecast_is_repeatable(self):
        model, scaler, inputs = self._tiny_model_and_inputs()
        a = deterministic_forecast(model, inputs, scaler)
        b = deterministic_forecast(model, inputs, scaler)
        assert np.allclose(a.mean, b.mean)

    def test_monte_carlo_forecast_decomposes_uncertainty(self):
        model, scaler, inputs = self._tiny_model_and_inputs()
        result = monte_carlo_forecast(
            model, inputs, scaler, num_samples=5, rng=np.random.default_rng(1)
        )
        assert result.mean.shape == (6, 3, 4)
        assert np.all(result.aleatoric_var > 0.0)
        assert result.epistemic_var.mean() > 0.0

    def test_monte_carlo_reproducible_with_seed(self):
        model, scaler, inputs = self._tiny_model_and_inputs()
        a = monte_carlo_forecast(model, inputs, scaler, num_samples=3, rng=np.random.default_rng(5))
        b = monte_carlo_forecast(model, inputs, scaler, num_samples=3, rng=np.random.default_rng(5))
        assert np.allclose(a.mean, b.mean)
        assert np.allclose(a.total_var, b.total_var)

    def test_monte_carlo_temperature_shrinks_aleatoric(self):
        model, scaler, inputs = self._tiny_model_and_inputs()
        base = monte_carlo_forecast(model, inputs, scaler, num_samples=3, temperature=1.0,
                                    rng=np.random.default_rng(2))
        cooled = monte_carlo_forecast(model, inputs, scaler, num_samples=3, temperature=2.0,
                                      rng=np.random.default_rng(2))
        assert np.allclose(cooled.aleatoric_var, base.aleatoric_var / 4.0)

    def test_monte_carlo_restores_dropout_state(self):
        model, scaler, inputs = self._tiny_model_and_inputs()
        monte_carlo_forecast(model, inputs, scaler, num_samples=2)
        assert not model.encoder_dropout.mc_active

    def test_monte_carlo_invalid_args(self):
        model, scaler, inputs = self._tiny_model_and_inputs()
        with pytest.raises(ValueError):
            monte_carlo_forecast(model, inputs, scaler, num_samples=0)
        with pytest.raises(ValueError):
            monte_carlo_forecast(model, inputs, scaler, temperature=0.0)

    def test_single_sample_has_zero_epistemic(self):
        model, scaler, inputs = self._tiny_model_and_inputs()
        result = monte_carlo_forecast(model, inputs, scaler, num_samples=1)
        assert np.allclose(result.epistemic_var, 0.0)
