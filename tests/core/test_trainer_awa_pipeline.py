"""Tests for the Trainer, AWA re-training and the three-stage DeepSTUQ pipeline."""

import numpy as np
import pytest

from repro.core import (
    AWAConfig,
    AWATrainer,
    DeepSTUQConfig,
    DeepSTUQPipeline,
    Trainer,
    TrainingConfig,
    combined_loss,
    point_l1_loss,
)
from repro.data import TrafficData, generate_traffic, train_val_test_split
from repro.graph import grid_network
from repro.models import AGCRN


NUM_NODES = 9


def _traffic(num_steps=700, seed=0):
    network = grid_network(3, 3)
    values = generate_traffic(network, num_steps, seed=seed)
    return TrafficData(name="trainer-test", values=values, network=network)


def _config(**overrides):
    params = dict(
        history=6, horizon=3, hidden_dim=8, embed_dim=3,
        epochs=2, batch_size=64, encoder_dropout=0.1, decoder_dropout=0.2, seed=0,
    )
    params.update(overrides)
    return TrainingConfig(**params)


def _point_model(config, seed=0):
    return AGCRN(
        num_nodes=NUM_NODES, history=config.history, horizon=config.horizon,
        hidden_dim=config.hidden_dim, embed_dim=config.embed_dim,
        encoder_dropout=config.encoder_dropout, decoder_dropout=config.decoder_dropout,
        heads=("mean",), rng=np.random.default_rng(seed),
    )


class TestTrainingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(optimizer="rmsprop")

    def test_defaults_match_paper(self):
        config = TrainingConfig()
        assert config.history == 12 and config.horizon == 12
        assert config.learning_rate == pytest.approx(3e-3)
        assert config.weight_decay == pytest.approx(1e-6)
        assert config.lambda_weight == pytest.approx(0.1)
        assert config.decoder_dropout == pytest.approx(0.2)
        assert config.mc_samples == 10


class TestTrainer:
    def test_training_reduces_loss(self):
        traffic = _traffic()
        config = _config(epochs=3)
        model = _point_model(config)
        trainer = Trainer(model, config, lambda out, tgt: point_l1_loss(out, tgt))
        history = trainer.fit(traffic)
        assert len(history) == 3
        assert history[-1]["train_loss"] < history[0]["train_loss"]

    def test_validation_loss_recorded(self):
        traffic = _traffic()
        train, val, _ = train_val_test_split(traffic)
        config = _config(epochs=1)
        model = _point_model(config)
        trainer = Trainer(model, config, lambda out, tgt: point_l1_loss(out, tgt))
        history = trainer.fit(train, val_data=val)
        assert "val_loss" in history[0]
        assert np.isfinite(history[0]["val_loss"])

    def test_make_loader_requires_scaler(self):
        config = _config()
        trainer = Trainer(_point_model(config), config, lambda o, t: point_l1_loss(o, t))
        with pytest.raises(RuntimeError):
            trainer.make_loader(_traffic())

    def test_sgd_option(self):
        config = _config(optimizer="sgd", epochs=1, learning_rate=1e-3)
        model = _point_model(config)
        trainer = Trainer(model, config, lambda o, t: point_l1_loss(o, t))
        history = trainer.fit(_traffic(num_steps=300))
        assert np.isfinite(history[0]["train_loss"])

    def test_probabilistic_training_produces_finite_logvar(self):
        traffic = _traffic()
        config = _config(epochs=2)
        model = AGCRN(
            num_nodes=NUM_NODES, history=config.history, horizon=config.horizon,
            hidden_dim=8, embed_dim=3, heads=("mean", "log_var"), rng=np.random.default_rng(0),
        )
        trainer = Trainer(
            model, config,
            lambda out, tgt: combined_loss(out["mean"], out["log_var"], tgt, 0.1),
        )
        history = trainer.fit(traffic)
        assert all(np.isfinite(h["train_loss"]) for h in history)


class TestAWA:
    def test_awa_config_validation(self):
        with pytest.raises(ValueError):
            AWAConfig(epochs=1)
        with pytest.raises(ValueError):
            AWAConfig(optimizer="rmsprop")
        assert AWAConfig(epochs=20).num_averaged_models == 10

    def test_awa_retraining_runs_and_averages(self):
        traffic = _traffic()
        config = _config(epochs=1)
        model = _point_model(config)
        trainer = Trainer(model, config, lambda o, t: point_l1_loss(o, t))
        trainer.fit(traffic)
        awa = AWATrainer(trainer, AWAConfig(epochs=4, lr_max=3e-3, lr_min=3e-5))
        before = {k: v.copy() for k, v in model.state_dict().items()}
        awa.retrain(traffic)
        after = model.state_dict()
        assert len(awa.history) == 4
        changed = any(not np.allclose(before[k], after[k]) for k in before)
        assert changed

    def test_awa_learning_rate_follows_cyclic_schedule(self):
        traffic = _traffic(num_steps=400)
        config = _config(epochs=1)
        model = _point_model(config)
        trainer = Trainer(model, config, lambda o, t: point_l1_loss(o, t))
        trainer.fit(traffic)
        awa_config = AWAConfig(epochs=2, lr_max=3e-3, lr_min=3e-5)
        awa = AWATrainer(trainer, awa_config)
        awa.retrain(traffic)
        rates = np.array(awa.learning_rates)
        steps_per_epoch = len(rates) // 2
        # Even epoch: cosine decay from lr_max to lr_min; odd epoch: constant lr_min.
        assert rates[0] == pytest.approx(3e-3)
        assert rates[steps_per_epoch - 1] == pytest.approx(3e-5, rel=1e-6)
        assert np.allclose(rates[steps_per_epoch:], 3e-5)

    def test_awa_does_not_destroy_accuracy(self):
        """The averaged model should stay in the same loss ballpark as the pre-trained one."""
        traffic = _traffic(num_steps=600)
        train, val, _ = train_val_test_split(traffic)
        config = _config(epochs=3)
        model = _point_model(config)
        trainer = Trainer(model, config, lambda o, t: point_l1_loss(o, t))
        trainer.fit(train)
        loader = trainer.make_loader(val, shuffle=False)
        before = trainer.evaluate(loader)
        AWATrainer(trainer, AWAConfig(epochs=4)).retrain(train)
        after = trainer.evaluate(loader)
        assert after < before * 1.5


class TestDeepSTUQPipeline:
    @pytest.fixture(scope="class")
    def fitted_pipeline(self):
        traffic = _traffic(num_steps=700, seed=3)
        train, val, test = train_val_test_split(traffic)
        config = DeepSTUQConfig(
            training=_config(epochs=2, mc_samples=4),
            awa=AWAConfig(epochs=2),
        )
        pipeline = DeepSTUQPipeline(NUM_NODES, config)
        pipeline.fit(train, val)
        return pipeline, test

    def test_stages_recorded(self, fitted_pipeline):
        pipeline, _ = fitted_pipeline
        assert set(pipeline.stage_history) == {"pretraining", "awa", "calibration"}
        assert pipeline.fitted

    def test_temperature_is_positive(self, fitted_pipeline):
        pipeline, _ = fitted_pipeline
        assert pipeline.calibrator.temperature > 0

    def test_prediction_shapes_and_decomposition(self, fitted_pipeline):
        pipeline, test = fitted_pipeline
        result, targets = pipeline.predict_on(test.slice_steps(0, 120))
        assert result.mean.shape == targets.shape
        assert np.all(result.aleatoric_var >= 0)
        assert np.all(result.epistemic_var >= 0)
        assert result.aleatoric_var.mean() > result.epistemic_var.mean()

    def test_single_pass_prediction(self, fitted_pipeline):
        pipeline, test = fitted_pipeline
        inputs, targets = pipeline._windows(test.slice_steps(0, 80))
        result = pipeline.predict_single_pass(inputs)
        assert result.mean.shape == targets.shape
        assert np.allclose(result.epistemic_var, 0.0)

    def test_mc_prediction_reproducible(self, fitted_pipeline):
        pipeline, test = fitted_pipeline
        inputs, _ = pipeline._windows(test.slice_steps(0, 60))
        a = pipeline.predict(inputs, num_samples=3, rng=np.random.default_rng(0))
        b = pipeline.predict(inputs, num_samples=3, rng=np.random.default_rng(0))
        assert np.allclose(a.mean, b.mean)

    def test_predict_before_fit_raises(self):
        pipeline = DeepSTUQPipeline(NUM_NODES, DeepSTUQConfig(training=_config()))
        with pytest.raises(RuntimeError):
            pipeline.predict(np.zeros((1, 6, NUM_NODES)))

    def test_ablation_flags(self):
        traffic = _traffic(num_steps=500, seed=4)
        train, val, _ = train_val_test_split(traffic)
        config = DeepSTUQConfig(
            training=_config(epochs=1, mc_samples=2),
            awa=AWAConfig(epochs=2),
            use_awa=False,
            use_calibration=False,
        )
        pipeline = DeepSTUQPipeline(NUM_NODES, config)
        pipeline.fit(train, val)
        assert "awa" not in pipeline.stage_history
        assert pipeline.calibrator.temperature == 1.0
