"""Tests for the synthetic traffic generator, PEMS registry, datasets, scalers and loader."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import data as data_pkg
from repro.data import (
    DataLoader,
    MinMaxScaler,
    SlidingWindowDataset,
    StandardScaler,
    StreamScenarioEvent,
    StreamingTrafficFeed,
    SyntheticTrafficConfig,
    TrafficData,
    generate_traffic,
    load_pems,
    train_val_test_split,
)
from repro.data.pems import DATASET_SPECS
from repro.graph import grid_network, ring_network


def _small_traffic(num_steps=600, seed=0):
    network = grid_network(3, 4)
    values = generate_traffic(network, num_steps, seed=seed)
    return TrafficData(name="test", values=values, network=network)


class TestSyntheticGenerator:
    def test_shape_and_nonnegative(self):
        network = ring_network(8)
        values = generate_traffic(network, 500, seed=1)
        assert values.shape == (500, 8)
        assert np.all(values >= 0.0)

    def test_reproducible(self):
        network = ring_network(8)
        a = generate_traffic(network, 300, seed=5)
        b = generate_traffic(network, 300, seed=5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        network = ring_network(8)
        a = generate_traffic(network, 300, seed=1)
        b = generate_traffic(network, 300, seed=2)
        assert not np.allclose(a, b)

    def test_daily_seasonality_peaks(self):
        """Rush-hour flow should clearly exceed night-time flow."""
        config = SyntheticTrafficConfig(dropout_probability=0.0, incident_rate_per_day_per_node=0.0)
        network = ring_network(6)
        values = generate_traffic(network, 288 * 7, config=config, seed=0)
        steps_per_day = config.steps_per_day
        hour = lambda h: int(h * steps_per_day / 24)
        day_mask = np.zeros(values.shape[0], dtype=bool)
        night_mask = np.zeros(values.shape[0], dtype=bool)
        for day in range(7):
            day_mask[day * steps_per_day + hour(7) : day * steps_per_day + hour(9)] = True
            night_mask[day * steps_per_day + hour(2) : day * steps_per_day + hour(4)] = True
        assert values[day_mask].mean() > 2.0 * values[night_mask].mean()

    def test_weekend_attenuation(self):
        config = SyntheticTrafficConfig(dropout_probability=0.0, incident_rate_per_day_per_node=0.0)
        network = ring_network(6)
        values = generate_traffic(network, 288 * 14, config=config, seed=3)
        day_means = values.reshape(14, 288, 6).mean(axis=(1, 2))
        weekday = day_means[[0, 1, 2, 3, 4, 7, 8, 9, 10, 11]].mean()
        weekend = day_means[[5, 6, 12, 13]].mean()
        assert weekend < weekday

    def test_spatial_correlation_decays_with_distance(self):
        """Adjacent sensors should correlate more strongly than distant ones."""
        config = SyntheticTrafficConfig(dropout_probability=0.0, incident_rate_per_day_per_node=0.0)
        network = ring_network(20)
        values = generate_traffic(network, 288 * 10, config=config, seed=2)
        detrended = values - values.mean(axis=0)
        corr = np.corrcoef(detrended.T)
        near = np.mean([corr[i, (i + 1) % 20] for i in range(20)])
        far = np.mean([corr[i, (i + 10) % 20] for i in range(20)])
        assert near > far

    def test_heteroscedastic_noise(self):
        """Residual variance should grow with the flow level."""
        config = SyntheticTrafficConfig(dropout_probability=0.0, incident_rate_per_day_per_node=0.0)
        network = ring_network(6)
        values = generate_traffic(network, 288 * 20, config=config, seed=4)
        node = values[:, 0].reshape(20, 288)
        profile = node.mean(axis=0)
        residuals = node - profile
        high = profile > np.quantile(profile, 0.8)
        low = profile < np.quantile(profile, 0.2)
        assert residuals[:, high].std() > residuals[:, low].std()

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            generate_traffic(ring_network(5), 0)


class TestPemsRegistry:
    def test_registry_matches_paper_table1(self):
        assert DATASET_SPECS["PEMS03"].num_nodes == 358
        assert DATASET_SPECS["PEMS03"].num_edges == 547
        assert DATASET_SPECS["PEMS03"].num_steps == 26_208
        assert DATASET_SPECS["PEMS04"].num_nodes == 307
        assert DATASET_SPECS["PEMS04"].num_edges == 340
        assert DATASET_SPECS["PEMS04"].num_steps == 16_992
        assert DATASET_SPECS["PEMS07"].num_nodes == 883
        assert DATASET_SPECS["PEMS07"].num_edges == 866
        assert DATASET_SPECS["PEMS07"].num_steps == 28_224
        assert DATASET_SPECS["PEMS08"].num_nodes == 170
        assert DATASET_SPECS["PEMS08"].num_edges == 295
        assert DATASET_SPECS["PEMS08"].num_steps == 17_856

    def test_available_datasets(self):
        assert data_pkg.available_datasets() == ["PEMS03", "PEMS04", "PEMS07", "PEMS08"]

    def test_load_tiny(self):
        traffic = load_pems("PEMS08", size="tiny")
        assert traffic.num_nodes >= 8
        assert traffic.num_steps >= 576
        assert traffic.network.num_edges >= traffic.num_nodes - 1

    def test_load_case_insensitive(self):
        traffic = load_pems("pems08", size="tiny")
        assert "PEMS08" in traffic.name

    def test_load_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_pems("PEMS99")

    def test_load_unknown_size(self):
        with pytest.raises(ValueError):
            load_pems("PEMS08", size="gigantic")

    def test_scaled_spec_validation(self):
        with pytest.raises(ValueError):
            DATASET_SPECS["PEMS08"].scaled(0.0, 0.5)

    def test_load_reproducible(self):
        a = load_pems("PEMS08", size="tiny")
        b = load_pems("PEMS08", size="tiny")
        assert np.allclose(a.values, b.values)


class TestTrafficDataAndSplits:
    def test_traffic_data_validation(self):
        network = ring_network(5)
        with pytest.raises(ValueError):
            TrafficData(name="bad", values=np.zeros((10, 4)), network=network)
        with pytest.raises(ValueError):
            TrafficData(name="bad", values=np.zeros(10), network=network)

    def test_summary(self):
        traffic = _small_traffic()
        summary = traffic.summary()
        assert summary["num_nodes"] == 12
        assert summary["num_steps"] == 600
        assert summary["mean_flow"] > 0

    def test_split_ratios(self):
        traffic = _small_traffic(num_steps=1000)
        train, val, test = train_val_test_split(traffic)
        assert train.num_steps == 600
        assert val.num_steps == 200
        assert test.num_steps == 200

    def test_split_is_chronological(self):
        traffic = _small_traffic(num_steps=500)
        train, val, test = train_val_test_split(traffic)
        assert np.allclose(np.concatenate([train.values, val.values, test.values]), traffic.values)

    def test_split_invalid_ratios(self):
        with pytest.raises(ValueError):
            train_val_test_split(_small_traffic(), ratios=(0.5, 0.5, 0.5))


class TestSlidingWindow:
    def test_sample_shapes(self):
        dataset = SlidingWindowDataset(_small_traffic(), history=12, horizon=12)
        x, y = dataset[0]
        assert x.shape == (12, 12)
        assert y.shape == (12, 12)

    def test_length(self):
        traffic = _small_traffic(num_steps=100)
        dataset = SlidingWindowDataset(traffic, history=12, horizon=12)
        assert len(dataset) == 100 - 12 - 12 + 1

    def test_windows_are_consecutive(self):
        traffic = _small_traffic(num_steps=100)
        dataset = SlidingWindowDataset(traffic, history=4, horizon=2)
        x, y = dataset[10]
        assert np.allclose(x, traffic.values[10:14])
        assert np.allclose(y, traffic.values[14:16])

    def test_index_out_of_range(self):
        dataset = SlidingWindowDataset(_small_traffic(num_steps=50), history=12, horizon=12)
        with pytest.raises(IndexError):
            dataset[len(dataset)]

    def test_too_short_series(self):
        with pytest.raises(ValueError):
            SlidingWindowDataset(_small_traffic(num_steps=20), history=12, horizon=12)

    def test_arrays(self):
        dataset = SlidingWindowDataset(_small_traffic(num_steps=60), history=6, horizon=3)
        inputs, targets = dataset.arrays()
        assert inputs.shape == (len(dataset), 6, 12)
        assert targets.shape == (len(dataset), 3, 12)


class TestScalers:
    def test_standard_scaler_statistics(self):
        rng = np.random.default_rng(0)
        values = rng.normal(loc=50.0, scale=10.0, size=(1000, 3))
        scaled = StandardScaler().fit_transform(values)
        assert abs(scaled.mean()) < 1e-9
        assert abs(scaled.std() - 1.0) < 1e-9

    def test_standard_scaler_roundtrip(self):
        values = np.random.default_rng(1).normal(loc=100.0, scale=30.0, size=(200, 4))
        scaler = StandardScaler().fit(values)
        assert np.allclose(scaler.inverse_transform(scaler.transform(values)), values)

    def test_standard_scaler_std_and_var_inversion(self):
        values = np.random.default_rng(2).normal(loc=10.0, scale=4.0, size=1000)
        scaler = StandardScaler().fit(values)
        assert np.isclose(scaler.inverse_transform_std(np.array(1.0)), scaler.std_)
        assert np.isclose(scaler.inverse_transform_var(np.array(1.0)), scaler.std_ ** 2)

    def test_standard_scaler_unfitted(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones(3))

    def test_standard_scaler_constant_input(self):
        scaler = StandardScaler().fit(np.full(10, 7.0))
        assert scaler.std_ == 1.0

    def test_minmax_range(self):
        values = np.random.default_rng(3).uniform(5.0, 25.0, size=(100, 2))
        scaled = MinMaxScaler().fit_transform(values)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0

    def test_minmax_roundtrip(self):
        values = np.random.default_rng(4).uniform(-3.0, 9.0, size=50)
        scaler = MinMaxScaler().fit(values)
        assert np.allclose(scaler.inverse_transform(scaler.transform(values)), values)

    def test_minmax_unfitted(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones(3))

    @given(
        st.lists(st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False), min_size=2, max_size=50)
    )
    @settings(max_examples=30, deadline=None)
    def test_standard_scaler_roundtrip_property(self, raw):
        values = np.asarray(raw)
        scaler = StandardScaler().fit(values)
        assert np.allclose(scaler.inverse_transform(scaler.transform(values)), values, atol=1e-6)


class TestDataLoader:
    def test_batch_shapes(self):
        dataset = SlidingWindowDataset(_small_traffic(num_steps=200), history=12, horizon=12)
        loader = DataLoader(dataset, batch_size=16, rng=np.random.default_rng(0))
        x, y = next(iter(loader))
        assert x.shape == (16, 12, 12)
        assert y.shape == (16, 12, 12)

    def test_len_with_and_without_drop_last(self):
        dataset = SlidingWindowDataset(_small_traffic(num_steps=100), history=12, horizon=12)
        n = len(dataset)
        keep = DataLoader(dataset, batch_size=16, drop_last=False)
        drop = DataLoader(dataset, batch_size=16, drop_last=True)
        assert len(keep) == (n + 15) // 16
        assert len(drop) == n // 16

    def test_covers_all_samples(self):
        dataset = SlidingWindowDataset(_small_traffic(num_steps=80), history=6, horizon=6)
        loader = DataLoader(dataset, batch_size=10, shuffle=False)
        total = sum(x.shape[0] for x, _ in loader)
        assert total == len(dataset)

    def test_shuffle_changes_order(self):
        dataset = SlidingWindowDataset(_small_traffic(num_steps=120), history=6, horizon=6)
        ordered = DataLoader(dataset, batch_size=len(dataset), shuffle=False)
        shuffled = DataLoader(dataset, batch_size=len(dataset), shuffle=True, rng=np.random.default_rng(0))
        x_ordered, _ = next(iter(ordered))
        x_shuffled, _ = next(iter(shuffled))
        assert not np.allclose(x_ordered, x_shuffled)

    def test_invalid_batch_size(self):
        dataset = SlidingWindowDataset(_small_traffic(num_steps=60), history=6, horizon=6)
        with pytest.raises(ValueError):
            DataLoader(dataset, batch_size=0)


class TestStreamingTrafficFeed:
    def _network(self):
        return grid_network(3, 3)

    def test_iteration_yields_every_step(self):
        feed = StreamingTrafficFeed(self._network(), num_steps=50, seed=0)
        rows = list(feed)
        assert len(rows) == len(feed) == 50
        assert all(row.shape == (feed.num_nodes,) for row in rows)
        np.testing.assert_array_equal(np.stack(rows), feed.values)

    def test_deterministic_for_fixed_seed(self):
        a = StreamingTrafficFeed(self._network(), num_steps=80, seed=3)
        b = StreamingTrafficFeed(self._network(), num_steps=80, seed=3)
        np.testing.assert_array_equal(a.values, b.values)
        np.testing.assert_array_equal(a.clean, b.clean)

    def test_clean_signal_is_noise_free_center(self):
        feed = StreamingTrafficFeed(self._network(), num_steps=400, seed=1)
        residual = feed.values - feed.clean
        # Residuals should be on the noise-sigma scale, not the flow scale.
        assert np.nanstd(residual) < 0.5 * feed.clean.mean()
        assert np.all(feed.noise_sigma > 0.0)

    def test_regime_shift_scales_noise_from_start_step(self):
        feed = StreamingTrafficFeed(
            self._network(),
            num_steps=200,
            seed=2,
            events=[StreamScenarioEvent(kind="regime_shift", start=100, noise_scale=3.0)],
        )
        assert np.allclose(feed.noise_sigma[100:] / feed.noise_sigma[:100], 3.0) is False
        # Per-entry sigma after the shift is exactly 3x what the same clean
        # level would produce before it.
        config = feed.config
        base = config.noise_floor + config.noise_fraction * feed.clean
        np.testing.assert_allclose(feed.noise_sigma[:100], base[:100])
        np.testing.assert_allclose(feed.noise_sigma[100:], 3.0 * base[100:])

    def test_regime_shift_flow_scale(self):
        quiet = StreamingTrafficFeed(self._network(), num_steps=120, seed=5)
        shifted = StreamingTrafficFeed(
            self._network(),
            num_steps=120,
            seed=5,
            events=[StreamScenarioEvent(kind="regime_shift", start=60, flow_scale=1.5)],
        )
        np.testing.assert_allclose(shifted.clean[:60], quiet.clean[:60])
        np.testing.assert_allclose(shifted.clean[60:], 1.5 * quiet.clean[60:])

    def test_dropout_burst_emits_nan_rows(self):
        feed = StreamingTrafficFeed(
            self._network(),
            num_steps=100,
            seed=4,
            events=[
                StreamScenarioEvent(
                    kind="dropout_burst", start=40, duration=20, node_fraction=0.5
                )
            ],
        )
        burst = feed.values[40:60]
        assert np.isnan(burst).any()
        assert not np.isnan(feed.values[:40]).any()
        assert not np.isnan(feed.values[60:]).any()
        # The same sensors stay silent for the whole burst.
        silent = np.isnan(burst).all(axis=0)
        np.testing.assert_array_equal(np.isnan(burst), np.tile(silent, (20, 1)))

    def test_dropout_burst_as_zeros_when_requested(self):
        feed = StreamingTrafficFeed(
            self._network(),
            num_steps=60,
            seed=4,
            events=[StreamScenarioEvent(kind="dropout_burst", start=10, duration=5)],
            nan_dropouts=False,
        )
        assert not np.isnan(feed.values).any()
        assert (feed.values[10:15] == 0.0).any()

    def test_incident_storm_depresses_flow(self):
        quiet = StreamingTrafficFeed(self._network(), num_steps=300, seed=6)
        stormy = StreamingTrafficFeed.scenario(
            self._network(), "incident_storm", num_steps=300, seed=6, rate=0.5
        )
        start, stop = 100, 150
        assert stormy.clean[start:stop].mean() < quiet.clean[start:stop].mean()

    def test_scenario_names(self):
        for name in ("regime_shift", "incident_storm", "dropout_burst"):
            feed = StreamingTrafficFeed.scenario(self._network(), name, num_steps=60, seed=0)
            assert len(feed) == 60
        with pytest.raises(ValueError):
            StreamingTrafficFeed.scenario(self._network(), "unknown")

    def test_scenario_accepts_any_event_field_override(self):
        # A *temporary* regime shift: duration is a valid override even
        # though the default regime_shift event runs to the end.
        feed = StreamingTrafficFeed.scenario(
            self._network(), "regime_shift", num_steps=90, seed=0,
            start=30, duration=20, noise_scale=3.0,
        )
        base = feed.config.noise_floor + feed.config.noise_fraction * feed.clean
        np.testing.assert_allclose(feed.noise_sigma[:30], base[:30])
        np.testing.assert_allclose(feed.noise_sigma[30:50], 3.0 * base[30:50])
        np.testing.assert_allclose(feed.noise_sigma[50:], base[50:])
        # Feed-constructor keywords still pass through alongside.
        feed = StreamingTrafficFeed.scenario(
            self._network(), "dropout_burst", num_steps=60, seed=0,
            node_fraction=0.5, nan_dropouts=False,
        )
        assert not np.isnan(feed.values).any()

    def test_event_validation(self):
        with pytest.raises(ValueError):
            StreamScenarioEvent(kind="nope", start=0)
        with pytest.raises(ValueError):
            StreamScenarioEvent(kind="regime_shift", start=-1)
        with pytest.raises(ValueError):
            StreamingTrafficFeed(self._network(), num_steps=0)
