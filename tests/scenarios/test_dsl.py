"""Scenario DSL: legacy bit-identity, file round trips, extended primitives."""

import numpy as np
import pytest

from repro.data import StreamingTrafficFeed
from repro.data.synthetic import SyntheticTrafficConfig
from repro.graph import grid_network
from repro.scenarios import (
    ScenarioSpec,
    legacy_scenario,
    load_scenario,
    parse_scenario_ini,
)

STEPS = 300
SEED = 11


@pytest.fixture(scope="module")
def network():
    return grid_network(2, 3)


class TestLegacyBitIdentity:
    """The acceptance criterion: DSL feeds == hand-coded scripted feeds."""

    @pytest.mark.parametrize("name", ["regime_shift", "incident_storm", "dropout_burst"])
    def test_canonical_scenario_is_bit_identical(self, network, name):
        built = legacy_scenario(name, num_steps=STEPS, seed=SEED).build(network)
        reference = StreamingTrafficFeed.scenario(
            network, name, num_steps=STEPS, seed=SEED
        )
        np.testing.assert_array_equal(built.values, reference.values)
        np.testing.assert_array_equal(built.clean, reference.clean)
        np.testing.assert_array_equal(built.noise_sigma, reference.noise_sigma)
        np.testing.assert_array_equal(built.dropout_mask, reference.dropout_mask)

    def test_overrides_match_the_classmethod(self, network):
        built = legacy_scenario(
            "regime_shift", num_steps=STEPS, seed=3, start=90, noise_scale=4.0
        ).build(network)
        reference = StreamingTrafficFeed.scenario(
            network, "regime_shift", num_steps=STEPS, seed=3, start=90, noise_scale=4.0
        )
        np.testing.assert_array_equal(built.values, reference.values)

    def test_multiple_legacy_primitives_compose_in_order(self, network):
        spec = ScenarioSpec(
            name="double",
            num_steps=STEPS,
            seed=5,
            primitives=(
                {"kind": "regime_shift", "start": 100, "noise_scale": 2.0},
                {"kind": "dropout_burst", "start": 200, "duration": 20,
                 "node_fraction": 0.5},
            ),
        )
        from repro.data import StreamScenarioEvent

        reference = StreamingTrafficFeed(
            network, STEPS, seed=5,
            events=[
                StreamScenarioEvent(kind="regime_shift", start=100, noise_scale=2.0),
                StreamScenarioEvent(
                    kind="dropout_burst", start=200, duration=20, node_fraction=0.5
                ),
            ],
        )
        np.testing.assert_array_equal(spec.build(network).values, reference.values)

    def test_extended_primitives_do_not_perturb_the_legacy_stream(self, network):
        """Appending an extended primitive leaves untouched entries identical."""
        base = legacy_scenario("regime_shift", num_steps=STEPS, seed=SEED)
        mixed = ScenarioSpec(
            name="mixed",
            num_steps=STEPS,
            seed=SEED,
            primitives=base.primitives
            + ({"kind": "stuck_sensor", "start": 50, "duration": 30, "nodes": [0]},),
        )
        plain, decorated = base.build(network), mixed.build(network)
        untouched = np.ones_like(plain.values, dtype=bool)
        untouched[50:80, 0] = False
        np.testing.assert_array_equal(
            decorated.values[untouched], plain.values[untouched]
        )


class TestSerialization:
    def test_json_file_round_trip(self, network, tmp_path):
        spec = ScenarioSpec(
            name="mix",
            num_steps=STEPS,
            seed=7,
            primitives=(
                {"kind": "regime_shift", "start": 150, "noise_scale": 2.5},
                {"kind": "holiday_cycle", "every_days": 3, "attenuation": 0.5},
                {"kind": "cold_start", "start": 40, "nodes": [1, 4]},
            ),
            config={"peak_amplitude": 0.0, "weekend_attenuation": 1.0},
        )
        path = spec.save(tmp_path / "mix.json")
        loaded = load_scenario(path)
        assert loaded == spec
        np.testing.assert_array_equal(
            loaded.build(network).values, spec.build(network).values
        )

    def test_ini_form_builds_the_same_feed(self, network, tmp_path):
        text = "\n".join(
            [
                "[scenario]",
                "name = from-ini",
                f"num_steps = {STEPS}",
                "seed = 7",
                "[config]",
                "peak_amplitude = 0.0",
                "weekend_attenuation = 1.0",
                "[primitive.1]",
                "kind = regime_shift",
                "start = 150",
                "noise_scale = 2.5",
                "[primitive.2]",
                "kind = holiday_cycle",
                "every_days = 3",
                "attenuation = 0.5",
                "[primitive.3]",
                "kind = cold_start",
                "start = 40",
                "nodes = [1, 4]",
            ]
        )
        path = tmp_path / "mix.ini"
        path.write_text(text)
        from_ini = load_scenario(path)
        as_json = ScenarioSpec(
            name="from-ini",
            num_steps=STEPS,
            seed=7,
            primitives=(
                {"kind": "regime_shift", "start": 150, "noise_scale": 2.5},
                {"kind": "holiday_cycle", "every_days": 3, "attenuation": 0.5},
                {"kind": "cold_start", "start": 40, "nodes": [1, 4]},
            ),
            config={"peak_amplitude": 0.0, "weekend_attenuation": 1.0},
        )
        assert from_ini == as_json
        np.testing.assert_array_equal(
            from_ini.build(network).values, as_json.build(network).values
        )

    def test_ini_null_duration_and_ordering(self, network):
        spec = parse_scenario_ini(
            "[scenario]\nname = n\nnum_steps = 100\n"
            "[primitive.2]\nkind = stuck_sensor\nstart = 10\nduration = null\n"
            "nodes = [0]\n"
            "[primitive.10]\nkind = adversarial_spike\nrate = 0.2\n"
        )
        kinds = [p["kind"] for p in spec.primitives]
        assert kinds == ["stuck_sensor", "adversarial_spike"]
        assert spec.primitives[0]["duration"] is None

    def test_unknown_kind_and_param_rejected(self):
        with pytest.raises(ValueError, match="unknown primitive kind"):
            ScenarioSpec(name="bad", primitives=({"kind": "earthquake"},))
        with pytest.raises(ValueError, match="does not accept"):
            ScenarioSpec(
                name="bad", primitives=({"kind": "regime_shift", "rate": 1.0},)
            )
        with pytest.raises(ValueError, match="unsupported scenario file type"):
            load_scenario("scenario.yaml")


class TestExtendedPrimitives:
    FLAT = {"peak_amplitude": 0.0, "weekend_attenuation": 1.0,
            "dropout_probability": 0.0, "noise_fraction": 0.01}

    def _build(self, network, *primitives, steps=STEPS, seed=2):
        return ScenarioSpec(
            name="t", num_steps=steps, seed=seed,
            primitives=tuple(primitives), config=self.FLAT,
        ).build(network)

    def test_holiday_cycle_attenuates_whole_days(self, network):
        feed = self._build(
            network,
            {"kind": "holiday_cycle", "every_days": 2, "attenuation": 0.5},
            steps=4 * 288,
        )
        plain = self._build(network, steps=4 * 288)
        spd = feed.config.steps_per_day
        # days 1 and 3 (0-indexed) are holidays at half flow
        np.testing.assert_allclose(feed.clean[spd : 2 * spd], 0.5 * plain.clean[spd : 2 * spd])
        np.testing.assert_array_equal(feed.clean[:spd], plain.clean[:spd])

    def test_holiday_seasonal_component_modulates_flow(self, network):
        feed = self._build(
            network,
            {"kind": "holiday_cycle", "every_days": 0, "season_period_days": 2,
             "season_amplitude": 0.25},
            steps=2 * 288,
        )
        plain = self._build(network, steps=2 * 288)
        ratio = feed.clean[feed.clean > 0] / plain.clean[plain.clean > 0]
        assert ratio.max() > 1.2 and ratio.min() < 0.8

    def test_clock_skew_shifts_observations_not_truth(self, network):
        feed = self._build(
            network,
            {"kind": "clock_skew", "start": 50, "duration": 100,
             "nodes": [2], "max_skew_steps": 3},
        )
        plain = self._build(network)
        np.testing.assert_array_equal(feed.clean, plain.clean)
        skews = [
            k for k in range(1, 4)
            if np.array_equal(feed.values[50 + k : 150, 2], plain.values[50 : 150 - k, 2])
        ]
        assert len(skews) == 1  # exactly one consistent per-node lag
        np.testing.assert_array_equal(feed.values[150:, 2], plain.values[150:, 2])

    def test_stuck_sensor_freezes_last_reading(self, network):
        feed = self._build(
            network, {"kind": "stuck_sensor", "start": 100, "duration": 50, "nodes": [1]}
        )
        assert (feed.values[100:150, 1] == feed.values[99, 1]).all()
        plain = self._build(network)
        np.testing.assert_array_equal(feed.values[150:, 1], plain.values[150:, 1])

    def test_adversarial_spikes_are_sparse_and_large(self, network):
        feed = self._build(
            network,
            {"kind": "adversarial_spike", "start": 0, "rate": 0.2, "magnitude": 12.0},
        )
        plain = self._build(network)
        changed = feed.values != plain.values
        assert 0 < changed.sum() < 0.2 * feed.values.size
        assert (feed.values[changed] > plain.values[changed]).all()

    def test_cold_start_darkens_nodes_until_start(self, network):
        feed = self._build(network, {"kind": "cold_start", "start": 80, "nodes": [0, 5]})
        assert np.isnan(feed.values[:80, [0, 5]]).all()
        assert np.isfinite(feed.values[80:, 0]).any()
        zero_feed = ScenarioSpec(
            name="z", num_steps=STEPS, seed=2, nan_dropouts=False,
            primitives=({"kind": "cold_start", "start": 80, "nodes": [0]},),
            config=self.FLAT,
        ).build(network)
        assert (zero_feed.values[:80, 0] == 0.0).all()

    def test_cascade_staggers_incidents_across_node_groups(self, network):
        feed = self._build(
            network,
            {"kind": "cascade", "start": 60, "stagger": 100, "duration": 50,
             "groups": 2, "rate": 0.6, "severity": 0.8},
        )
        plain = self._build(network)
        half = feed.num_nodes // 2
        dip = plain.clean - feed.clean
        # group 0's burst lives in [60, 110+incident tail), group 1's in
        # [160, 210+tail); neither group dips inside the other's window.
        assert dip[60:110, :half].max() > 0
        assert dip[160:210, half:].max() > 0
        assert dip[:60].max() == 0
        assert dip[60:110, half:].max() == 0

    def test_extended_primitives_are_reproducible(self, network):
        spec = ScenarioSpec(
            name="r", num_steps=STEPS, seed=9,
            primitives=(
                {"kind": "clock_skew", "start": 10, "node_fraction": 0.5},
                {"kind": "adversarial_spike", "rate": 0.3},
            ),
        )
        np.testing.assert_array_equal(
            spec.build(network).values, spec.build(network).values
        )
