"""Chaos harness: each injected fault asserts the invariant it exposes.

The headline test is the kill-and-restore equivalence acceptance criterion:
a fleet checkpointed *mid-drift* (CUSUM statistic accumulating, no event
fired yet) and restored onto a fresh server must fire the same drift events
at the same steps — and end in bit-identical core state — as a run that was
never interrupted.
"""

import numpy as np
import pytest

from repro.analysis import lockwatch
from repro.fleet import FleetRefitPolicy, StreamFleet
from repro.graph import grid_network
from repro.scenarios import (
    ChaosSchedule,
    FlakyRefit,
    PredictFault,
    ScenarioSpec,
    kill_and_restore,
    run_fleet_scenario,
    thrash_cache,
)
from repro.serving import InferenceServer
from repro.streaming import DriftEvent, ErrorCusumDetector, PersistenceForecaster

HISTORY, HORIZON = 6, 2
STEPS, SHIFT, KILL = 160, 100, 102
#: Flat daily profile so the scripted regime shift is the only drift source.
FLAT = {"peak_amplitude": 0.0, "weekend_attenuation": 1.0}


def _detectors():
    # Same recipe as the fleet concurrency suite: fires within ~3 ticks of a
    # 3x noise shift, stays quiet on the flat profile.
    return [ErrorCusumDetector(slack=1.0, threshold=20.0, warmup=80)]


def _server(**kwargs):
    model = PersistenceForecaster(horizon=HORIZON, sigma=20.0)
    return InferenceServer(
        model.predict, model_version="base", max_batch_size=64, **kwargs
    ).start()


def _shift_feeds(network, num_streams=4):
    return {
        f"c{i}": ScenarioSpec(
            name="shift",
            num_steps=STEPS,
            seed=i,
            config=FLAT,
            primitives=(
                {"kind": "regime_shift", "start": SHIFT, "noise_scale": 3.0},
            ),
        ).build(network)
        for i in range(num_streams)
    }


def _fleet(server, num_streams=4, **kwargs):
    fleet = StreamFleet(
        server,
        HISTORY,
        HORIZON,
        aci={"window": 400, "gamma": 0.01},
        detector_factory=_detectors,
        **kwargs,
    )
    for i in range(num_streams):
        fleet.add_stream(f"c{i}", region="r")
    return fleet


def _first_fires(fleet, kind="error_cusum"):
    return {
        name: next(
            (e.step for e in stream.core.event_log if e.kind == kind), None
        )
        for name, stream in fleet.streams.items()
    }


class TestKillAndRestoreEquivalence:
    """Acceptance criterion: restore mid-drift, fire at the same step."""

    def test_restored_fleet_is_bit_identical_to_uninterrupted_run(self, tmp_path):
        network = grid_network(2, 2)

        # Every lock the servers/fleets construct below is order-tracked;
        # recording (not raising) keeps the chaos run undisturbed and the
        # acyclicity assert at the end fails the test on any cycle.
        with lockwatch.watching(raise_on_cycle=False) as watch:
            uninterrupted_server = _server()
            uninterrupted = _fleet(uninterrupted_server)
            run_fleet_scenario(uninterrupted, _shift_feeds(network))
            uninterrupted_server.stop()

            at_restore = {}

            def killer(fleet, tick):
                restored = kill_and_restore(
                    fleet, tmp_path / "ckpt", _server(), detector_factory=_detectors
                )
                at_restore["statistics"] = [
                    stream.core.detectors[0].statistic
                    for stream in restored.streams.values()
                ]
                at_restore["fired"] = [
                    event
                    for stream in restored.streams.values()
                    for event in stream.core.event_log
                    if event.kind == "error_cusum"
                ]
                return restored

            killed_server = _server()
            killed = _fleet(killed_server)
            survivor, _ = run_fleet_scenario(
                killed,
                _shift_feeds(network),
                chaos=ChaosSchedule().at(KILL, killer),
            )
            survivor.server.stop()
        watch.assert_acyclic()

        # The kill landed mid-drift: the shift started at SHIFT, statistics
        # were accumulating at the restore, but no event had fired yet.
        assert survivor is not killed
        assert max(at_restore["statistics"]) > 0.0
        assert at_restore["fired"] == []

        # Every stream fires after the kill, at the same step in both runs.
        fires = _first_fires(uninterrupted)
        assert all(step is not None and step > KILL for step in fires.values())
        assert _first_fires(survivor) == fires

        # Full per-stream state equivalence: event logs, meta, every array.
        for name, reference in uninterrupted.streams.items():
            restored = survivor.streams[name]
            assert (
                restored.core.event_log.to_records()
                == reference.core.event_log.to_records()
            )
            expected = reference.core.get_state()
            actual = restored.core.get_state()
            assert actual["meta"] == expected["meta"]
            assert set(actual["arrays"]) == set(expected["arrays"])
            for key, array in expected["arrays"].items():
                np.testing.assert_array_equal(
                    actual["arrays"][key], array, err_msg=f"{name}:{key}"
                )


class _FireAt:
    """Deterministic detector: one coverage-breach event at a fixed step."""

    signal = "coverage"

    def __init__(self, at):
        self.at = int(at)

    def update(self, step, value):
        if step == self.at:
            return DriftEvent(
                kind="coverage_breach", step=step, value=0.0, threshold=0.0
            )
        return None


def _plain_feeds(network, steps, num_streams=4):
    return {
        f"c{i}": ScenarioSpec(
            name="plain", num_steps=steps, seed=i, config=FLAT
        ).build(network)
        for i in range(num_streams)
    }


class TestFlakyRefit:
    def test_dead_refit_surfaces_as_event_and_fleet_keeps_serving(self):
        network = grid_network(2, 2)
        steps = 30
        flaky = FlakyRefit(
            lambda region, recents: PersistenceForecaster(
                horizon=HORIZON, sigma=10.0
            ),
            fail_on=1,
        )
        server = _server()
        try:
            fleet = StreamFleet(
                server,
                HISTORY,
                HORIZON,
                detector_factory=lambda: [_FireAt(at=15)],
                refit_fn=flaky,
                refit_policy=FleetRefitPolicy(
                    quorum=2, window=20, cooldown=100, background=False
                ),
            )
            for i in range(4):
                fleet.add_stream(f"c{i}", region="r")
            _, results = run_fleet_scenario(fleet, _plain_feeds(network, steps))
        finally:
            server.stop()

        assert flaky.calls == 1
        kinds = [event.kind for event in fleet.event_log]
        assert kinds.count("region_refit_failed") == 1
        assert "region_candidate_staged" not in kinds
        # The incumbent kept serving in lock-step through the failure.
        assert len(results) == steps
        assert all(s.core.step == steps for s in fleet.streams.values())
        assert results[-1]["c0"].prediction is not None


class TestPredictFault:
    def test_raising_model_pass_fails_the_tick_not_the_fleet(self):
        network = grid_network(2, 2)
        steps = 40
        fault = PredictFault(error=RuntimeError("chaos: model pass died"))
        server = _server()
        try:
            server.fault_injector = fault
            fleet = _fleet(server)
            _, results = run_fleet_scenario(fleet, _plain_feeds(network, steps))
        finally:
            server.stop()

        assert fault.fired == 1
        failures = [
            event for event in fleet.event_log
            if event.kind == "stream_predict_failed"
        ]
        assert failures
        # Zero dropped futures: every tick resolved, every stream in
        # lock-step, and serving recovered after the failed pass.
        assert len(results) == steps
        assert all(s.core.step == steps for s in fleet.streams.values())
        failed_at = max(event.step for event in failures)
        recovered = [
            r for r in results
            if r.tick > failed_at and r["c0"].prediction is not None
        ]
        assert recovered

    def test_fault_scoped_to_one_deployment_leaves_others_alone(self):
        fault = PredictFault(
            error=RuntimeError("boom"), deployment="elsewhere", count=None
        )
        server = _server()
        try:
            server.fault_injector = fault
            future = server.submit(np.ones((HISTORY, 4)))
            result = future.result(timeout=10.0)
        finally:
            server.stop()
        assert fault.fired == 0
        np.testing.assert_allclose(result.mean[0], np.ones((HORIZON, 4)))

    def test_exactly_one_of_error_or_hang(self):
        with pytest.raises(ValueError, match="exactly one"):
            PredictFault()
        with pytest.raises(ValueError, match="exactly one"):
            PredictFault(error=RuntimeError("x"), hang=True)


class TestDegradedCandidateRollback:
    def test_degraded_candidate_is_rejected_and_undeployed(self):
        network = grid_network(2, 2)
        steps = 120

        class Degraded:
            """Persistence with a large constant bias: trials must reject it."""

            def __init__(self):
                self._model = PersistenceForecaster(horizon=HORIZON, sigma=20.0)

            def predict(self, windows):
                result = self._model.predict(windows)
                result.mean = result.mean + 200.0
                return result

        server = _server()
        try:
            fleet = StreamFleet(
                server,
                HISTORY,
                HORIZON,
                detector_factory=lambda: [_FireAt(at=15)],
                refit_fn=lambda region, recents: Degraded(),
                refit_policy=FleetRefitPolicy(
                    quorum=2,
                    window=20,
                    cooldown=1000,
                    background=False,
                    eval_steps=40,
                ),
            )
            for i in range(4):
                fleet.add_stream(f"c{i}", region="r")
            _, results = run_fleet_scenario(fleet, _plain_feeds(network, steps))
            kinds = [event.kind for event in fleet.event_log]
            assert kinds.count("region_candidate_staged") == 1
            assert kinds.count("region_candidate_rejected") == 1
            assert "region_candidate_promoted" not in kinds
            # Rolled back: the candidate deployment is gone and the region
            # still routes to the incumbent.
            assert not any("cand" in name for name in server.pool.names())
            assert fleet.coordinator.trials == {}
            assert server.stats["route_fallbacks"] == 0
        finally:
            server.stop()
        assert len(results) == steps
        assert all(s.core.step == steps for s in fleet.streams.values())


class TestCacheThrash:
    def test_thrash_forces_eviction_without_corrupting_results(self):
        server = _server(cache_size=8)
        try:
            # Warm the cache, thrash it with 64 unique windows, then check
            # both the churn and that every thrashed result is correct.
            warm = np.full((HISTORY, 4), 7.0)
            server.submit(warm).result(timeout=10.0)
            results = thrash_cache(
                server, num_windows=64, history=HISTORY, num_nodes=4, seed=3
            )
            assert len(results) == 64
            rng = np.random.default_rng(3)
            windows = rng.uniform(0.0, 500.0, size=(64, HISTORY, 4))
            for window, result in zip(windows, results):
                np.testing.assert_allclose(
                    result.mean[0], np.repeat(window[-1:], HORIZON, axis=0)
                )
            stats = server.stats
            assert stats["cache_evictions"] > 0
            assert stats["cache_size"] <= 8
            # The warmed entry was evicted but recomputes correctly.
            again = server.submit(warm).result(timeout=10.0)
            np.testing.assert_allclose(again.mean[0], np.full((HORIZON, 4), 7.0))
        finally:
            server.stop()


class TestColdStartCorridor:
    def test_stream_joining_a_warm_fleet_warms_up_in_place(self):
        network = grid_network(2, 2)
        steps, join = 80, 50
        feeds = _plain_feeds(network, steps, num_streams=3)
        feeds["late"] = ScenarioSpec(
            name="late", num_steps=steps - join, seed=9, config=FLAT
        ).build(network)

        server = _server()
        try:
            fleet = _fleet(server, num_streams=3)
            final, results = run_fleet_scenario(
                fleet,
                feeds,
                join_at={"late": join},
                stream_args={"late": {"region": "r"}},
            )
        finally:
            server.stop()

        assert len(results) == steps
        # Not registered (let alone observed) before its join tick.
        assert all("late" not in result.results for result in results[:join])
        assert "late" in results[join].results
        late = final.streams["late"]
        assert late.core.step == steps - join
        # The veterans stayed warm throughout and the newcomer warmed up.
        assert results[-1]["c0"].prediction is not None
        assert results[-1]["late"].prediction is not None
