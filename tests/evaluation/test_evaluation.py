"""Tests for the experiment harness (configs, runners, formatters)."""

import numpy as np
import pytest

from repro.evaluation import (
    BENCH_SCALE,
    PAPER_SCALE,
    UNIT_SCALE,
    dataset_statistics,
    format_figure_series,
    format_method_table,
    format_rows,
    make_awa_config,
    make_training_config,
    run_point_prediction,
    scale_from_env,
)
from repro.evaluation.config import SCALES, ExperimentScale
from repro.evaluation.datasets import evaluation_windows, load_benchmark_splits
from repro.evaluation.point_prediction import POINT_MODEL_NAMES, build_point_model
from repro.evaluation.uncertainty_quantification import (
    best_method_per_dataset,
    evaluate_uq_method,
    run_uncertainty_quantification,
)
from repro.graph import grid_network


TINY = ExperimentScale(
    name="test",
    dataset_size="tiny",
    datasets=("PEMS08",),
    history=6,
    horizon=3,
    hidden_dim=8,
    embed_dim=3,
    epochs=2,
    awa_epochs=2,
    batch_size=64,
    mc_samples=2,
    max_eval_windows=64,
)


class TestConfig:
    def test_scales_registered(self):
        assert {"unit", "bench", "paper"} == set(SCALES)
        assert PAPER_SCALE.epochs == 100
        assert PAPER_SCALE.dataset_size == "full"
        assert BENCH_SCALE.datasets == ("PEMS03", "PEMS04", "PEMS07", "PEMS08")

    def test_make_training_config_dropout_rule(self):
        assert make_training_config(UNIT_SCALE, "PEMS08").encoder_dropout == pytest.approx(0.05)
        assert make_training_config(UNIT_SCALE, "PEMS03").encoder_dropout == pytest.approx(0.1)

    def test_make_awa_config(self):
        awa = make_awa_config(BENCH_SCALE)
        assert awa.epochs == BENCH_SCALE.awa_epochs
        assert awa.lr_max == pytest.approx(3e-3)

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "unit")
        assert scale_from_env().name == "unit"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(KeyError):
            scale_from_env()
        monkeypatch.delenv("REPRO_SCALE")
        assert scale_from_env(default="bench").name == "bench"


class TestDatasetsHelpers:
    def test_dataset_statistics_match_paper(self):
        rows = dataset_statistics()
        by_name = {row["Dataset"]: row for row in rows}
        assert by_name["PEMS07"]["# of Nodes"] == 883
        assert by_name["PEMS08"]["# of Steps"] == 17_856

    def test_load_benchmark_splits(self):
        train, val, test = load_benchmark_splits("PEMS08", TINY)
        assert train.num_nodes == val.num_nodes == test.num_nodes
        assert train.num_steps > val.num_steps

    def test_evaluation_windows_capped(self):
        _, _, test = load_benchmark_splits("PEMS08", TINY)
        inputs, targets = evaluation_windows(test, TINY)
        assert inputs.shape[0] <= TINY.max_eval_windows
        assert inputs.shape[1:] == (TINY.history, test.num_nodes)
        assert targets.shape[1:] == (TINY.horizon, test.num_nodes)


class TestPointPredictionRunner:
    def test_build_point_model_all_names(self):
        network = grid_network(3, 3)
        config = make_training_config(TINY, "PEMS08")
        for name in POINT_MODEL_NAMES:
            model = build_point_model(name, 9, network.adjacency_matrix(), config)
            assert model.horizon == TINY.horizon

    def test_build_point_model_unknown(self):
        with pytest.raises(KeyError):
            build_point_model("NotAModel", 9, np.eye(9), make_training_config(TINY))

    def test_run_point_prediction_single_model(self):
        rows = run_point_prediction(TINY, datasets=("PEMS08",), model_names=("AGCRN",))
        assert len(rows) == 1
        row = rows[0]
        assert row["Model"] == "AGCRN" and row["Dataset"] == "PEMS08"
        assert np.isfinite(row["MAE"]) and np.isfinite(row["RMSE"])


class TestUncertaintyRunner:
    def test_run_uq_subset(self):
        rows = run_uncertainty_quantification(TINY, datasets=("PEMS08",), method_names=("Point", "MVE"))
        assert len(rows) == 2
        mve = next(row for row in rows if row["Method"] == "MVE")
        assert np.isfinite(mve["MNLL"]) and np.isfinite(mve["PICP"])
        point = next(row for row in rows if row["Method"] == "Point")
        assert np.isnan(point["PICP"])

    def test_best_method_per_dataset(self):
        rows = [
            {"Dataset": "D", "Method": "A", "MAE": 2.0},
            {"Dataset": "D", "Method": "B", "MAE": 1.0},
            {"Dataset": "D", "Method": "C", "MAE": float("nan")},
        ]
        assert best_method_per_dataset(rows, metric="MAE") == {"D": "B"}
        assert best_method_per_dataset(rows, metric="MAE", minimize=False) == {"D": "A"}


class TestFormatting:
    def test_format_rows(self):
        text = format_rows([{"a": 1, "b": 2.345}], title="T", precision=1)
        assert text.startswith("T")
        assert "2.3" in text

    def test_format_rows_empty(self):
        assert format_rows([], title="T") == "T"

    def test_format_method_table_pivots(self):
        rows = [
            {"Dataset": "D1", "Method": "A", "MAE": 1.0, "PICP": 90.0},
            {"Dataset": "D1", "Method": "B", "MAE": 2.0, "PICP": 95.0},
            {"Dataset": "D2", "Method": "A", "MAE": 3.0, "PICP": 96.0},
            {"Dataset": "D2", "Method": "B", "MAE": 4.0, "PICP": 97.0},
        ]
        text = format_method_table(rows, metrics=("MAE", "PICP"), title="Table")
        assert "D1" in text and "D2" in text
        assert text.count("MAE") == 2  # one line per dataset block

    def test_format_figure_series(self):
        records = [{"Dataset": "D", "x": [1, 2], "y": [0.1, 0.2]}]
        text = format_figure_series(records, x_key="x", series_keys=("y",))
        assert "0.10" in text and "D" in text
