"""Adaptive conformal inference state: updates, intervals, persistence."""

import numpy as np
import pytest

from repro.core.inference import PredictionResult
from repro.metrics import Z_95, norm_ppf
from repro.streaming import ACIConfig, AdaptiveConformalCalibrator


def _result(mean, std):
    mean = np.asarray(mean, dtype=np.float64)
    std = np.broadcast_to(np.asarray(std, dtype=np.float64), mean.shape)
    return PredictionResult(
        mean=mean,
        aleatoric_var=(std ** 2).copy(),
        epistemic_var=np.zeros_like(mean),
    )


class TestACIConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ACIConfig(significance=0.0)
        with pytest.raises(ValueError):
            ACIConfig(gamma=-0.1)
        with pytest.raises(ValueError):
            ACIConfig(mode="bogus")
        with pytest.raises(ValueError):
            ACIConfig(window=0)

    def test_constructor_rejects_config_plus_kwargs(self):
        with pytest.raises(ValueError):
            AdaptiveConformalCalibrator(2, config=ACIConfig(), gamma=0.5)
        with pytest.raises(ValueError):
            AdaptiveConformalCalibrator(0)


class TestQuantiles:
    def test_gaussian_fallback_before_min_scores(self):
        calibrator = AdaptiveConformalCalibrator(3, significance=0.05, min_scores=10)
        expected = norm_ppf(1.0 - 0.05 / 2.0)
        np.testing.assert_allclose(calibrator.quantiles(), expected, atol=1e-12)

    def test_empirical_quantile_once_filled(self):
        calibrator = AdaptiveConformalCalibrator(
            1, significance=0.05, min_scores=10, window=100, mode="rolling"
        )
        scores = np.linspace(0.0, 1.0, 100)
        calibrator.update(0, scores)
        n = 100
        level = min(np.ceil((n + 1) * 0.95) / n, 1.0)
        assert calibrator.quantiles()[0] == pytest.approx(
            np.quantile(scores, level), abs=1e-12
        )

    def test_per_horizon_quantiles_are_independent(self):
        calibrator = AdaptiveConformalCalibrator(2, min_scores=5, mode="rolling")
        calibrator.update(0, np.full(50, 1.0))
        calibrator.update(1, np.full(50, 3.0))
        q = calibrator.quantiles()
        assert q[0] == pytest.approx(1.0)
        assert q[1] == pytest.approx(3.0)

    def test_rolling_window_evicts_old_scores(self):
        calibrator = AdaptiveConformalCalibrator(
            1, window=50, min_scores=5, mode="rolling"
        )
        calibrator.update(0, np.full(50, 10.0))
        calibrator.update(0, np.full(50, 1.0))  # fully displaces the old regime
        assert calibrator.quantiles()[0] == pytest.approx(1.0)


class TestIntervalEmission:
    def test_intervals_scale_with_local_sigma(self):
        calibrator = AdaptiveConformalCalibrator(2, min_scores=5, mode="rolling")
        calibrator.update(0, np.full(20, 2.0))
        calibrator.update(1, np.full(20, 2.0))
        result = _result(np.zeros((1, 2, 3)), np.array([1.0, 2.0, 3.0]))
        lower, upper = calibrator.intervals(result)
        q = calibrator.quantiles()[0]
        np.testing.assert_allclose(upper[0, 0], q * np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(lower, -upper)

    def test_calibrate_reproduces_bounds_via_gaussian_interface(self):
        calibrator = AdaptiveConformalCalibrator(2, min_scores=5, mode="rolling")
        calibrator.update(0, np.abs(np.random.default_rng(0).normal(size=40)))
        calibrator.update(1, np.abs(np.random.default_rng(1).normal(size=40)))
        result = _result(np.random.default_rng(2).normal(size=(4, 2, 3)), 1.7)
        lower, upper = calibrator.intervals(result)
        calibrated = calibrator.calibrate(result)
        lo2, up2 = calibrated.interval(significance=0.05)
        np.testing.assert_allclose(lo2, lower, atol=1e-9)
        np.testing.assert_allclose(up2, upper, atol=1e-9)
        # Pseudo std encodes exactly the conformal half-width.
        np.testing.assert_allclose(
            calibrated.std * Z_95, (upper - lower) / 2.0, atol=1e-9
        )

    def test_zero_sigma_falls_back_to_unit_scale(self):
        calibrator = AdaptiveConformalCalibrator(1, min_scores=5, mode="rolling")
        calibrator.update(0, np.full(10, 2.0))
        result = _result(np.zeros((1, 1, 2)), 0.0)
        lower, upper = calibrator.intervals(result)
        np.testing.assert_allclose(upper, 2.0)

    def test_horizon_mismatch_raises(self):
        calibrator = AdaptiveConformalCalibrator(3)
        with pytest.raises(ValueError):
            calibrator.intervals(_result(np.zeros((1, 2, 2)), 1.0))


class TestAlphaUpdate:
    def test_gibbs_candes_rule(self):
        calibrator = AdaptiveConformalCalibrator(1, significance=0.05, gamma=0.1, mode="aci")
        calibrator.update(0, np.empty(0), miscoverage=1.0)
        # alpha <- 0.05 + 0.1 * (0.05 - 1.0)
        assert calibrator.alpha_t[0] == pytest.approx(max(0.05 + 0.1 * -0.95, 1e-3))
        before = calibrator.alpha_t[0]
        calibrator.update(0, np.empty(0), miscoverage=0.0)
        assert calibrator.alpha_t[0] == pytest.approx(before + 0.1 * 0.05)

    def test_alpha_is_clipped(self):
        calibrator = AdaptiveConformalCalibrator(
            1, significance=0.05, gamma=10.0, mode="aci", alpha_clip=1e-3
        )
        for _ in range(50):
            calibrator.update(0, np.empty(0), miscoverage=1.0)
        assert calibrator.alpha_t[0] >= 1e-3
        for _ in range(50):
            calibrator.update(0, np.empty(0), miscoverage=0.0)
        assert calibrator.alpha_t[0] <= 1.0 - 1e-3

    def test_rolling_mode_keeps_alpha_fixed(self):
        calibrator = AdaptiveConformalCalibrator(1, significance=0.05, mode="rolling")
        calibrator.update(0, np.full(5, 1.0), miscoverage=1.0)
        assert calibrator.alpha_t[0] == pytest.approx(0.05)

    def test_static_mode_freezes_once_full(self):
        calibrator = AdaptiveConformalCalibrator(
            1, window=20, min_scores=5, mode="static"
        )
        calibrator.update(0, np.full(20, 1.0))
        calibrator.update(0, np.full(20, 100.0))  # ignored: calibration set frozen
        assert calibrator.quantiles()[0] == pytest.approx(1.0)

    def test_reset_scores_unfreezes(self):
        calibrator = AdaptiveConformalCalibrator(
            1, window=20, min_scores=5, mode="static"
        )
        calibrator.update(0, np.full(20, 1.0))
        calibrator.reset_scores()
        calibrator.update(0, np.full(20, 100.0))
        assert calibrator.quantiles()[0] == pytest.approx(100.0)

    def test_bad_horizon_index(self):
        with pytest.raises(IndexError):
            AdaptiveConformalCalibrator(2).update(2, np.empty(0))


class TestWarmStart:
    def test_update_batch_seeds_the_buffers(self):
        calibrator = AdaptiveConformalCalibrator(2, min_scores=5, mode="rolling")
        rng = np.random.default_rng(5)
        result = _result(rng.normal(size=(30, 2, 4)), 2.0)
        targets = result.mean + rng.normal(size=result.mean.shape) * 2.0
        calibrator.update_batch(result, targets)
        q = calibrator.quantiles()
        assert np.all(q > 0.5) and np.all(q < 4.0)

    def test_update_batch_shape_mismatch(self):
        calibrator = AdaptiveConformalCalibrator(2)
        with pytest.raises(ValueError):
            calibrator.update_batch(_result(np.zeros((3, 2, 4)), 1.0), np.zeros((3, 2, 5)))


class TestStatePersistence:
    def _exercised(self):
        calibrator = AdaptiveConformalCalibrator(
            3, significance=0.1, gamma=0.02, window=64, min_scores=8, mode="aci"
        )
        rng = np.random.default_rng(11)
        for _ in range(40):
            for h in range(3):
                calibrator.update(
                    h, np.abs(rng.normal(size=5)), miscoverage=float(rng.random() < 0.1)
                )
        return calibrator

    def test_state_roundtrip_bit_identical(self):
        calibrator = self._exercised()
        state = calibrator.get_state()
        restored = AdaptiveConformalCalibrator(3).set_state(state)
        for key, array in state["arrays"].items():
            np.testing.assert_array_equal(
                getattr(restored, "_" + key.split(".")[1], None)
                if key != "aci.alpha_t"
                else restored.alpha_t,
                array,
                err_msg=key,
            )
        np.testing.assert_array_equal(restored.quantiles(), calibrator.quantiles())

    def test_directory_checkpoint_roundtrip(self, tmp_path):
        calibrator = self._exercised()
        calibrator.save(tmp_path / "aci")
        restored = AdaptiveConformalCalibrator.load(tmp_path / "aci")
        original = calibrator.get_state()["arrays"]
        reloaded = restored.get_state()["arrays"]
        assert set(original) == set(reloaded)
        for key in original:
            np.testing.assert_array_equal(original[key], reloaded[key], err_msg=key)
        # Identical future behaviour, not just identical arrays.
        result = _result(np.random.default_rng(12).normal(size=(2, 3, 4)), 1.3)
        np.testing.assert_array_equal(
            calibrator.calibrate(result).std, restored.calibrate(result).std
        )
        assert restored.config == calibrator.config

    def test_horizon_mismatch_rejected(self):
        state = self._exercised().get_state()
        with pytest.raises(ValueError):
            AdaptiveConformalCalibrator(2).set_state(state)

    def test_wrong_kind_rejected(self):
        state = self._exercised().get_state()
        state["meta"]["kind"] = "other"
        with pytest.raises(ValueError):
            AdaptiveConformalCalibrator(3).set_state(state)

    def test_unsupported_format_version(self, tmp_path):
        calibrator = self._exercised()
        path = calibrator.save(tmp_path / "aci")
        import json

        meta_file = path / "checkpoint.json"
        meta = json.loads(meta_file.read_text())
        meta["format_version"] = 99
        meta_file.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="format"):
            AdaptiveConformalCalibrator.load(path)


class TestSortedRingQuantiles:
    """The O(log n) sorted-ring read must be bit-identical to np.quantile."""

    def _reference_quantiles(self, calibrator):
        """The legacy implementation: re-sort the raw ring every call."""
        from repro.metrics.uncertainty import conformal_quantile_level

        cfg = calibrator.config
        reference = np.empty(calibrator.horizon)
        for h in range(calibrator.horizon):
            n = int(calibrator._count[h])
            if n < cfg.min_scores:
                level = 1.0 - calibrator.alpha_t[h]
                reference[h] = norm_ppf(0.5 + level / 2.0)
                continue
            corrected = conformal_quantile_level(n, calibrator.alpha_t[h])
            reference[h] = np.quantile(calibrator._scores[h, :n], corrected)
        return reference

    @pytest.mark.parametrize("mode", ["static", "rolling", "aci"])
    def test_matches_np_quantile_through_an_online_stream(self, mode, rng):
        calibrator = AdaptiveConformalCalibrator(
            3, config=ACIConfig(mode=mode, window=97, min_scores=5)
        )
        for _ in range(300):
            for h in range(3):
                scores = rng.gamma(2.0, 1.0, size=int(rng.integers(0, 9)))
                calibrator.update(h, scores, miscoverage=float(rng.uniform(0.0, 0.2)))
            np.testing.assert_array_equal(
                calibrator.quantiles(), self._reference_quantiles(calibrator)
            )

    def test_sorted_mirror_survives_reset_and_state_restore(self, rng):
        calibrator = AdaptiveConformalCalibrator(
            2, config=ACIConfig(window=50, min_scores=5)
        )
        for _ in range(120):
            for h in range(2):
                calibrator.update(h, rng.gamma(2.0, 1.0, size=4), miscoverage=0.05)
        restored = AdaptiveConformalCalibrator(
            2, config=ACIConfig(window=50, min_scores=5)
        ).set_state(calibrator.get_state())
        np.testing.assert_array_equal(restored.quantiles(), calibrator.quantiles())
        np.testing.assert_array_equal(
            restored.quantiles(), self._reference_quantiles(restored)
        )
        calibrator.reset_scores()
        for h in range(2):
            calibrator.update(h, rng.gamma(2.0, 1.0, size=30), miscoverage=0.05)
        np.testing.assert_array_equal(
            calibrator.quantiles(), self._reference_quantiles(calibrator)
        )
