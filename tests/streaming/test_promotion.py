"""Shadow/canary promotion of drift-triggered refits on a live stream.

End-to-end contract (fixed seeds throughout): drift fires, the refit is
staged as a candidate and scored on live observations next to the incumbent,
and it is promoted only when its rolling MAE/coverage beat the incumbent's —
a deliberately degraded candidate is rejected and rolled back off the
server.  Concurrent client traffic sees zero dropped requests and no shadow
leakage at any point.
"""

import threading

import numpy as np
import pytest

from repro.core.inference import PredictionResult
from repro.serving import InferenceServer
from repro.streaming import (
    CoverageBreachDetector,
    PersistenceForecaster,
    PromotionPolicy,
    StreamingForecaster,
)

NODES = 4
HISTORY = 3
HORIZON = 2


class OffsetForecaster:
    """Persistence plus a constant bias — offset 0 matches the incumbent,
    a large offset is a deliberately degraded refit."""

    def __init__(self, offset):
        self.offset = float(offset)
        self.inner = PersistenceForecaster(horizon=HORIZON, sigma=1.0)

    def predict(self, windows):
        result = self.inner.predict(windows)
        return PredictionResult(
            mean=result.mean + self.offset,
            aleatoric_var=result.aleatoric_var,
            epistemic_var=result.epistemic_var,
        )


def _regime_shift_stream(seed=42, quiet=60, loud=240):
    rng = np.random.default_rng(seed)
    calm = 50.0 + rng.normal(size=(quiet, NODES))
    shifted = 120.0 + rng.normal(size=(loud, NODES)) * 3.0
    return np.concatenate([calm, shifted], axis=0)


def _runner(server, candidate, mode, eval_steps=30):
    incumbent = PersistenceForecaster(horizon=HORIZON, sigma=1.0)
    return StreamingForecaster(
        incumbent,
        history=HISTORY,
        horizon=HORIZON,
        server=server,
        refit_fn=lambda recent: candidate,
        cooldown=10_000,
        background_refit=False,
        detectors=[
            CoverageBreachDetector(
                nominal=0.95, tolerance=0.05, window=20, patience=5, warmup=10
            )
        ],
        aci={"mode": "static", "window": 60, "min_scores": 10},
        promotion=PromotionPolicy(mode=mode, eval_steps=eval_steps),
    )


def _drive(runner, server, stream):
    """Run the stream while clients hammer the server; returns client futures."""
    futures = []
    stop = threading.Event()

    def client():
        rng = np.random.default_rng(1)
        while not stop.is_set():
            window = rng.uniform(0.0, 100.0, size=(HISTORY, NODES))
            futures.append(server.submit(window))

    with server:
        thread = threading.Thread(target=client, daemon=True)
        thread.start()
        for row in stream:
            runner.observe(row)
        runner.join_refit()
        stop.set()
        thread.join(timeout=10.0)
        results = [future.result(timeout=30.0) for future in futures]
    return futures, results


class TestShadowPromotionEndToEnd:
    @pytest.mark.parametrize("mode", ["shadow", "canary"])
    def test_good_candidate_is_auto_promoted(self, mode):
        candidate = OffsetForecaster(0.0)
        server = InferenceServer(max_batch_size=4, max_wait_ms=1.0, cache_size=64)
        server.deploy("incumbent", PersistenceForecaster(horizon=HORIZON, sigma=1.0))
        runner = _runner(server, candidate, mode)

        futures, results = _drive(runner, server, _regime_shift_stream())

        # Zero dropped requests: every submitted future resolved.
        assert len(results) == len(futures) > 0
        assert all(isinstance(result, PredictionResult) for result in results)
        assert server.stats["requests_served"] == len(futures)

        kinds = [event.kind for event in runner.event_log]
        assert "candidate_staged" in kinds
        assert "candidate_promoted" in kinds
        assert "candidate_rejected" not in kinds
        # The candidate now serves the default route and the runner's loop.
        assert server.pool.default_name == "stream-cand1"
        assert server.model_version == "stream-recal1"
        assert runner.forecaster is candidate
        assert server.stats["promotions"] == 1
        # The trial is over: the caller's router was restored.
        assert type(server.router).__name__ == "Router"

    @pytest.mark.parametrize("mode", ["shadow", "canary"])
    def test_degraded_candidate_is_rejected_and_rolled_back(self, mode):
        candidate = OffsetForecaster(40.0)  # grossly biased refit
        server = InferenceServer(max_batch_size=4, max_wait_ms=1.0, cache_size=64)
        server.deploy("incumbent", PersistenceForecaster(horizon=HORIZON, sigma=1.0))
        runner = _runner(server, candidate, mode)
        incumbent = runner.forecaster

        futures, results = _drive(runner, server, _regime_shift_stream())

        # Zero dropped requests, even across staging and rollback.
        assert len(results) == len(futures) > 0
        assert server.stats["requests_served"] == len(futures)

        kinds = [event.kind for event in runner.event_log]
        assert "candidate_staged" in kinds
        assert "candidate_rejected" in kinds
        assert "candidate_promoted" not in kinds
        assert "model_swapped" not in kinds
        # Rolled back: the candidate is gone and the incumbent still serves.
        assert server.pool.default_name == "incumbent"
        assert "stream-cand1" not in server.pool
        assert runner.forecaster is incumbent
        assert server.stats["promotions"] == 0
        # The rejection is auditable: the decision records both MAEs.
        rejection = runner.event_log.of_kind("candidate_rejected")[0]
        assert rejection.value > rejection.threshold  # candidate MAE worse

    def test_shadow_trial_never_leaks_into_responses(self):
        """While the trial runs, external clients only ever see the incumbent."""
        candidate = OffsetForecaster(40.0)
        server = InferenceServer(max_batch_size=4, max_wait_ms=1.0, cache_size=0)
        incumbent_model = PersistenceForecaster(horizon=HORIZON, sigma=1.0)
        server.deploy("incumbent", incumbent_model)
        runner = _runner(server, candidate, "shadow", eval_steps=200)
        stream = _regime_shift_stream(quiet=60, loud=120)

        with server:
            for row in stream:
                runner.observe(row)
            assert runner.trial is not None  # trial still in flight
            # The candidate sees mirrored traffic...
            window = np.full((HISTORY, NODES), 55.0)
            result = server.submit(window).result(timeout=30.0)
            # ...but the response is the incumbent's (no +40 bias).
            direct = incumbent_model.predict(window[None])
            np.testing.assert_allclose(result.mean, direct.mean)
        shadow_stats = server.deployment_stats("stream-cand1")
        assert shadow_stats["shadow_windows"] > 0
        assert shadow_stats["requests_served"] == 0

    def test_trial_longer_than_metric_window_still_reaches_a_verdict(self):
        """Regression: scored_steps once read the monitors' ring counts, which
        cap at metric_window — eval_steps > metric_window stalled forever."""
        candidate = OffsetForecaster(0.0)
        runner = _runner(None, candidate, "shadow", eval_steps=60)
        runner.promotion_policy.metric_window = 20  # much shorter than eval
        for row in _regime_shift_stream(quiet=60, loud=240):
            runner.observe(row)
        kinds = [event.kind for event in runner.event_log]
        assert "candidate_promoted" in kinds or "candidate_rejected" in kinds
        assert runner.trial is None

    def test_repeated_promotions_keep_one_displaced_generation(self):
        """The pool retains current + one rollback target, not every past model."""
        server = InferenceServer(max_batch_size=4, max_wait_ms=1.0, cache_size=0)
        server.deploy("incumbent", PersistenceForecaster(horizon=HORIZON, sigma=1.0))
        runner = _runner(server, OffsetForecaster(0.0), "shadow")
        runner.cooldown = 30  # allow several drift -> trial cycles
        stream = np.concatenate(
            [_regime_shift_stream(seed=s, quiet=30, loud=150) for s in (1, 2, 3)]
        )
        with server:
            def refit(recent):
                return OffsetForecaster(0.0)

            runner.refit_fn = refit
            for row in stream:
                runner.observe(row)
            runner.join_refit()
        promotions = len(runner.event_log.of_kind("candidate_promoted"))
        assert promotions >= 2
        # Bounded pool: current default + one displaced generation (+ at most
        # one candidate whose trial the stream ended mid-flight) — past
        # incumbents do not accumulate, however many promotions happened.
        assert len(server.pool) <= 3
        assert "incumbent" not in server.pool
        assert server.pool.default_name.startswith("stream-cand")

    def test_canary_serves_its_share_of_runner_forecasts(self):
        candidate = OffsetForecaster(0.0)
        runner = _runner(None, candidate, "canary", eval_steps=10_000)
        runner.promotion_policy.canary_fraction = 0.25
        served = []
        for row in _regime_shift_stream(quiet=60, loud=160):
            served.append(runner.observe(row).served_by)
        assert runner.trial is not None
        assert served.count("candidate") > 0
        # Deficit admission keeps the realized share at the configured 25%.
        start = next(i for i, s in enumerate(served) if s == "candidate")
        window = served[start - 1 :]
        assert abs(window.count("candidate") / len(window) - 0.25) < 0.05
