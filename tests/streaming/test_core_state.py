"""RollingStat numeric accuracy and the v2 stream-core state protocol.

Three regressions pinned here:

* ``RollingStat``'s incremental running sum used to accumulate float
  cancellation error without bound — push ``1e12`` and then a long stream
  of tiny values and the reported mean ended up dominated by the leftover
  of the subtraction.  The fix re-sums the ring exactly on every wrap.
* Drift detectors used to fall out of ``StreamCore.get_state`` entirely: a
  checkpoint taken mid-patience / mid-CUSUM-accumulation silently re-armed
  the detectors on restore, so a restored stream fired later (or never)
  compared to an uninterrupted one.
* Format-version handling: v2 snapshots round-trip detectors and ledgers
  bit-identically; v1 snapshots still load (detectors and ledgers restore
  fresh); unknown versions are rejected loudly.
"""

import numpy as np
import pytest

from repro.streaming import (
    CoverageBreachDetector,
    ErrorCusumDetector,
    PersistenceForecaster,
)
from repro.streaming.monitor import RollingStat
from repro.streaming.shard import STREAM_CORE_FORMAT_VERSION, StreamCore

HISTORY, HORIZON, NODES = 6, 2, 3


def _exact_window_mean(values, window):
    tail = np.asarray(values[-window:], dtype=np.float64)
    return float(tail.sum() / len(tail))


class TestRollingStatAccuracy:
    def _adversarial_stream(self, pushes):
        # One huge value followed by tiny alternating ones: the incremental
        # sum keeps the cancellation residue of the 1e12 subtraction forever.
        values = [1e12]
        values.extend(1e-4 * ((i % 7) + 1) for i in range(pushes - 1))
        return values

    def test_mean_stays_exact_on_adversarial_stream(self):
        window = 288
        stat = RollingStat(window)
        values = self._adversarial_stream(200_001)
        for value in values:
            stat.push(value)
        exact = _exact_window_mean(values, window)
        assert stat.mean == pytest.approx(exact, rel=1e-9)

    @pytest.mark.slow
    def test_mean_stays_exact_over_a_million_pushes(self):
        window = 288
        stat = RollingStat(window)
        values = self._adversarial_stream(1_000_001)
        for value in values:
            stat.push(value)
        exact = _exact_window_mean(values, window)
        assert stat.mean == pytest.approx(exact, rel=1e-9)

    def test_partial_ring_still_tracks_exactly(self):
        stat = RollingStat(64)
        values = [1e12] + [1e-4] * 10
        for value in values:
            stat.push(value)
        # No wrap yet: the documented contract is plain incremental float
        # accuracy, which the huge leading value legitimately dominates.
        assert stat.count == 11
        assert stat.mean == pytest.approx(np.mean(values))


class TestDetectorMidStateContinuation:
    """A snapshot taken mid-evidence must fire like the uninterrupted run."""

    def test_error_cusum_statistic_survives_and_fires_on_schedule(self):
        def drive(detector, start, stop):
            fired = []
            for step in range(start, stop):
                error = 1.0 if step < 60 else 4.0  # baseline, then a shift
                event = detector.update(step, error)
                if event is not None:
                    fired.append(event.step)
            return fired

        reference = ErrorCusumDetector(slack=1.0, threshold=10.0, warmup=40)
        reference_fires = drive(reference, 0, 100)

        interrupted = ErrorCusumDetector(slack=1.0, threshold=10.0, warmup=40)
        assert drive(interrupted, 0, 63) == []
        snapshot = interrupted.get_state()
        assert float(snapshot["arrays"]["statistic"]) > 0.0  # evidence mid-flight

        restored = ErrorCusumDetector().set_state(snapshot)
        assert drive(restored, 63, 100) == reference_fires
        final, expected = restored.get_state(), reference.get_state()
        assert final["meta"] == expected["meta"]
        for key, array in expected["arrays"].items():
            np.testing.assert_array_equal(final["arrays"][key], array, err_msg=key)

    def test_coverage_breach_patience_survives_restore(self):
        def make():
            return CoverageBreachDetector(
                nominal=0.95, tolerance=0.05, window=20, patience=5, warmup=10
            )

        def drive(detector, start, stop):
            fired = []
            for step in range(start, stop):
                covered = 1.0 if step < 30 else 0.0
                event = detector.update(step, covered)
                if event is not None:
                    fired.append(event.step)
            return fired

        reference_fires = drive(make(), 0, 60)
        assert reference_fires  # the collapse does fire

        interrupted = make()
        drive(interrupted, 0, 33)  # three breached steps into patience=5
        snapshot = interrupted.get_state()
        assert snapshot["meta"]["breached_steps"] > 0

        restored = make().set_state(snapshot)
        fires = drive(restored, 33, 60)
        assert fires == reference_fires

    def test_wrong_kind_snapshot_is_rejected(self):
        cusum_state = ErrorCusumDetector().get_state()
        with pytest.raises(ValueError, match="coverage_breach"):
            CoverageBreachDetector().set_state(cusum_state)


def _make_core():
    return StreamCore(
        HISTORY,
        HORIZON,
        aci={"window": 100, "gamma": 0.02},
        detectors=[
            CoverageBreachDetector(
                nominal=0.95, tolerance=0.05, window=20, patience=5, warmup=10
            ),
            ErrorCusumDetector(slack=0.5, threshold=8.0, warmup=20),
        ],
    )


def _rows(steps, seed=0):
    rng = np.random.default_rng(seed)
    rows = rng.uniform(50.0, 150.0, size=(steps, NODES))
    rows[steps // 3, 1] = np.nan  # exercise the carry-forward imputation
    return rows


def _drive(core, rows, model):
    for row in rows:
        core.ingest(row)
        window = core.window()
        if window is not None:
            core.record(model.predict(window))
        core.advance()


class TestStreamCoreStateV2:
    def test_mid_stream_snapshot_continues_bit_identically(self):
        model = PersistenceForecaster(horizon=HORIZON, sigma=5.0)
        rows = _rows(120, seed=4)

        reference = _make_core()
        _drive(reference, rows, model)

        interrupted = _make_core()
        _drive(interrupted, rows[:60], model)
        restored = _make_core().set_state(interrupted.get_state())
        _drive(restored, rows[60:], model)

        expected = reference.get_state()
        actual = restored.get_state()
        assert actual["meta"] == expected["meta"]
        assert set(actual["arrays"]) == set(expected["arrays"])
        for key, array in expected["arrays"].items():
            np.testing.assert_array_equal(actual["arrays"][key], array, err_msg=key)
        # The restored core is warm: it predicts without re-warming.
        assert restored.warmed_up

    def test_v1_snapshot_loads_with_fresh_detectors_and_ledgers(self):
        model = PersistenceForecaster(horizon=HORIZON, sigma=5.0)
        source = _make_core()
        _drive(source, _rows(60, seed=7), model)
        v2 = source.get_state()

        v1_meta = {
            key: value
            for key, value in v2["meta"].items()
            if key not in ("detectors", "pending")
        }
        v1_meta["format_version"] = 1
        v1_arrays = {
            key: value
            for key, value in v2["arrays"].items()
            if not key.startswith(("detector.", "pending.", "core."))
        }

        restored = _make_core().set_state({"meta": v1_meta, "arrays": v1_arrays})
        # What v1 carried is back...
        assert restored.step == source.step
        assert restored.event_log.to_records() == source.event_log.to_records()
        assert restored.monitor.get_state()["meta"] == source.monitor.get_state()["meta"]
        # ...and what it never carried restores fresh, not corrupt.
        assert not restored.warmed_up
        assert float(restored.detectors[1].get_state()["arrays"]["statistic"]) == 0.0

    def test_unknown_format_version_is_rejected(self):
        state = _make_core().get_state()
        state["meta"]["format_version"] = STREAM_CORE_FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="unsupported stream-core state format"):
            _make_core().set_state(state)

    def test_foreign_state_kind_is_rejected(self):
        with pytest.raises(ValueError, match="not a stream core"):
            _make_core().set_state({"meta": {"kind": "gizmo"}, "arrays": {}})
