"""The online loop: regime-shift adaptation, hot-swap, persistence, facade.

The headline test here is the ISSUE acceptance criterion: on a synthetic
regime-shift stream (observation noise 2.5x mid-stream), the *static*
split-conformal calibration degrades below 85% rolling coverage, while the
adaptive (ACI) calibration returns to 95% +/- 2% within the adaptation
window — asserted with a fixed seed.
"""

import threading

import numpy as np
import pytest

from repro.core.inference import PredictionResult
from repro.data import StreamingTrafficFeed
from repro.graph import grid_network
from repro.serving import InferenceServer
from repro.streaming import (
    AdaptiveConformalCalibrator,
    CoverageBreachDetector,
    PersistenceForecaster,
    StreamingForecaster,
    StreamingMonitor,
)

HISTORY, HORIZON = 8, 4


class OracleForecaster:
    """Predicts the feed's clean signal exactly, with a fixed reported scale.

    The runner calls ``predict`` exactly once per observed step once warm,
    so a call counter recovers the stream position; the forecast for call
    ``k`` (made after observing step ``t = history - 1 + k``) is the clean
    flow at ``t+1 .. t+horizon``.  All remaining interval error therefore
    comes from the observation noise — precisely the quantity the conformal
    layer must track through the regime shift.
    """

    def __init__(self, feed, horizon: int, sigma: float) -> None:
        self.feed = feed
        self.horizon = horizon
        self.sigma = float(sigma)
        self.calls = 0

    def predict(self, windows: np.ndarray) -> PredictionResult:
        t = HISTORY - 1 + self.calls
        self.calls += 1
        last = self.feed.num_steps - 1
        mean = np.stack(
            [self.feed.clean[min(t + h, last)] for h in range(1, self.horizon + 1)]
        )[None]
        variance = np.full_like(mean, self.sigma ** 2)
        return PredictionResult(
            mean=mean, aleatoric_var=variance, epistemic_var=np.zeros_like(mean)
        )


@pytest.fixture(scope="module")
def regime_shift_feed():
    network = grid_network(3, 3)
    return StreamingTrafficFeed.scenario(network, "regime_shift", num_steps=1200, seed=7)


def _run_mode(feed, mode: str) -> StreamingForecaster:
    sigma_ref = float(feed.noise_sigma[:600].mean())
    runner = StreamingForecaster(
        OracleForecaster(feed, HORIZON, sigma_ref),
        history=HISTORY,
        horizon=HORIZON,
        aci={"mode": mode, "window": 1800, "gamma": 0.01},
        monitor=StreamingMonitor(window=300),
        detectors=[],
    )
    runner.run(feed)
    return runner


class TestRegimeShiftAcceptance:
    """ISSUE 3 acceptance: static conformal loses coverage, ACI recovers it."""

    def test_static_conformal_degrades_below_85(self, regime_shift_feed):
        runner = _run_mode(regime_shift_feed, "static")
        assert runner.monitor.coverage < 85.0

    def test_aci_recovers_nominal_coverage(self, regime_shift_feed):
        runner = _run_mode(regime_shift_feed, "aci")
        assert runner.monitor.coverage == pytest.approx(95.0, abs=2.0)

    def test_aci_tracks_the_noise_scale(self, regime_shift_feed):
        """Post-shift ACI intervals are ~2.5x wider than the static ones."""
        static = _run_mode(regime_shift_feed, "static")
        adaptive = _run_mode(regime_shift_feed, "aci")
        ratio = adaptive.monitor.mean_width / static.monitor.mean_width
        assert 1.8 < ratio < 3.5


class TestObserveLoop:
    def _runner(self, **kwargs):
        defaults = dict(history=3, horizon=2, detectors=[], aci={"mode": "rolling"})
        defaults.update(kwargs)
        return StreamingForecaster(PersistenceForecaster(horizon=2, sigma=5.0), **defaults)

    def test_no_prediction_during_warmup(self):
        runner = self._runner()
        results = [runner.observe(np.full(4, 10.0)) for _ in range(2)]
        assert all(result.prediction is None for result in results)
        third = runner.observe(np.full(4, 10.0))
        assert third.prediction is not None
        assert third.prediction.mean.shape == (1, 2, 4)
        assert third.lower.shape == (2, 4)
        assert np.all(third.lower <= third.upper)

    def test_geometry_inferred_from_config(self):
        class WithConfig:
            class config:
                history, horizon = 5, 3

            def predict(self, windows):
                mean = np.zeros((windows.shape[0], 3, windows.shape[2]))
                return PredictionResult(
                    mean=mean,
                    aleatoric_var=np.ones_like(mean),
                    epistemic_var=np.zeros_like(mean),
                )

        runner = StreamingForecaster(WithConfig(), detectors=[])
        assert (runner.history, runner.horizon) == (5, 3)

    def test_geometry_required_when_unknown(self):
        with pytest.raises(ValueError, match="history"):
            StreamingForecaster(lambda windows: None)

    def test_nan_observations_are_carried_forward(self):
        runner = self._runner()
        runner.observe(np.array([1.0, 2.0, 3.0, 4.0]))
        result = runner.observe(np.array([10.0, np.nan, 30.0, np.nan]))
        np.testing.assert_array_equal(result.observed, [10.0, 2.0, 30.0, 4.0])
        np.testing.assert_array_equal(result.mask, [True, False, True, False])

    def test_fully_masked_stream_still_runs(self):
        runner = self._runner()
        for _ in range(6):
            result = runner.observe(np.full(4, np.nan))
        assert result.prediction is not None  # imputed history still forecasts

    def test_pending_forecasts_feed_the_monitor(self):
        runner = self._runner(monitor=StreamingMonitor(window=50))
        for step in range(20):
            runner.observe(np.full(4, 100.0))
        snapshot = runner.monitor.snapshot()
        assert snapshot["scored_steps"] > 0
        # A constant stream is trivially covered by persistence intervals.
        assert snapshot["coverage"] == pytest.approx(100.0)
        assert snapshot["mae"] == pytest.approx(0.0, abs=1e-12)

    def test_run_respects_max_steps(self):
        runner = self._runner()
        results = runner.run((np.full(4, 1.0) for _ in range(100)), max_steps=7)
        assert len(results) == 7
        assert runner.step == 7


class TestDriftTriggeredSwap:
    def _drifting_stream(self, steps_quiet=60, steps_loud=80, nodes=4):
        rng = np.random.default_rng(42)
        quiet = 50.0 + rng.normal(size=(steps_quiet, nodes))
        loud = 50.0 + rng.normal(size=(steps_loud, nodes)) * 30.0
        return np.concatenate([quiet, loud], axis=0)

    def test_drift_fires_refit_and_hot_swap_without_dropping_requests(self):
        model = PersistenceForecaster(horizon=2, sigma=1.0)
        server = InferenceServer(
            model.predict, model_version="stream-v0", max_batch_size=4,
            max_wait_ms=5.0, cache_size=0,
        )
        refitted = PersistenceForecaster(horizon=2, sigma=50.0)
        refit_calls = []

        def refit_fn(recent):
            refit_calls.append(recent)
            return refitted

        runner = StreamingForecaster(
            model,
            history=3,
            horizon=2,
            server=server,
            refit_fn=refit_fn,
            cooldown=10_000,
            background_refit=True,
            detectors=[
                CoverageBreachDetector(
                    nominal=0.95, tolerance=0.05, window=20, patience=5, warmup=10
                )
            ],
            aci={"mode": "static", "window": 60, "min_scores": 10},
        )

        stream = self._drifting_stream()
        futures = []
        stop = threading.Event()

        def client():
            rng = np.random.default_rng(1)
            while not stop.is_set():
                window = rng.uniform(0.0, 100.0, size=(3, 4))
                futures.append(server.submit(window))

        with server:
            thread = threading.Thread(target=client, daemon=True)
            thread.start()
            for row in stream:
                runner.observe(row)
            runner.join_refit()
            stop.set()
            thread.join(timeout=10.0)
            results = [future.result(timeout=30.0) for future in futures]

        # Zero dropped requests: every submitted future resolved.
        assert len(results) == len(futures) > 0
        assert all(isinstance(result, PredictionResult) for result in results)
        assert server.stats["requests_served"] == len(futures)
        # The drift actually triggered a refit that was published via swap.
        assert len(refit_calls) == 1
        assert refit_calls[0].shape[1] == 4
        assert server.stats["models_swapped"] >= 1
        assert server.model_version == "stream-recal1"
        kinds = {event.kind for event in runner.event_log}
        assert {"coverage_breach", "recalibration_started", "model_swapped",
                "recalibrated"} <= kinds
        # The runner's own loop now forecasts with the refitted model, and
        # save() would persist it (not the pre-drift one).
        assert runner._predict == refitted.predict
        assert runner.forecaster is refitted

    def test_overlapping_refits_are_suppressed(self):
        """A trigger while a refit is in flight is skipped, not stacked."""
        release = threading.Event()
        started = []

        def slow_refit(recent):
            started.append(1)
            release.wait(timeout=30.0)
            return PersistenceForecaster(horizon=2, sigma=9.0)

        class AlwaysFire:
            kind = "coverage_breach"
            signal = "coverage"

            def update(self, step, value):
                from repro.streaming import DriftEvent

                if value is None:
                    return None
                return DriftEvent(kind=self.kind, step=step, value=0.0, threshold=1.0)

        runner = StreamingForecaster(
            PersistenceForecaster(horizon=2, sigma=1.0),
            history=2, horizon=2,
            refit_fn=slow_refit,
            detectors=[AlwaysFire()],
            cooldown=1,
            background_refit=True,
        )
        for _ in range(30):
            runner.observe(np.full(3, 1.0))
        assert len(started) == 1  # every later trigger saw the in-flight refit
        release.set()
        runner.join_refit()
        assert runner.event_log.of_kind("recalibration_started")
        assert len(runner.event_log.of_kind("model_swapped")) == 0  # no server
        assert runner.forecaster.sigma == 9.0

    def test_cooldown_rate_limits_triggers(self):
        events_fired = []

        class AlwaysFire:
            kind = "coverage_breach"
            signal = "coverage"

            def update(self, step, value):
                from repro.streaming import DriftEvent

                if value is None:
                    return None
                events_fired.append(step)
                return DriftEvent(kind=self.kind, step=step, value=0.0, threshold=1.0)

        runner = StreamingForecaster(
            PersistenceForecaster(horizon=2, sigma=1.0),
            history=2, horizon=2,
            detectors=[AlwaysFire()],
            cooldown=30,
            background_refit=False,
        )
        for _ in range(70):
            runner.observe(np.full(3, 1.0))
        starts = runner.event_log.of_kind("recalibration_started")
        assert 1 <= len(starts) <= 3
        steps = [event.step for event in starts]
        assert all(b - a >= 30 for a, b in zip(steps, steps[1:]))

    def test_failed_refit_lands_in_event_log_not_the_loop(self):
        def broken_refit(recent):
            raise RuntimeError("no data warehouse today")

        runner = StreamingForecaster(
            PersistenceForecaster(horizon=2, sigma=1.0),
            history=2, horizon=2,
            refit_fn=broken_refit,
            background_refit=False,
            cooldown=10_000,
            detectors=[
                CoverageBreachDetector(
                    nominal=0.95, tolerance=0.05, window=10, patience=3, warmup=5
                )
            ],
            aci={"mode": "static", "window": 40, "min_scores": 10},
        )
        stream = self._drifting_stream(steps_quiet=40, steps_loud=40, nodes=3)
        for row in stream:
            runner.observe(row)  # must not raise
        failures = runner.event_log.of_kind("recalibration_failed")
        assert len(failures) >= 1
        assert "no data warehouse" in failures[0].message


class TestStreamingPersistence:
    def test_aci_state_survives_save_load_bit_identically(self, tmp_path):
        model = PersistenceForecaster(horizon=2, sigma=5.0)
        runner = StreamingForecaster(
            model, history=3, horizon=2, detectors=[], aci={"mode": "aci", "window": 64}
        )
        rng = np.random.default_rng(9)
        for _ in range(40):
            runner.observe(50.0 + rng.normal(size=4) * 3.0)
        saved = runner.save(tmp_path / "stream")

        restored = StreamingForecaster.load(
            saved, forecaster=model, history=3, horizon=2, detectors=[]
        )
        original = runner.calibrator.get_state()
        reloaded = restored.calibrator.get_state()
        assert original["meta"] == reloaded["meta"]
        for key in original["arrays"]:
            np.testing.assert_array_equal(
                original["arrays"][key], reloaded["arrays"][key], err_msg=key
            )
        # Same future intervals from the restored state.
        probe = PredictionResult(
            mean=np.zeros((1, 2, 4)),
            aleatoric_var=np.ones((1, 2, 4)),
            epistemic_var=np.zeros((1, 2, 4)),
        )
        np.testing.assert_array_equal(
            runner.calibrator.calibrate(probe).std,
            restored.calibrator.calibrate(probe).std,
        )

    def test_load_without_model_checkpoint_requires_forecaster(self, tmp_path):
        runner = StreamingForecaster(
            PersistenceForecaster(horizon=2, sigma=1.0),
            history=2, horizon=2, detectors=[],
        )
        saved = runner.save(tmp_path / "stream")
        with pytest.raises(FileNotFoundError, match="forecaster"):
            StreamingForecaster.load(saved)


class TestForecasterFacadeIntegration:
    TRAINING = {
        "history": 4, "horizon": 2, "hidden_dim": 6, "embed_dim": 2,
        "epochs": 1, "batch_size": 64, "seed": 0,
    }

    @pytest.fixture(scope="class")
    def fitted(self):
        from repro.api import Forecaster
        from repro.data import TrafficData, generate_traffic, train_val_test_split

        network = grid_network(3, 3)
        values = generate_traffic(network, 260, seed=3)
        traffic = TrafficData(name="stream-test", values=values, network=network)
        train, val, _ = train_val_test_split(traffic)
        return Forecaster.from_spec({"method": "MVE", "training": self.TRAINING}).fit(
            train, val
        )

    def test_stream_and_observe_through_the_facade(self, fitted):
        stream = fitted.stream(detectors=[], aci={"mode": "rolling"})
        assert stream.history == 4 and stream.horizon == 2
        rng = np.random.default_rng(0)
        result = None
        for _ in range(6):
            result = fitted.observe(rng.uniform(0.0, 100.0, size=9))
        assert result.prediction is not None
        assert result.prediction.mean.shape == (1, 2, 9)

    def test_observe_without_stream_raises(self, fitted):
        from repro.api import Forecaster

        fresh = Forecaster.from_spec({"method": "MVE", "training": self.TRAINING})
        with pytest.raises(RuntimeError, match="stream"):
            fresh.observe(np.zeros(9))

    def test_stream_requires_fitted(self):
        from repro.api import Forecaster

        fresh = Forecaster.from_spec({"method": "MVE", "training": self.TRAINING})
        with pytest.raises(RuntimeError):
            fresh.stream()

    def test_streaming_save_load_roundtrip_with_checkpoint(self, fitted, tmp_path):
        stream = fitted.stream(detectors=[], aci={"mode": "rolling", "window": 32})
        rng = np.random.default_rng(1)
        for _ in range(10):
            stream.observe(rng.uniform(0.0, 100.0, size=9))
        stream.save(tmp_path / "full")

        restored = StreamingForecaster.load(tmp_path / "full", detectors=[])
        window = rng.uniform(0.0, 100.0, size=(1, 4, 9))
        np.testing.assert_array_equal(
            fitted.predict(window).mean, restored.forecaster.predict(window).mean
        )
        np.testing.assert_array_equal(
            stream.calibrator.quantiles(), restored.calibrator.quantiles()
        )
