"""Rolling-window monitors and drift detectors."""

import numpy as np
import pytest

from repro.metrics import mpiw, picp, winkler_score
from repro.streaming import (
    CoverageBreachDetector,
    DriftEvent,
    ErrorCusumDetector,
    EventLog,
    RollingStat,
    StreamingMonitor,
)


class TestRollingStat:
    def test_mean_before_full(self):
        stat = RollingStat(4)
        for value in (1.0, 2.0, 3.0):
            stat.push(value)
        assert stat.count == 3
        assert stat.mean == pytest.approx(2.0)

    def test_eviction_keeps_last_window(self):
        stat = RollingStat(3)
        for value in (1.0, 2.0, 3.0, 10.0):
            stat.push(value)
        assert stat.count == 3
        assert stat.mean == pytest.approx(5.0)  # (2 + 3 + 10) / 3
        np.testing.assert_allclose(stat.values(), [2.0, 3.0, 10.0])

    def test_running_sum_matches_recompute_over_long_stream(self):
        rng = np.random.default_rng(0)
        stat = RollingStat(16)
        stream = rng.normal(size=500)
        for value in stream:
            stat.push(value)
        assert stat.mean == pytest.approx(np.mean(stream[-16:]), abs=1e-10)

    def test_empty_is_nan(self):
        assert np.isnan(RollingStat(3).mean)

    def test_reset(self):
        stat = RollingStat(3)
        stat.push(1.0)
        stat.reset()
        assert stat.count == 0 and np.isnan(stat.mean)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            RollingStat(0)


class TestStreamingMonitor:
    def _stream(self, rng, steps=60, nodes=5):
        target = rng.normal(size=(steps, nodes)) * 2.0 + 10.0
        mean = target + rng.normal(size=(steps, nodes))
        lower, upper = mean - 2.5, mean + 2.5
        return target, mean, lower, upper

    def test_matches_batch_metrics_over_window(self, rng):
        steps = 60
        target, mean, lower, upper = self._stream(rng, steps=steps)
        monitor = StreamingMonitor(window=steps)
        for t in range(steps):
            monitor.update(target[t], mean[t], lower[t], upper[t])
        snap = monitor.snapshot()
        assert snap["coverage"] == pytest.approx(picp(target, lower, upper), abs=1e-9)
        assert snap["mean_width"] == pytest.approx(mpiw(lower, upper), abs=1e-9)
        assert snap["mae"] == pytest.approx(np.mean(np.abs(target - mean)), abs=1e-9)
        assert snap["rmse"] == pytest.approx(
            np.sqrt(np.mean((target - mean) ** 2)), abs=1e-9
        )
        assert snap["winkler"] == pytest.approx(
            winkler_score(target, lower, upper), abs=1e-9
        )

    def test_window_forgets_old_steps(self, rng):
        monitor = StreamingMonitor(window=10)
        # 50 uncovered steps followed by 10 covered ones.
        for _ in range(50):
            monitor.update(np.array([100.0]), np.array([0.0]), np.array([-1.0]), np.array([1.0]))
        for _ in range(10):
            monitor.update(np.array([0.0]), np.array([0.0]), np.array([-1.0]), np.array([1.0]))
        assert monitor.coverage == pytest.approx(100.0)

    def test_nan_targets_are_masked(self):
        monitor = StreamingMonitor(window=8)
        target = np.array([0.0, np.nan, 50.0])
        covered = monitor.update(
            target, np.zeros(3), np.full(3, -1.0), np.full(3, 1.0)
        )
        # NaN entry dropped; of the remaining two, one covered.
        assert covered == pytest.approx(0.5)

    def test_fully_masked_step_leaves_window_untouched(self):
        monitor = StreamingMonitor(window=8)
        assert monitor.update(
            np.array([np.nan]), np.array([0.0]), np.array([-1.0]), np.array([1.0])
        ) is None
        assert np.isnan(monitor.coverage)
        assert monitor.snapshot()["scored_steps"] == 0

    def test_explicit_mask_intersects_finiteness(self):
        monitor = StreamingMonitor(window=8)
        covered = monitor.update(
            np.array([0.0, 0.0]),
            np.zeros(2),
            np.full(2, -1.0),
            np.full(2, 1.0),
            mask=np.array([True, False]),
        )
        assert covered == pytest.approx(1.0)

    def test_rejects_bad_significance(self):
        with pytest.raises(ValueError):
            StreamingMonitor(significance=0.0)


class TestCoverageBreachDetector:
    def test_warmup_longer_than_window_still_arms(self):
        """Regression: warmup used the ring count (capped at window), so any
        warmup > window left the detector permanently disarmed."""
        detector = CoverageBreachDetector(
            nominal=0.95, tolerance=0.08, window=100, patience=25, warmup=300
        )
        fired = []
        step = 0
        for _ in range(350):  # healthy warm-up phase
            if detector.update(step, 0.95) is not None:
                fired.append(step)
            step += 1
        for _ in range(200):  # sustained collapse
            if detector.update(step, 0.60) is not None:
                fired.append(step)
            step += 1
        assert fired, "detector never armed although warmup elapsed"

    def test_fires_after_patience_breached_steps(self):
        detector = CoverageBreachDetector(
            nominal=0.95, tolerance=0.05, window=20, patience=5, warmup=10
        )
        event = None
        for step in range(40):
            event = detector.update(step, 0.5) or event
        assert event is not None
        assert event.kind == "coverage_breach"
        assert event.value < event.threshold

    def test_silent_during_warmup(self):
        detector = CoverageBreachDetector(window=50, patience=1, warmup=30)
        events = [detector.update(step, 0.0) for step in range(29)]
        assert all(event is None for event in events)

    def test_good_coverage_resets_patience(self):
        detector = CoverageBreachDetector(
            nominal=0.95, tolerance=0.05, window=1, patience=3, warmup=1
        )
        # Alternating good/bad rolling coverage never accumulates patience.
        for step in range(30):
            assert detector.update(step, 1.0 if step % 2 else 0.7) is None

    def test_none_signal_is_ignored(self):
        detector = CoverageBreachDetector(warmup=1, patience=1)
        assert detector.update(0, None) is None


class TestErrorCusumDetector:
    def test_fires_on_sustained_error_increase(self):
        rng = np.random.default_rng(3)
        detector = ErrorCusumDetector(slack=0.5, threshold=8.0, warmup=50)
        fired_at = None
        for step in range(300):
            scale = 1.0 if step < 150 else 4.0
            event = detector.update(step, abs(rng.normal()) * scale)
            if event is not None and fired_at is None:
                fired_at = step
        assert fired_at is not None and fired_at >= 150
        mean, std = detector.baseline
        assert 0.0 < mean < 2.0 and std > 0.0

    def test_stable_stream_never_fires(self):
        rng = np.random.default_rng(4)
        detector = ErrorCusumDetector(slack=0.5, threshold=8.0, warmup=50)
        events = [detector.update(step, abs(rng.normal())) for step in range(500)]
        assert all(event is None for event in events)

    def test_statistic_resets_after_firing(self):
        detector = ErrorCusumDetector(slack=0.0, threshold=1.0, warmup=2)
        detector.update(0, 1.0)
        detector.update(1, 1.0)
        event = None
        step = 2
        while event is None and step < 50:
            event = detector.update(step, 10.0)
            step += 1
        assert event is not None
        assert detector.statistic == 0.0


class TestEventLog:
    def test_filter_by_kind(self):
        log = EventLog()
        log.append(DriftEvent(kind="coverage_breach", step=1, value=0.5, threshold=0.9))
        log.append(DriftEvent(kind="model_swapped", step=2, value=1.0, threshold=0.0))
        assert len(log) == 2
        assert [event.step for event in log.of_kind("model_swapped")] == [2]
        assert "coverage_breach" in str(next(iter(log)))
