"""Native asymmetric bounds through the adaptive conformal layer (CQR mode)."""

import numpy as np
import pytest

from repro.core.inference import PredictionResult
from repro.streaming import (
    ACIConfig,
    AdaptiveConformalCalibrator,
    StreamingForecaster,
)

Z95 = 1.959963984540054
HORIZON, NODES = 3, 2


def _bounded_result(mean, lower_offset, upper_offset):
    mean = np.asarray(mean, dtype=np.float64)
    lower = mean - lower_offset
    upper = mean + upper_offset
    pseudo = (upper - lower) / (2.0 * Z95)
    return PredictionResult(
        mean=mean,
        aleatoric_var=pseudo ** 2,
        epistemic_var=np.zeros_like(mean),
        lower=lower,
        upper=upper,
    )


def _plain_result(mean, sigma=1.0):
    mean = np.asarray(mean, dtype=np.float64)
    return PredictionResult(
        mean=mean,
        aleatoric_var=np.full_like(mean, sigma ** 2),
        epistemic_var=np.zeros_like(mean),
    )


class TestPredictionResultBounds:
    def test_bounds_require_both_sides(self):
        mean = np.zeros((1, HORIZON, NODES))
        with pytest.raises(ValueError, match="both lower and upper"):
            PredictionResult(
                mean=mean, aleatoric_var=mean, epistemic_var=mean, lower=mean
            )

    def test_slicing_and_copy_preserve_bounds(self):
        result = _bounded_result(np.zeros((4, HORIZON, NODES)), 1.0, 2.0)
        sliced = result[1]
        assert sliced.has_native_bounds
        assert sliced.lower.shape == (1, HORIZON, NODES)
        copied = result.copy()
        copied.lower[:] = -99.0
        assert not np.array_equal(copied.lower, result.lower)

    def test_concatenate_keeps_bounds_only_when_all_have_them(self):
        bounded = _bounded_result(np.zeros((1, HORIZON, NODES)), 1.0, 2.0)
        plain = _plain_result(np.zeros((1, HORIZON, NODES)))
        both = PredictionResult.concatenate([bounded, bounded])
        assert both.has_native_bounds and both.lower.shape[0] == 2
        mixed = PredictionResult.concatenate([bounded, plain])
        assert not mixed.has_native_bounds

    def test_replace_interval_bounds_folds_width_into_pseudo_std(self):
        result = _plain_result(np.zeros((1, HORIZON, NODES)))
        lower = np.full((1, HORIZON, NODES), -1.0)
        upper = np.full((1, HORIZON, NODES), 3.0)
        replaced = result.replace_interval_bounds(lower, upper)
        np.testing.assert_allclose(replaced.std, (upper - lower) / (2.0 * Z95))
        np.testing.assert_array_equal(replaced.lower, lower)


class TestAutoDetection:
    def test_auto_latches_native_from_first_result(self):
        calibrator = AdaptiveConformalCalibrator(HORIZON)
        assert not calibrator.uses_native()
        calibrator.intervals(_bounded_result(np.zeros((1, HORIZON, NODES)), 1.0, 2.0))
        assert calibrator.uses_native()
        # latched: a later symmetric result does not flip the mode
        calibrator.intervals(_plain_result(np.zeros((1, HORIZON, NODES))))
        assert calibrator.uses_native()

    def test_auto_latches_scaled_from_plain_result(self):
        calibrator = AdaptiveConformalCalibrator(HORIZON)
        calibrator.intervals(_plain_result(np.zeros((1, HORIZON, NODES))))
        assert not calibrator.uses_native()

    def test_explicit_modes_ignore_the_result(self):
        scaled = AdaptiveConformalCalibrator(HORIZON, config=ACIConfig(interval_mode="scaled"))
        scaled.intervals(_bounded_result(np.zeros((1, HORIZON, NODES)), 1.0, 2.0))
        assert not scaled.uses_native()
        native = AdaptiveConformalCalibrator(HORIZON, config=ACIConfig(interval_mode="native"))
        assert native.uses_native()

    def test_bad_interval_mode_rejected(self):
        with pytest.raises(ValueError, match="interval_mode"):
            ACIConfig(interval_mode="sideways")


class TestNativeCalibration:
    def test_before_min_scores_native_bounds_pass_through(self):
        calibrator = AdaptiveConformalCalibrator(
            HORIZON, config=ACIConfig(min_scores=10)
        )
        result = _bounded_result(np.zeros((1, HORIZON, NODES)), 1.0, 4.0)
        lower, upper = calibrator.intervals(result)
        np.testing.assert_array_equal(lower, result.lower)
        np.testing.assert_array_equal(upper, result.upper)

    def test_margins_are_additive_and_preserve_asymmetry(self):
        calibrator = AdaptiveConformalCalibrator(
            HORIZON, config=ACIConfig(min_scores=5, mode="rolling")
        )
        result = _bounded_result(np.zeros((1, HORIZON, NODES)), 1.0, 4.0)
        calibrator.uses_native(result)
        # feed constant CQR scores of 2.0 → margin converges to ~2.0
        for _ in range(50):
            for h in range(HORIZON):
                calibrator.update(h, np.full(8, 2.0))
        lower, upper = calibrator.intervals(result)
        margins = calibrator.margins()
        np.testing.assert_allclose(margins, 2.0)
        np.testing.assert_allclose(result.lower - lower, 2.0)
        np.testing.assert_allclose(upper - result.upper, 2.0)
        # asymmetry of the native bounds survives calibration
        np.testing.assert_allclose(result.mean - lower, 3.0)
        np.testing.assert_allclose(upper - result.mean, 6.0)

    def test_negative_margin_shrinks_conservative_bounds(self):
        calibrator = AdaptiveConformalCalibrator(
            HORIZON, config=ACIConfig(min_scores=5, mode="rolling", significance=0.5)
        )
        result = _bounded_result(np.zeros((1, HORIZON, NODES)), 5.0, 5.0)
        calibrator.uses_native(result)
        for _ in range(50):
            for h in range(HORIZON):
                calibrator.update(h, np.full(8, -2.0))  # well inside the bounds
        lower, upper = calibrator.intervals(result)
        assert np.all(lower > result.lower)
        assert np.all(upper < result.upper)
        assert np.all(lower <= upper)

    def test_calibrate_attaches_bounds_and_width(self):
        calibrator = AdaptiveConformalCalibrator(HORIZON)
        result = _bounded_result(np.zeros((1, HORIZON, NODES)), 1.0, 4.0)
        calibrated = calibrator.calibrate(result)
        assert calibrated.has_native_bounds
        lower, upper = calibrator.intervals(result)
        np.testing.assert_array_equal(calibrated.lower, lower)
        np.testing.assert_allclose(
            calibrated.std, (upper - lower) / (2.0 * Z95)
        )

    def test_score_is_cqr_in_native_mode(self):
        calibrator = AdaptiveConformalCalibrator(
            HORIZON, config=ACIConfig(interval_mode="native")
        )
        obs = np.array([0.0, 10.0])
        lower = np.array([1.0, 0.0])
        upper = np.array([5.0, 6.0])
        scores = calibrator.score(obs, mean=np.zeros(2), scale=np.ones(2),
                                  lower=lower, upper=upper)
        np.testing.assert_allclose(scores, [1.0, 4.0])

    def test_update_batch_uses_cqr_scores(self):
        calibrator = AdaptiveConformalCalibrator(
            1, config=ACIConfig(min_scores=1, mode="rolling")
        )
        result = _bounded_result(np.zeros((5, 1, NODES)), 1.0, 1.0)
        targets = np.full((5, 1, NODES), 3.0)  # CQR score 2.0 everywhere
        calibrator.update_batch(result, targets)
        np.testing.assert_allclose(calibrator.margins(), 2.0, atol=1e-9)


class TestCheckpointRoundTrip:
    def test_native_latch_and_margins_round_trip(self, tmp_path):
        calibrator = AdaptiveConformalCalibrator(
            HORIZON, config=ACIConfig(min_scores=5, window=64)
        )
        result = _bounded_result(np.zeros((1, HORIZON, NODES)), 1.0, 4.0)
        calibrator.uses_native(result)
        rng = np.random.default_rng(0)
        for _ in range(30):
            for h in range(HORIZON):
                calibrator.update(h, rng.normal(size=6), miscoverage=0.1)
        calibrator.save(tmp_path / "aci")
        restored = AdaptiveConformalCalibrator.load(tmp_path / "aci")
        assert restored.uses_native()
        np.testing.assert_array_equal(restored.margins(), calibrator.margins())
        np.testing.assert_array_equal(restored.alpha_t, calibrator.alpha_t)

    def test_unlatched_auto_round_trips_as_unlatched(self, tmp_path):
        calibrator = AdaptiveConformalCalibrator(HORIZON)
        calibrator.save(tmp_path / "aci")
        restored = AdaptiveConformalCalibrator.load(tmp_path / "aci")
        assert restored._native is None

    def test_pre_native_checkpoint_with_warm_buffers_latches_scaled(self):
        """A checkpoint written before native-bound support holds scaled
        multiplier scores; restoring must never re-latch them as native
        (they would be misread as additive data-unit margins)."""
        calibrator = AdaptiveConformalCalibrator(
            HORIZON, config=ACIConfig(min_scores=5, mode="rolling")
        )
        for _ in range(20):
            for h in range(HORIZON):
                calibrator.update(h, np.full(4, 2.0))
        state = calibrator.get_state()
        # emulate the pre-PR5 writer: no latch, no interval_mode knob
        del state["meta"]["native"]
        del state["meta"]["config"]["interval_mode"]
        restored = AdaptiveConformalCalibrator(HORIZON).set_state(state)
        assert restored._native is False
        # a native-bounds result arriving post-restore stays on the scaled path
        result = _bounded_result(np.zeros((1, HORIZON, NODES)), 1.0, 4.0)
        assert not restored.uses_native(result)
        lower, upper = restored.intervals(result)
        np.testing.assert_allclose(
            (upper - lower) / 2.0,
            restored.quantiles().reshape(1, -1, 1) * restored._scale(result),
        )

    def test_pre_native_checkpoint_with_fresh_buffers_stays_auto(self):
        calibrator = AdaptiveConformalCalibrator(HORIZON)
        state = calibrator.get_state()
        del state["meta"]["native"]
        del state["meta"]["config"]["interval_mode"]
        restored = AdaptiveConformalCalibrator(HORIZON).set_state(state)
        assert restored._native is None


class _AsymmetricPredictor:
    """Quantile-style predictor: interval skewed above the point forecast."""

    def __init__(self, below=1.0, above=4.0):
        self.below, self.above = float(below), float(above)

    def predict(self, windows):
        mean = np.repeat(windows[:, -1:, :], HORIZON, axis=1)
        return _bounded_result(mean, self.below, self.above)


class TestRunnerIntegration:
    def test_streaming_loop_keeps_asymmetric_intervals(self):
        rng = np.random.default_rng(3)
        runner = StreamingForecaster(
            _AsymmetricPredictor(),
            history=4,
            horizon=HORIZON,
            aci={"window": 500, "min_scores": 20},
            detectors=[],
        )
        x = np.zeros(NODES)
        result = None
        for _ in range(300):
            x = x + rng.normal(0.0, 0.5, NODES)
            result = runner.observe(x + rng.gamma(2.0, 1.5, NODES))
        assert runner.calibrator.uses_native()
        lower_offset = result.prediction.mean[0] - result.lower
        upper_offset = result.upper - result.prediction.mean[0]
        # native skew (1 below vs 4 above) survives online calibration
        assert np.all(upper_offset - lower_offset > 2.9)
        # and the gamma-noise stream is covered at roughly the nominal rate
        assert runner.monitor.coverage == pytest.approx(95.0, abs=3.0)

    def test_native_latched_calibrator_handles_gaussian_results(self):
        """A bound-less model on a native-latched stream (e.g. a refit
        candidate of a different family) gets synthesized Gaussian reference
        bounds — never degenerate intervals from unit-mixed margins."""
        calibrator = AdaptiveConformalCalibrator(
            HORIZON, config=ACIConfig(min_scores=5, mode="rolling")
        )
        native = _bounded_result(np.zeros((1, HORIZON, NODES)), 5.0, 5.0)
        calibrator.uses_native(native)
        # over-wide native bounds drive the margins strongly negative
        for _ in range(50):
            for h in range(HORIZON):
                calibrator.update(h, np.full(8, -4.0))
        assert np.all(calibrator.margins() < 0)
        gaussian = _plain_result(np.zeros((1, HORIZON, NODES)), sigma=1.0)
        lower, upper = calibrator.intervals(gaussian)
        assert np.all(lower <= upper)
        calibrated = calibrator.calibrate(gaussian)
        assert calibrated.has_native_bounds
        assert np.all(calibrated.upper >= calibrated.lower)

    def test_mixed_mode_stream_keeps_consistent_scores(self):
        """Scoring stays in bound space when a symmetric model serves a
        native-latched stream (entries get synthesized reference bounds)."""
        from repro.streaming import StreamCore

        core = StreamCore(4, HORIZON, aci={"min_scores": 20, "window": 200})
        rng = np.random.default_rng(0)

        class Native(_AsymmetricPredictor):
            pass

        class Gaussian:
            def predict(self, windows):
                mean = np.repeat(windows[:, -1:, :], HORIZON, axis=1)
                return _plain_result(mean, sigma=2.0)

        native, gaussian = Native(), Gaussian()
        x = np.zeros(NODES)
        for t in range(120):
            x = x + rng.normal(0.0, 0.5, NODES)
            core.ingest(x + rng.normal(0.0, 2.0, NODES))
            window = core.window()
            if window is not None:
                model = native if t < 60 else gaussian  # family swap mid-stream
                _, lower, upper = core.record(model.predict(window))
                assert np.all(lower <= upper)
            core.advance()
        assert core.calibrator.uses_native()

    def test_per_horizon_margins_adapt_independently(self):
        calibrator = AdaptiveConformalCalibrator(
            2, config=ACIConfig(min_scores=5, mode="rolling")
        )
        result = _bounded_result(np.zeros((1, 2, NODES)), 1.0, 1.0)
        calibrator.uses_native(result)
        for _ in range(40):
            calibrator.update(0, np.full(4, 1.0))
            calibrator.update(1, np.full(4, 3.0))
        margins = calibrator.margins()
        assert margins[0] == pytest.approx(1.0)
        assert margins[1] == pytest.approx(3.0)
