"""Monitor / event-log persistence: streaming state survives restarts."""

import numpy as np
import pytest

from repro.streaming import (
    CoverageBreachDetector,
    EventLog,
    PersistenceForecaster,
    RollingStat,
    StreamingForecaster,
    StreamingMonitor,
)


def _drifting_stream(nodes=4, quiet=60, loud=60, seed=7):
    rng = np.random.default_rng(seed)
    calm = 50.0 + rng.normal(size=(quiet, nodes))
    wild = 50.0 + rng.normal(size=(loud, nodes)) * 25.0
    return np.concatenate([calm, wild], axis=0)


class TestRollingStatState:
    def test_round_trip_is_bit_identical(self, rng):
        stat = RollingStat(window=16)
        for value in rng.normal(size=40):
            stat.push(float(value))
        restored = RollingStat(window=16).set_state(stat.get_state())
        assert restored.mean == stat.mean
        assert restored.count == stat.count
        np.testing.assert_array_equal(restored.values(), stat.values())
        # Pushing the same value into both keeps them in lockstep (cursor and
        # running sum restored exactly, not just the visible window).
        stat.push(3.25)
        restored.push(3.25)
        assert restored.mean == stat.mean

    def test_rejects_mismatched_window(self):
        stat = RollingStat(window=8)
        with pytest.raises(ValueError, match="window"):
            RollingStat(window=4).set_state(stat.get_state())


class TestMonitorState:
    def test_round_trip_is_bit_identical(self, rng):
        monitor = StreamingMonitor(window=32, significance=0.1)
        for _ in range(50):
            target = rng.normal(size=(3, 4))
            mean = target + rng.normal(size=(3, 4)) * 0.3
            lower, upper = mean - 1.0, mean + 1.0
            monitor.update(target, mean, lower, upper)
        restored = StreamingMonitor(window=32).set_state(monitor.get_state())
        assert restored.snapshot() == monitor.snapshot()

    def test_kind_and_window_validated(self):
        monitor = StreamingMonitor(window=16)
        with pytest.raises(ValueError, match="window"):
            StreamingMonitor(window=8).set_state(monitor.get_state())
        with pytest.raises(ValueError, match="monitor"):
            StreamingMonitor(window=16).set_state(
                {"meta": {"kind": "aci"}, "arrays": {}}
            )


class TestEventLogRecords:
    def test_round_trip_preserves_every_event(self):
        from repro.streaming.drift import DriftEvent

        log = EventLog()
        log.append(DriftEvent("coverage_breach", 12, 0.81, 0.9, "breach"))
        log.append(DriftEvent("model_swapped", 40, 1.0, 0.0, "v0 -> v1"))
        restored = EventLog.from_records(log.to_records())
        assert list(restored) == list(log)


class TestRunnerPersistence:
    def _runner(self, server=None):
        return StreamingForecaster(
            PersistenceForecaster(horizon=2, sigma=1.0),
            history=3,
            horizon=2,
            detectors=[
                CoverageBreachDetector(
                    nominal=0.95, tolerance=0.05, window=20, patience=5, warmup=10
                )
            ],
            aci={"mode": "static", "window": 60, "min_scores": 10},
            cooldown=10_000,
            background_refit=False,
            server=server,
        )

    def test_monitor_and_event_log_survive_save_load(self, tmp_path):
        runner = self._runner()
        for row in _drifting_stream():
            runner.observe(row)
        assert len(runner.event_log) > 0  # the drift actually fired
        before = runner.monitor.snapshot()

        runner.save(tmp_path / "ckpt")
        restored = StreamingForecaster.load(
            tmp_path / "ckpt",
            forecaster=PersistenceForecaster(horizon=2, sigma=1.0),
            history=3,
        )

        # Bit-identical monitor snapshot, not merely approximately equal.
        assert restored.monitor.snapshot() == before
        assert list(restored.event_log) == list(runner.event_log)
        assert restored.step == runner.step
        assert restored._last_trigger == runner._last_trigger
        assert restored._refit_count == runner._refit_count

    def test_restored_monitor_keeps_rolling_from_where_it_stopped(self, tmp_path):
        stream = _drifting_stream()
        runner = self._runner()
        for row in stream[:80]:
            runner.observe(row)
        runner.save(tmp_path / "ckpt")
        restored = StreamingForecaster.load(
            tmp_path / "ckpt",
            forecaster=PersistenceForecaster(horizon=2, sigma=1.0),
            history=3,
        )
        # The restored runner needs no warm-up: its very first snapshot shows
        # the pre-restart rolling window instead of NaN-empty metrics.
        assert np.isfinite(restored.monitor.snapshot()["mae"])

    def test_old_checkpoints_without_stream_state_still_load(self, tmp_path):
        runner = self._runner()
        for row in _drifting_stream()[:40]:
            runner.observe(row)
        directory = runner.save(tmp_path / "ckpt")
        # Simulate a pre-runner-state checkpoint: drop the stream subdir.
        import shutil

        shutil.rmtree(directory / StreamingForecaster.STREAM_SUBDIR)
        restored = StreamingForecaster.load(
            directory,
            forecaster=PersistenceForecaster(horizon=2, sigma=1.0),
            history=3,
        )
        assert restored.step == 0
        assert len(restored.event_log) == 0
