"""Tests for point and uncertainty metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    coverage_width_criterion,
    interval_bounds,
    mae,
    mape,
    mnll,
    mpiw,
    per_horizon_metrics,
    per_horizon_uncertainty,
    picp,
    point_metrics,
    rmse,
    uncertainty_metrics,
    winkler_score,
)


class TestPointMetrics:
    def test_mae_known_value(self):
        assert mae(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(1.5)

    def test_rmse_known_value(self):
        assert rmse(np.array([3.0, 0.0]), np.array([0.0, 0.0])) == pytest.approx(np.sqrt(4.5))

    def test_mape_known_value(self):
        assert mape(np.array([110.0, 90.0]), np.array([100.0, 100.0])) == pytest.approx(10.0)

    def test_mape_masks_small_targets(self):
        value = mape(np.array([5.0, 110.0]), np.array([0.5, 100.0]), epsilon=10.0)
        assert value == pytest.approx(10.0)

    def test_mape_all_masked_is_nan(self):
        assert np.isnan(mape(np.array([1.0]), np.array([0.0])))

    def test_perfect_prediction(self):
        target = np.random.default_rng(0).uniform(50, 100, size=(10, 5))
        assert mae(target, target) == 0.0
        assert rmse(target, target) == 0.0
        assert mape(target, target) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mae(np.ones(3), np.ones(4))

    def test_rmse_upper_bounds_mae(self):
        rng = np.random.default_rng(1)
        prediction = rng.normal(size=100)
        target = rng.normal(size=100)
        assert rmse(prediction, target) >= mae(prediction, target)

    def test_point_metrics_bundle(self):
        metrics = point_metrics(np.array([110.0]), np.array([100.0]))
        assert set(metrics) == {"MAE", "RMSE", "MAPE"}

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_mae_shift_invariance(self, shift):
        rng = np.random.default_rng(0)
        prediction = rng.uniform(50, 150, size=50)
        target = rng.uniform(50, 150, size=50)
        assert mae(prediction + shift, target + shift) == pytest.approx(mae(prediction, target))


class TestIntervalMetrics:
    def test_interval_bounds_95(self):
        lower, upper = interval_bounds(np.array([10.0]), np.array([2.0]))
        assert lower[0] == pytest.approx(10.0 - 1.96 * 2.0, abs=1e-2)
        assert upper[0] == pytest.approx(10.0 + 1.96 * 2.0, abs=1e-2)

    def test_interval_bounds_invalid_significance(self):
        with pytest.raises(ValueError):
            interval_bounds(np.array([0.0]), np.array([1.0]), significance=1.5)

    def test_interval_bounds_negative_std(self):
        with pytest.raises(ValueError):
            interval_bounds(np.array([0.0]), np.array([-1.0]))

    def test_picp_counts_coverage(self):
        target = np.array([1.0, 5.0, 10.0, 20.0])
        lower = np.array([0.0, 6.0, 9.0, 19.0])
        upper = np.array([2.0, 7.0, 11.0, 21.0])
        assert picp(target, lower, upper) == pytest.approx(75.0)

    def test_mpiw(self):
        assert mpiw(np.array([0.0, 1.0]), np.array([2.0, 5.0])) == pytest.approx(3.0)

    def test_mpiw_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            mpiw(np.array([2.0]), np.array([1.0]))

    def test_mnll_standard_normal(self):
        value = mnll(np.array([0.0]), np.array([0.0]), np.array([1.0]))
        assert value == pytest.approx(0.5 * np.log(2 * np.pi))

    def test_mnll_penalizes_overconfidence(self):
        target = np.array([5.0])
        mean = np.array([0.0])
        confident = mnll(target, mean, np.array([0.1]))
        honest = mnll(target, mean, np.array([25.0]))
        assert confident > honest

    def test_winkler_penalizes_misses(self):
        target = np.array([10.0])
        inside = winkler_score(target, np.array([8.0]), np.array([12.0]))
        missed = winkler_score(target, np.array([11.0]), np.array([12.0]))
        assert missed > inside

    def test_coverage_width_criterion_penalty(self):
        target = np.linspace(0, 10, 100)
        tight_missing = coverage_width_criterion(target, target + 0.5, target + 1.0)
        wide_covering = coverage_width_criterion(target, target - 5.0, target + 5.0)
        assert tight_missing > 0
        assert wide_covering == pytest.approx(10.0)

    def test_uncertainty_metrics_gaussian(self):
        rng = np.random.default_rng(0)
        mean = rng.uniform(100, 200, size=2000)
        std = np.full_like(mean, 10.0)
        target = mean + rng.normal(scale=10.0, size=mean.shape)
        metrics = uncertainty_metrics(target, mean, std)
        assert metrics["PICP"] == pytest.approx(95.0, abs=2.0)
        assert metrics["MPIW"] == pytest.approx(2 * 1.96 * 10.0, rel=0.01)
        assert metrics["MNLL"] == pytest.approx(
            0.5 * np.log(2 * np.pi * 100.0) + 0.5, rel=0.05
        )

    def test_uncertainty_metrics_with_explicit_bounds(self):
        target = np.array([1.0, 2.0])
        mean = np.array([1.0, 2.0])
        std = np.zeros(2)
        metrics = uncertainty_metrics(target, mean, std, lower=mean - 1, upper=mean + 1)
        assert metrics["PICP"] == 100.0
        assert np.isnan(metrics["MNLL"])

    @given(st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=25, deadline=None)
    def test_coverage_monotone_in_std(self, scale):
        """Wider Gaussian intervals can only increase coverage."""
        rng = np.random.default_rng(3)
        mean = np.zeros(500)
        target = rng.normal(scale=5.0, size=500)
        narrow = picp(target, *interval_bounds(mean, np.full(500, scale)))
        wide = picp(target, *interval_bounds(mean, np.full(500, scale * 2.0)))
        assert wide >= narrow


class TestHorizonMetrics:
    def _arrays(self):
        rng = np.random.default_rng(0)
        target = rng.uniform(100, 200, size=(50, 6, 4))
        noise = rng.normal(size=(50, 6, 4)) * np.arange(1, 7).reshape(1, 6, 1)
        return target + noise, target

    def test_per_horizon_metrics_keys_and_length(self):
        prediction, target = self._arrays()
        curves = per_horizon_metrics(prediction, target)
        assert curves["horizon_minutes"] == [5, 10, 15, 20, 25, 30]
        assert len(curves["MAE"]) == 6

    def test_error_grows_with_horizon(self):
        prediction, target = self._arrays()
        curves = per_horizon_metrics(prediction, target)
        assert curves["MAE"][-1] > curves["MAE"][0]
        assert curves["RMSE"][-1] > curves["RMSE"][0]

    def test_per_horizon_shape_validation(self):
        with pytest.raises(ValueError):
            per_horizon_metrics(np.ones((3, 4)), np.ones((3, 4)))
        with pytest.raises(ValueError):
            per_horizon_metrics(np.ones((3, 4, 2)), np.ones((3, 5, 2)))

    def test_per_horizon_uncertainty(self):
        aleatoric = np.ones((10, 4, 3)) * np.arange(1, 5).reshape(1, 4, 1)
        epistemic = 0.5 * aleatoric
        curves = per_horizon_uncertainty(aleatoric, epistemic)
        assert curves["aleatoric"] == pytest.approx([1.0, 2.0, 3.0, 4.0])
        assert curves["epistemic"] == pytest.approx([0.5, 1.0, 1.5, 2.0])

    def test_per_horizon_uncertainty_shape_mismatch(self):
        with pytest.raises(ValueError):
            per_horizon_uncertainty(np.ones((5, 3, 2)), np.ones((5, 4, 2)))
