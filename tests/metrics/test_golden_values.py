"""Golden-value regression tests for ``repro.metrics``.

Every expected number below is computed *by hand* from the metric definition
(paper Eqs. 20-26) on tiny fixtures, so a serving/engine refactor that
silently shifts any reported metric fails loudly here.
"""

import numpy as np
import pytest

from repro.metrics import (
    Z_95,
    coverage_width_criterion,
    interval_bounds,
    mae,
    mape,
    mnll,
    mpiw,
    norm_ppf,
    per_horizon_metrics,
    per_horizon_uncertainty,
    picp,
    point_metrics,
    rmse,
    winkler_score,
)


class TestNormPpfGoldens:
    """Pin the pure-NumPy inverse normal against ``scipy.stats.norm.ppf``.

    The expected values below were produced by scipy 1.x on this container
    before the scipy import was removed from the serving hot path; the new
    Acklam + Halley implementation must keep reproducing them.
    """

    # (p, scipy.stats.norm.ppf(p)) pairs, recorded verbatim.
    SCIPY_GOLDENS = [
        (0.001, -3.090232306167813),
        (0.01, -2.3263478740408408),
        (0.025, -1.9599639845400545),
        (0.05, -1.6448536269514729),
        (0.1, -1.2815515655446004),
        (0.25, -0.6744897501960817),
        (0.5, 0.0),
        (0.75, 0.6744897501960817),
        (0.9, 1.2815515655446004),
        (0.95, 1.6448536269514722),
        (0.975, 1.959963984540054),
        (0.99, 2.3263478740408408),
        (0.995, 2.5758293035489004),
        (0.999, 3.090232306167813),
    ]

    def test_matches_scipy_goldens(self):
        for p, expected in self.SCIPY_GOLDENS:
            assert norm_ppf(p) == pytest.approx(expected, abs=1e-12), p

    def test_vectorized_matches_scalar(self):
        ps = np.array([p for p, _ in self.SCIPY_GOLDENS])
        expected = np.array([z for _, z in self.SCIPY_GOLDENS])
        np.testing.assert_allclose(norm_ppf(ps), expected, atol=1e-12)
        assert norm_ppf(ps.reshape(2, 7)).shape == (2, 7)

    def test_deep_tails(self):
        # scipy.stats.norm.ppf(1e-9) / (1 - 1e-9), recorded verbatim.
        assert norm_ppf(1e-9) == pytest.approx(-5.9978070150076865, abs=1e-12)
        assert norm_ppf(1.0 - 1e-9) == pytest.approx(5.997807019601637, abs=1e-11)

    def test_symmetry(self):
        for p, _ in self.SCIPY_GOLDENS:
            assert norm_ppf(p) == pytest.approx(-norm_ppf(1.0 - p), abs=1e-12)

    def test_z95_constant_reproduced(self):
        assert norm_ppf(0.975) == pytest.approx(Z_95, abs=1e-12)

    def test_rejects_out_of_range(self):
        for bad in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                norm_ppf(bad)
        with pytest.raises(ValueError):
            norm_ppf(np.array([0.5, 1.0]))

    def test_interval_bounds_no_scipy_on_hot_path(self):
        """The serving hot path must not import scipy anymore."""
        import ast
        import inspect

        import repro.metrics.uncertainty as module

        tree = ast.parse(inspect.getsource(module))
        imported = [
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.Import, ast.ImportFrom))
            and "scipy" in ast.dump(node)
        ]
        assert imported == []


class TestPointGoldens:
    # prediction errors: +1, -2, +3  -> |e| = 1, 2, 3
    PRED = np.array([21.0, 38.0, 53.0])
    TARGET = np.array([20.0, 40.0, 50.0])

    def test_mae(self):
        # (1 + 2 + 3) / 3 = 2
        assert mae(self.PRED, self.TARGET) == pytest.approx(2.0, abs=1e-12)

    def test_rmse(self):
        # sqrt((1 + 4 + 9) / 3) = sqrt(14/3)
        assert rmse(self.PRED, self.TARGET) == pytest.approx(np.sqrt(14.0 / 3.0), abs=1e-12)

    def test_mape(self):
        # (1/20 + 2/40 + 3/50) / 3 * 100 = (0.05 + 0.05 + 0.06) / 3 * 100
        assert mape(self.PRED, self.TARGET) == pytest.approx(16.0 / 3.0, abs=1e-12)

    def test_mape_masks_near_zero_targets(self):
        pred = np.array([1.0, 21.0])
        target = np.array([0.5, 20.0])  # 0.5 < epsilon=10 -> masked out
        assert mape(pred, target) == pytest.approx(5.0, abs=1e-12)

    def test_mape_all_masked_is_nan(self):
        assert np.isnan(mape(np.array([1.0]), np.array([2.0])))

    def test_point_metrics_bundle(self):
        bundle = point_metrics(self.PRED, self.TARGET)
        assert bundle["MAE"] == pytest.approx(2.0, abs=1e-12)
        assert bundle["RMSE"] == pytest.approx(np.sqrt(14.0 / 3.0), abs=1e-12)
        assert bundle["MAPE"] == pytest.approx(16.0 / 3.0, abs=1e-12)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mae(np.zeros(3), np.zeros(4))


class TestIntervalGoldens:
    def test_picp_half_covered(self):
        target = np.array([1.0, 5.0, 10.0, 20.0])
        lower = np.array([0.0, 6.0, 9.0, 21.0])
        upper = np.array([2.0, 7.0, 11.0, 22.0])
        # covered: yes, no, yes, no -> 50%
        assert picp(target, lower, upper) == pytest.approx(50.0, abs=1e-12)

    def test_picp_boundary_counts_as_covered(self):
        assert picp(np.array([1.0]), np.array([1.0]), np.array([2.0])) == pytest.approx(100.0)

    def test_mpiw(self):
        lower = np.array([0.0, 2.0])
        upper = np.array([4.0, 8.0])
        # widths 4 and 6 -> mean 5
        assert mpiw(lower, upper) == pytest.approx(5.0, abs=1e-12)

    def test_mpiw_rejects_crossed_bounds(self):
        with pytest.raises(ValueError):
            mpiw(np.array([1.0]), np.array([0.0]))

    def test_mnll_standard_normal(self):
        # target == mean, variance 1 -> NLL = 0.5 * log(2*pi)
        value = mnll(np.array([0.0]), np.array([0.0]), np.array([1.0]))
        assert value == pytest.approx(0.5 * np.log(2.0 * np.pi), abs=1e-12)

    def test_mnll_with_error(self):
        # variance 4, error 2: 0.5 * (log(8*pi) + 4/4)
        value = mnll(np.array([2.0]), np.array([0.0]), np.array([4.0]))
        assert value == pytest.approx(0.5 * (np.log(8.0 * np.pi) + 1.0), abs=1e-12)

    def test_interval_bounds_95(self):
        lower, upper = interval_bounds(np.array([10.0]), np.array([2.0]), significance=0.05)
        z = 1.959963984540054
        assert lower[0] == pytest.approx(10.0 - 2.0 * z, abs=1e-9)
        assert upper[0] == pytest.approx(10.0 + 2.0 * z, abs=1e-9)

    def test_winkler_inside_is_width(self):
        # Covered target: score is just the width.
        value = winkler_score(np.array([1.0]), np.array([0.0]), np.array([2.0]))
        assert value == pytest.approx(2.0, abs=1e-12)

    def test_winkler_miss_penalty(self):
        # Target 3 above the upper bound: width + (2/0.05) * 1 = 2 + 40
        value = winkler_score(np.array([3.0]), np.array([0.0]), np.array([2.0]))
        assert value == pytest.approx(42.0, abs=1e-12)

    def test_cwc_no_penalty_at_full_coverage(self):
        value = coverage_width_criterion(np.array([1.0]), np.array([0.0]), np.array([2.0]))
        assert value == pytest.approx(2.0, abs=1e-12)


class TestHorizonGoldens:
    def test_per_horizon_metrics_hand_computed(self):
        # (samples=2, horizon=2, nodes=1); per-step errors chosen by hand.
        prediction = np.array([[[21.0], [42.0]], [[19.0], [38.0]]])
        target = np.array([[[20.0], [40.0]], [[20.0], [40.0]]])
        curves = per_horizon_metrics(prediction, target, interval_minutes=5)
        assert curves["horizon_minutes"] == [5, 10]
        # step 0 errors: +1, -1 -> MAE 1, RMSE 1; step 1 errors: +2, -2 -> MAE 2, RMSE 2
        assert curves["MAE"] == pytest.approx([1.0, 2.0], abs=1e-12)
        assert curves["RMSE"] == pytest.approx([1.0, 2.0], abs=1e-12)
        # MAPE: step 0 = (1/20 + 1/20)/2 * 100 = 5%; step 1 = (2/40 + 2/40)/2 * 100 = 5%
        assert curves["MAPE"] == pytest.approx([5.0, 5.0], abs=1e-12)

    def test_per_horizon_uncertainty_hand_computed(self):
        aleatoric = np.array([[[1.0], [3.0]], [[2.0], [5.0]]])
        epistemic = np.array([[[0.5], [1.0]], [[1.5], [3.0]]])
        curves = per_horizon_uncertainty(aleatoric, epistemic, interval_minutes=5)
        assert curves["aleatoric"] == pytest.approx([1.5, 4.0], abs=1e-12)
        assert curves["epistemic"] == pytest.approx([1.0, 2.0], abs=1e-12)

    def test_horizon_validation(self):
        with pytest.raises(ValueError):
            per_horizon_metrics(np.zeros((2, 2)), np.zeros((2, 2)))
