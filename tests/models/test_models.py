"""Tests for the forecasting models (AGCRN and the Table III baselines)."""

import numpy as np
import pytest

from repro import models
from repro.graph import grid_network
from repro.models import (
    AGCRN,
    ASTGCN,
    DCRNN,
    STFGNN,
    STGCN,
    STSGCN,
    GraphWaveNet,
    HistoricalAverage,
    LastValue,
)
from repro.models.stfgnn import temporal_similarity_graph
from repro.models.stsgcn import build_localized_st_adjacency
from repro.tensor import Tensor
from repro.tensor import functional as F
from repro import optim

NUM_NODES = 9
HISTORY = 6
HORIZON = 4
BATCH = 5


@pytest.fixture(scope="module")
def network():
    return grid_network(3, 3)


@pytest.fixture(scope="module")
def adjacency(network):
    return network.adjacency_matrix()


@pytest.fixture
def batch(rng):
    x = rng.uniform(50.0, 250.0, size=(BATCH, HISTORY, NUM_NODES))
    y = rng.uniform(50.0, 250.0, size=(BATCH, HORIZON, NUM_NODES))
    return x, y


def _model_zoo(adjacency):
    rng = np.random.default_rng(0)
    kwargs = dict(history=HISTORY, horizon=HORIZON, rng=rng)
    return {
        "DCRNN": DCRNN(NUM_NODES, adjacency, hidden_dim=8, **kwargs),
        "STGCN": STGCN(NUM_NODES, adjacency, hidden_channels=4, **kwargs),
        "GWN": GraphWaveNet(NUM_NODES, adjacency, channels=4, num_layers=2, embed_dim=4, **kwargs),
        "ASTGCN": ASTGCN(NUM_NODES, adjacency, hidden_channels=4, **kwargs),
        "STSGCN": STSGCN(NUM_NODES, adjacency, hidden_channels=4, **kwargs),
        "STFGNN": STFGNN(NUM_NODES, adjacency, hidden_channels=4, **kwargs),
        "AGCRN": AGCRN(NUM_NODES, hidden_dim=8, embed_dim=4, heads=("mean",), **kwargs),
    }


class TestBaselineForwardShapes:
    @pytest.mark.parametrize(
        "name", ["DCRNN", "STGCN", "GWN", "ASTGCN", "STSGCN", "STFGNN", "AGCRN"]
    )
    def test_forward_shape(self, name, adjacency, batch):
        model = _model_zoo(adjacency)[name]
        x, _ = batch
        out = model(Tensor(x))
        assert out.shape == (BATCH, HORIZON, NUM_NODES)

    @pytest.mark.parametrize("name", ["DCRNN", "STGCN", "AGCRN"])
    def test_one_training_step_reduces_loss(self, name, adjacency, batch):
        model = _model_zoo(adjacency)[name]
        x, y = batch
        x_t, y_t = Tensor(x / 100.0), Tensor(y / 100.0)
        opt = optim.Adam(model.parameters(), lr=0.01)
        initial = F.mse_loss(model(x_t), y_t).item()
        for _ in range(8):
            opt.zero_grad()
            loss = F.mse_loss(model(x_t), y_t)
            loss.backward()
            opt.step()
        assert loss.item() < initial

    def test_predict_returns_numpy(self, adjacency, batch):
        model = _model_zoo(adjacency)["DCRNN"]
        x, _ = batch
        prediction = model.predict(x)
        assert isinstance(prediction, np.ndarray)
        assert prediction.shape == (BATCH, HORIZON, NUM_NODES)

    def test_input_validation(self, adjacency):
        model = _model_zoo(adjacency)["STGCN"]
        with pytest.raises(ValueError):
            model(Tensor(np.ones((2, HISTORY + 1, NUM_NODES))))
        with pytest.raises(ValueError):
            model(Tensor(np.ones((HISTORY, NUM_NODES))))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            AGCRN(0, history=HISTORY, horizon=HORIZON)
        with pytest.raises(ValueError):
            AGCRN(NUM_NODES, history=HISTORY, horizon=HORIZON, num_layers=0)


class TestNaiveBaselines:
    def test_last_value(self, batch):
        x, _ = batch
        model = LastValue(NUM_NODES, HISTORY, HORIZON)
        out = model.predict(x)
        assert np.allclose(out, np.repeat(x[:, -1:, :], HORIZON, axis=1))

    def test_historical_average(self, batch):
        x, _ = batch
        model = HistoricalAverage(NUM_NODES, HISTORY, HORIZON)
        out = model.predict(x)
        assert np.allclose(out, np.repeat(x.mean(axis=1, keepdims=True), HORIZON, axis=1))

    def test_no_parameters(self):
        assert LastValue(NUM_NODES, HISTORY, HORIZON).num_parameters() == 0


class TestAGCRN:
    def _model(self, heads=("mean", "log_var"), **overrides):
        params = dict(
            num_nodes=NUM_NODES,
            history=HISTORY,
            horizon=HORIZON,
            hidden_dim=8,
            embed_dim=4,
            heads=heads,
            rng=np.random.default_rng(0),
        )
        params.update(overrides)
        return AGCRN(**params)

    def test_probabilistic_heads(self, batch):
        x, _ = batch
        model = self._model()
        out = model(Tensor(x))
        assert set(out.keys()) == {"mean", "log_var"}
        assert out["mean"].shape == (BATCH, HORIZON, NUM_NODES)
        assert out["log_var"].shape == (BATCH, HORIZON, NUM_NODES)

    def test_single_head_returns_tensor(self, batch):
        x, _ = batch
        out = self._model(heads=("mean",))(Tensor(x))
        assert isinstance(out, Tensor)

    def test_quantile_heads(self, batch):
        x, _ = batch
        out = self._model(heads=("lower", "mean", "upper"))(Tensor(x))
        assert set(out.keys()) == {"lower", "mean", "upper"}

    def test_duplicate_heads_rejected(self):
        with pytest.raises(ValueError):
            self._model(heads=("mean", "mean"))

    def test_empty_heads_rejected(self):
        with pytest.raises(ValueError):
            self._model(heads=())

    def test_multi_layer(self, batch):
        x, _ = batch
        out = self._model(heads=("mean",), num_layers=2)(Tensor(x))
        assert out.shape == (BATCH, HORIZON, NUM_NODES)

    def test_mc_dropout_toggle_counts_layers(self):
        model = self._model()
        assert model.set_mc_dropout(True) == 2  # encoder + decoder dropout
        assert model.encoder_dropout.mc_active and model.decoder_dropout.mc_active
        model.set_mc_dropout(False)
        assert not model.encoder_dropout.mc_active

    def test_eval_forward_is_deterministic_without_mc(self, batch):
        x, _ = batch
        model = self._model()
        model.eval()
        a = model(Tensor(x))["mean"].numpy()
        b = model(Tensor(x))["mean"].numpy()
        assert np.allclose(a, b)

    def test_mc_dropout_forward_is_stochastic(self, batch):
        x, _ = batch
        model = self._model(encoder_dropout=0.3, decoder_dropout=0.3)
        model.eval()
        model.set_mc_dropout(True)
        a = model(Tensor(x))["mean"].numpy()
        b = model(Tensor(x))["mean"].numpy()
        assert not np.allclose(a, b)

    def test_reseed_dropout_reproducible(self, batch):
        x, _ = batch
        model = self._model(encoder_dropout=0.3, decoder_dropout=0.3)
        model.eval()
        model.set_mc_dropout(True)
        model.reseed_dropout(np.random.default_rng(42))
        a = model(Tensor(x))["mean"].numpy()
        model.reseed_dropout(np.random.default_rng(42))
        b = model(Tensor(x))["mean"].numpy()
        assert np.allclose(a, b)

    def test_learned_adjacency_is_stochastic_matrix(self):
        adjacency = self._model().learned_adjacency()
        assert adjacency.shape == (NUM_NODES, NUM_NODES)
        assert np.allclose(adjacency.sum(axis=1), 1.0)

    def test_gradients_flow_to_all_parameters(self, batch):
        x, y = batch
        model = self._model(heads=("mean",))
        out = model(Tensor(x / 100.0))
        F.mse_loss(out, Tensor(y / 100.0)).backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert not missing, f"parameters without gradient: {missing}"

    def test_predict_uses_mean_head(self, batch):
        x, _ = batch
        model = self._model()
        prediction = model.predict(x)
        assert prediction.shape == (BATCH, HORIZON, NUM_NODES)


class TestAuxiliaryGraphBuilders:
    def test_localized_st_adjacency_structure(self):
        adj = np.array([[0.0, 1.0], [1.0, 0.0]])
        localized = build_localized_st_adjacency(adj, num_slices=3)
        assert localized.shape == (6, 6)
        # Diagonal blocks carry the spatial graph.
        assert localized[0, 1] == 1.0
        # Off-diagonal blocks connect a node to itself in the next slice.
        assert localized[0, 2] == 1.0
        assert localized[2, 4] == 1.0
        assert localized[0, 4] == 0.0  # not two slices apart
        assert np.allclose(localized, localized.T)

    def test_localized_st_adjacency_invalid_slices(self):
        with pytest.raises(ValueError):
            build_localized_st_adjacency(np.eye(2), num_slices=1)

    def test_temporal_similarity_graph_topk(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=(500, 1))
        values = np.concatenate(
            [base, base * 2.0 + 0.01 * rng.normal(size=(500, 1)), rng.normal(size=(500, 2))], axis=1
        )
        graph = temporal_similarity_graph(values, top_k=1)
        assert graph.shape == (4, 4)
        assert graph[0, 1] == 1.0  # perfectly correlated pair is connected
        assert np.allclose(graph, graph.T)
        assert np.allclose(np.diag(graph), 0.0)

    def test_temporal_similarity_graph_validation(self):
        with pytest.raises(ValueError):
            temporal_similarity_graph(np.ones(5))

    def test_stfgnn_with_temporal_graph(self, adjacency, batch):
        x, _ = batch
        rng = np.random.default_rng(1)
        history_values = rng.normal(size=(200, NUM_NODES))
        temporal_graph = temporal_similarity_graph(history_values, top_k=2)
        model = STFGNN(
            NUM_NODES,
            adjacency,
            history=HISTORY,
            horizon=HORIZON,
            hidden_channels=4,
            temporal_graph=temporal_graph,
            rng=rng,
        )
        assert model(Tensor(x)).shape == (BATCH, HORIZON, NUM_NODES)

    def test_stfgnn_temporal_graph_shape_mismatch(self, adjacency):
        with pytest.raises(ValueError):
            STFGNN(NUM_NODES, adjacency, temporal_graph=np.eye(3))

    def test_stsgcn_invalid_window(self, adjacency):
        with pytest.raises(ValueError):
            STSGCN(NUM_NODES, adjacency, history=HISTORY, horizon=HORIZON, window=1)
