"""Tests for the backbone registry and the head adapter."""

import numpy as np
import pytest

from repro.core import TrainingConfig
from repro.graph import grid_network
from repro.models import (
    AGCRN,
    BACKBONE_INFO,
    HeadAdapter,
    available_backbones,
    backbone_info,
    create_backbone,
)

NUM_NODES = 9
CONFIG = TrainingConfig(history=4, horizon=2, hidden_dim=6, embed_dim=2, epochs=1)


@pytest.fixture(scope="module")
def adjacency():
    return grid_network(3, 3).adjacency_matrix()


class TestRegistry:
    def test_all_backbones_registered(self):
        expected = {
            "AGCRN", "DCRNN", "GWNet", "STGCN", "ASTGCN", "STSGCN", "STFGNN",
            "LastValue", "HistoricalAverage",
        }
        assert expected == set(available_backbones())

    def test_aliases_resolve(self):
        assert backbone_info("GWN").name == "GWNet"
        assert backbone_info("GraphWaveNet").name == "GWNet"

    def test_unknown_backbone(self):
        with pytest.raises(KeyError, match="unknown backbone"):
            backbone_info("Transformer")

    def test_requires_adjacency_matches_model_attribute(self):
        for name, info in BACKBONE_INFO.items():
            model = create_backbone(
                name, NUM_NODES, config=CONFIG,
                adjacency=np.eye(NUM_NODES) if info.requires_adjacency else None,
                rng=np.random.default_rng(0),
            )
            assert model.requires_adjacency == info.requires_adjacency, name

    def test_missing_adjacency_is_a_clear_error(self):
        with pytest.raises(ValueError, match="adjacency"):
            create_backbone("DCRNN", NUM_NODES, config=CONFIG)

    def test_only_agcrn_supports_native_heads(self):
        natives = [name for name, info in BACKBONE_INFO.items() if info.supports_heads]
        assert natives == ["AGCRN"]


class TestCreateBackbone:
    def test_agcrn_matches_direct_construction(self):
        """The registry path must be bit-identical to the historical direct call."""
        built = create_backbone(
            "AGCRN", NUM_NODES, config=CONFIG,
            heads=("mean", "log_var"), rng=np.random.default_rng(42),
        )
        direct = AGCRN(
            num_nodes=NUM_NODES, history=CONFIG.history, horizon=CONFIG.horizon,
            hidden_dim=CONFIG.hidden_dim, embed_dim=CONFIG.embed_dim,
            cheb_k=CONFIG.cheb_k, num_layers=CONFIG.num_layers,
            encoder_dropout=CONFIG.encoder_dropout, decoder_dropout=CONFIG.decoder_dropout,
            heads=("mean", "log_var"), rng=np.random.default_rng(42),
        )
        built_state, direct_state = built.state_dict(), direct.state_dict()
        assert set(built_state) == set(direct_state)
        for name in built_state:
            assert np.array_equal(built_state[name], direct_state[name]), name

    @pytest.mark.parametrize("name", sorted(BACKBONE_INFO))
    def test_every_backbone_forwards(self, name, adjacency):
        model = create_backbone(
            name, NUM_NODES, config=CONFIG, adjacency=adjacency,
            rng=np.random.default_rng(0),
        )
        output = model.predict(np.zeros((3, CONFIG.history, NUM_NODES)))
        assert output.shape == (3, CONFIG.horizon, NUM_NODES)

    @pytest.mark.parametrize("name", ["DCRNN", "STGCN", "LastValue"])
    def test_head_adapter_wraps_point_backbones(self, name, adjacency):
        model = create_backbone(
            name, NUM_NODES, config=CONFIG, heads=("mean", "log_var"),
            adjacency=adjacency, rng=np.random.default_rng(0),
        )
        assert isinstance(model, HeadAdapter)
        model.eval()
        output = model(np.zeros((2, CONFIG.history, NUM_NODES)))
        assert set(output) == {"mean", "log_var"}
        for head in output.values():
            assert head.shape == (2, CONFIG.horizon, NUM_NODES)

    def test_adapter_preserves_backbone_mean(self, adjacency):
        """The adapter's mean head is the wrapped backbone's forecast, untouched."""
        bare = create_backbone(
            "STGCN", NUM_NODES, config=CONFIG, adjacency=adjacency,
            rng=np.random.default_rng(3),
        )
        adapted = create_backbone(
            "STGCN", NUM_NODES, config=CONFIG, heads=("mean", "log_var"),
            adjacency=adjacency, rng=np.random.default_rng(3),
        )
        inputs = np.random.default_rng(9).normal(size=(4, CONFIG.history, NUM_NODES))
        assert np.array_equal(bare.predict(inputs), adapted.predict(inputs))

    def test_adapter_quantile_heads(self, adjacency):
        model = create_backbone(
            "GWNet", NUM_NODES, config=CONFIG, heads=("lower", "mean", "upper"),
            adjacency=adjacency, rng=np.random.default_rng(0),
        )
        model.eval()
        output = model(np.zeros((2, CONFIG.history, NUM_NODES)))
        assert set(output) == {"lower", "mean", "upper"}

    def test_adapter_rejects_headless_requests(self, adjacency):
        with pytest.raises(ValueError, match="mean"):
            HeadAdapter(
                create_backbone("STGCN", NUM_NODES, config=CONFIG, adjacency=adjacency),
                heads=("log_var",),
            )

    def test_backbone_kwargs_forwarded(self):
        model = create_backbone(
            "AGCRN", NUM_NODES, config=CONFIG, num_layers=2,
            rng=np.random.default_rng(0),
        )
        assert model.num_layers == 2
