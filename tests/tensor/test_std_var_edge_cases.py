"""Edge cases for Tensor.var / Tensor.std surfaced while vectorizing MC inference.

Zero-variance slices and single-sample (``N_MC = 1``) reductions must yield
finite zeros — never NaN — both in the forward values and in the gradients,
and ``PredictionResult.std`` must stay finite under the same conditions.
"""

import numpy as np
import pytest

from repro.core.inference import PredictionResult
from repro.tensor import Tensor, gradcheck


class TestVar:
    def test_matches_numpy_population(self, rng):
        data = rng.normal(size=(4, 5))
        assert np.allclose(Tensor(data).var(axis=0).numpy(), data.var(axis=0))

    def test_matches_numpy_ddof1(self, rng):
        data = rng.normal(size=(4, 5))
        assert np.allclose(Tensor(data).var(axis=0, ddof=1).numpy(), data.var(axis=0, ddof=1))

    def test_single_sample_ddof1_is_zero_not_nan(self):
        data = np.array([[1.5, -2.0, 3.0]])
        out = Tensor(data).var(axis=0, ddof=1).numpy()
        assert np.all(np.isfinite(out))
        assert np.allclose(out, 0.0)

    def test_single_sample_ddof1_gradient_is_zero(self):
        x = Tensor(np.array([[1.5, -2.0, 3.0]]), requires_grad=True)
        x.var(axis=0, ddof=1).sum().backward()
        assert np.allclose(x.grad, 0.0)

    def test_gradcheck_ddof1(self, rng):
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        assert gradcheck(lambda t: t.var(axis=0, ddof=1).sum(), [x])


class TestStd:
    def test_matches_numpy(self, rng):
        data = rng.normal(size=(6, 4))
        assert np.allclose(Tensor(data).std(axis=0).numpy(), data.std(axis=0))
        assert np.allclose(Tensor(data).std(axis=1, ddof=1).numpy(), data.std(axis=1, ddof=1))

    def test_zero_variance_is_zero_not_nan(self):
        constant = Tensor(np.full((4, 3), 7.0))
        out = constant.std(axis=0).numpy()
        assert np.all(np.isfinite(out))
        assert np.allclose(out, 0.0)

    def test_zero_variance_gradient_is_finite(self):
        x = Tensor(np.full((4, 3), 7.0), requires_grad=True)
        x.std(axis=0).sum().backward()
        assert np.all(np.isfinite(x.grad))
        assert np.allclose(x.grad, 0.0)

    def test_single_sample_ddof1_is_zero(self):
        x = Tensor(np.array([[2.0, 4.0]]))
        assert np.allclose(x.std(axis=0, ddof=1).numpy(), 0.0)

    def test_gradcheck_nondegenerate(self, rng):
        x = Tensor(rng.normal(size=(5,)) * 3.0, requires_grad=True)
        assert gradcheck(lambda t: t.std().sum(), [x])

    def test_keepdims(self, rng):
        data = rng.normal(size=(3, 4))
        assert Tensor(data).std(axis=1, keepdims=True).shape == (3, 1)


class TestPredictionResultStd:
    def test_zero_variance_result_is_finite(self):
        mean = np.zeros((2, 3, 4))
        result = PredictionResult(
            mean=mean, aleatoric_var=np.zeros_like(mean), epistemic_var=np.zeros_like(mean)
        )
        assert np.all(np.isfinite(result.std))
        assert np.allclose(result.std, 0.0)

    def test_tiny_negative_variance_clipped(self):
        # Float cancellation in the fused reductions can produce -1e-30-ish
        # variances; std must clip them instead of propagating NaN.
        mean = np.zeros((1, 2, 2))
        result = PredictionResult(
            mean=mean,
            aleatoric_var=np.full_like(mean, -1e-30),
            epistemic_var=np.zeros_like(mean),
        )
        assert np.all(np.isfinite(result.std))
        assert np.allclose(result.std, 0.0)

    def test_getitem_and_concatenate_roundtrip(self):
        mean = np.arange(24, dtype=np.float64).reshape(4, 3, 2)
        result = PredictionResult(
            mean=mean, aleatoric_var=mean + 1.0, epistemic_var=mean + 2.0
        )
        parts = [result[i] for i in range(result.num_windows)]
        assert all(p.mean.shape == (1, 3, 2) for p in parts)
        rebuilt = PredictionResult.concatenate(parts)
        assert np.array_equal(rebuilt.mean, result.mean)
        assert np.array_equal(rebuilt.aleatoric_var, result.aleatoric_var)
        assert np.array_equal(rebuilt.epistemic_var, result.epistemic_var)

    def test_concatenate_empty_raises(self):
        with pytest.raises(ValueError):
            PredictionResult.concatenate([])
