"""Unit tests for elementwise and arithmetic operations of the Tensor engine."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad
from repro.tensor import functional as F


class TestBasicArithmetic:
    def test_add_forward(self):
        a = Tensor([1.0, 2.0, 3.0])
        b = Tensor([4.0, 5.0, 6.0])
        assert np.allclose((a + b).numpy(), [5.0, 7.0, 9.0])

    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_add_scalar(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = (a + 5.0).sum()
        out.backward()
        assert np.allclose(out.item(), 13.0)
        assert np.allclose(a.grad, [1.0, 1.0])

    def test_radd(self):
        a = Tensor([1.0, 2.0])
        assert np.allclose((3.0 + a).numpy(), [4.0, 5.0])

    def test_sub_backward(self):
        a = Tensor([5.0, 5.0], requires_grad=True)
        b = Tensor([2.0, 1.0], requires_grad=True)
        (a - b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [-1.0, -1.0])

    def test_rsub(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (10.0 - a).sum().backward()
        assert np.allclose(a.grad, [-1.0, -1.0])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [4.0, 5.0])
        assert np.allclose(b.grad, [2.0, 3.0])

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).sum().backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-1.5])

    def test_rtruediv(self):
        a = Tensor([2.0], requires_grad=True)
        (8.0 / a).sum().backward()
        assert np.allclose(a.grad, [-2.0])

    def test_neg(self):
        a = Tensor([1.0, -2.0], requires_grad=True)
        (-a).sum().backward()
        assert np.allclose(a.grad, [-1.0, -1.0])

    def test_pow_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        (a ** 3).sum().backward()
        assert np.allclose(a.grad, [12.0, 27.0])

    def test_pow_tensor_exponent_rejected(self):
        a = Tensor([2.0], requires_grad=True)
        with pytest.raises(TypeError):
            a ** Tensor([2.0])

    def test_broadcasting_grad_shapes(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0 * np.ones(4))

    def test_broadcasting_keepdim_axis(self):
        a = Tensor(np.ones((2, 1, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 5, 3)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 1, 3)
        assert np.allclose(a.grad, 5.0)

    def test_gradient_accumulation_over_reuse(self):
        a = Tensor([2.0], requires_grad=True)
        out = a * a + a
        out.backward()
        assert np.allclose(a.grad, [5.0])


class TestElementwiseFunctions:
    def test_exp(self):
        a = Tensor([0.0, 1.0], requires_grad=True)
        out = a.exp().sum()
        out.backward()
        assert np.allclose(a.grad, np.exp([0.0, 1.0]))

    def test_log(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        a.log().sum().backward()
        assert np.allclose(a.grad, [1.0, 0.5])

    def test_sqrt(self):
        a = Tensor([4.0, 9.0], requires_grad=True)
        a.sqrt().sum().backward()
        assert np.allclose(a.grad, [0.25, 1.0 / 6.0])

    def test_abs(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        a.abs().sum().backward()
        assert np.allclose(a.grad, [-1.0, 1.0])

    def test_tanh_range(self):
        a = Tensor(np.linspace(-3, 3, 7))
        out = a.tanh().numpy()
        assert np.all(out > -1.0) and np.all(out < 1.0)

    def test_sigmoid_at_zero(self):
        a = Tensor([0.0], requires_grad=True)
        out = a.sigmoid()
        out.sum().backward()
        assert np.allclose(out.numpy(), [0.5])
        assert np.allclose(a.grad, [0.25])

    def test_relu(self):
        a = Tensor([-1.0, 0.0, 2.0], requires_grad=True)
        a.relu().sum().backward()
        assert np.allclose(a.grad, [0.0, 0.0, 1.0])

    def test_leaky_relu(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        a.leaky_relu(0.1).sum().backward()
        assert np.allclose(a.grad, [0.1, 1.0])

    def test_softplus_matches_log1p_exp(self):
        a = Tensor([-50.0, 0.0, 50.0])
        out = a.softplus().numpy()
        assert np.isfinite(out).all()
        assert np.allclose(out[1], np.log(2.0))
        assert np.allclose(out[2], 50.0, atol=1e-6)

    def test_clip_gradient_masked(self):
        a = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        a.clip(0.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])


class TestMaximumMinimumWhere:
    def test_maximum(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        F.maximum(a, b).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])
        assert np.allclose(b.grad, [1.0, 0.0])

    def test_maximum_tie_splits_gradient(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        F.maximum(a, b).sum().backward()
        assert np.allclose(a.grad + b.grad, [1.0])

    def test_minimum(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        out = F.minimum(a, b)
        assert np.allclose(out.numpy(), [1.0, 2.0])

    def test_where(self):
        cond = np.array([True, False])
        a = Tensor([1.0, 1.0], requires_grad=True)
        b = Tensor([9.0, 9.0], requires_grad=True)
        out = F.where(cond, a, b)
        out.sum().backward()
        assert np.allclose(out.numpy(), [1.0, 9.0])
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])


class TestGradMode:
    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        from repro.tensor import is_grad_enabled

        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_backward_on_non_grad_tensor_raises(self):
        a = Tensor([1.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_backward_nonscalar_requires_grad_arg(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2.0).backward()

    def test_detach_breaks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
