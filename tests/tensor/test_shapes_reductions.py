"""Tests for reductions, shape manipulation, indexing and matmul gradients."""

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor import functional as F


class TestReductions:
    def test_sum_all(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        a.sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_sum_axis(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.sum(axis=0)
        assert out.shape == (3,)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_sum_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_mean(self):
        a = Tensor(np.array([[1.0, 3.0], [5.0, 7.0]]), requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, 0.25 * np.ones((2, 2)))

    def test_mean_axis_value(self):
        a = Tensor(np.array([[1.0, 3.0], [5.0, 7.0]]))
        assert np.allclose(a.mean(axis=0).numpy(), [3.0, 5.0])

    def test_var_matches_numpy(self):
        data = np.random.default_rng(0).normal(size=(4, 5))
        a = Tensor(data)
        assert np.allclose(a.var().item(), data.var())

    def test_max_gradient_goes_to_argmax(self):
        a = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_max_axis(self):
        a = Tensor(np.array([[1.0, 2.0], [4.0, 3.0]]), requires_grad=True)
        out = a.max(axis=1)
        assert np.allclose(out.numpy(), [2.0, 4.0])
        out.sum().backward()
        assert np.allclose(a.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_min(self):
        a = Tensor([3.0, 1.0, 2.0])
        assert np.allclose(a.min().item(), 1.0)


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        assert a.grad.shape == (6,)

    def test_reshape_accepts_tuple(self):
        a = Tensor(np.arange(6.0))
        assert a.reshape((3, 2)).shape == (3, 2)

    def test_transpose_default_reverses(self):
        a = Tensor(np.ones((2, 3, 4)))
        assert a.transpose().shape == (4, 3, 2)

    def test_transpose_axes_grad(self):
        a = Tensor(np.random.default_rng(0).normal(size=(2, 3, 4)), requires_grad=True)
        out = a.transpose(1, 0, 2)
        assert out.shape == (3, 2, 4)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_swapaxes(self):
        a = Tensor(np.ones((2, 5, 3)))
        assert a.swapaxes(1, 2).shape == (2, 3, 5)

    def test_squeeze_unsqueeze(self):
        a = Tensor(np.ones((2, 1, 3)), requires_grad=True)
        out = a.squeeze(1).unsqueeze(0)
        assert out.shape == (1, 2, 3)
        out.sum().backward()
        assert a.grad.shape == (2, 1, 3)

    def test_broadcast_to(self):
        a = Tensor(np.ones((1, 3)), requires_grad=True)
        out = a.broadcast_to((4, 3))
        out.sum().backward()
        assert np.allclose(a.grad, 4.0 * np.ones((1, 3)))

    def test_getitem_slice(self):
        a = Tensor(np.arange(10.0), requires_grad=True)
        a[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        assert np.allclose(a.grad, expected)

    def test_getitem_fancy_index_accumulates(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        idx = np.array([0, 0, 3])
        a[idx].sum().backward()
        expected = np.array([2.0, 0.0, 0.0, 1.0, 0.0])
        assert np.allclose(a.grad, expected)

    def test_T_property(self):
        a = Tensor(np.ones((2, 4)))
        assert a.T.shape == (4, 2)


class TestMatmul:
    def test_matmul_2d_forward(self):
        a = np.random.default_rng(0).normal(size=(3, 4))
        b = np.random.default_rng(1).normal(size=(4, 5))
        out = Tensor(a).matmul(Tensor(b))
        assert np.allclose(out.numpy(), a @ b)

    def test_matmul_2d_grad(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(4, 2)), requires_grad=True)
        a.matmul(b).sum().backward()
        assert np.allclose(a.grad, np.ones((3, 2)) @ b.numpy().T)
        assert np.allclose(b.grad, a.numpy().T @ np.ones((3, 2)))

    def test_matmul_batched(self):
        rng = np.random.default_rng(2)
        a = Tensor(rng.normal(size=(6, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(6, 4, 5)), requires_grad=True)
        out = a.matmul(b)
        assert out.shape == (6, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (6, 3, 4)
        assert b.grad.shape == (6, 4, 5)

    def test_matmul_broadcast_weight(self):
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=(6, 3, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        out = a.matmul(w)
        out.sum().backward()
        assert w.grad.shape == (4, 5)
        expected_w_grad = np.einsum("bij,bik->jk", a.numpy(), np.ones((6, 3, 5)))
        assert np.allclose(w.grad, expected_w_grad)

    def test_matmul_vector_inner(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0, 6.0], requires_grad=True)
        out = a @ b
        out.backward()
        assert np.allclose(out.item(), 32.0)
        assert np.allclose(a.grad, [4.0, 5.0, 6.0])
        assert np.allclose(b.grad, [1.0, 2.0, 3.0])

    def test_operator_matmul(self):
        a = Tensor(np.eye(3))
        b = Tensor(np.arange(9.0).reshape(3, 3))
        assert np.allclose((a @ b).numpy(), b.numpy())


class TestCatStackSoftmax:
    def test_cat_grad(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 2)), requires_grad=True)
        out = F.cat([a, b], axis=1)
        assert out.shape == (2, 5)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))
        assert np.allclose(b.grad, np.ones((2, 2)))

    def test_stack_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(2.0 * np.ones(3), requires_grad=True)
        out = F.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        (out * Tensor([[1.0, 1.0, 1.0], [2.0, 2.0, 2.0]])).sum().backward()
        assert np.allclose(a.grad, np.ones(3))
        assert np.allclose(b.grad, 2.0 * np.ones(3))

    def test_softmax_sums_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        out = F.softmax(x, axis=-1).numpy()
        assert np.allclose(out.sum(axis=-1), 1.0)
        assert np.all(out >= 0.0)

    def test_softmax_stable_for_large_logits(self):
        x = Tensor(np.array([1000.0, 1000.0, 1000.0]))
        out = F.softmax(x).numpy()
        assert np.allclose(out, np.ones(3) / 3.0)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(1).normal(size=(5,)))
        assert np.allclose(F.log_softmax(x).numpy(), np.log(F.softmax(x).numpy()))


class TestLossHelpers:
    def test_mse_loss(self):
        pred = Tensor([1.0, 2.0], requires_grad=True)
        target = Tensor([0.0, 0.0])
        loss = F.mse_loss(pred, target)
        assert np.allclose(loss.item(), 2.5)

    def test_l1_loss(self):
        pred = Tensor([1.0, -2.0])
        target = Tensor([0.0, 0.0])
        assert np.allclose(F.l1_loss(pred, target).item(), 1.5)

    def test_gaussian_nll_known_value(self):
        # mu = y, sigma^2 = 1  ->  nll = 0.5 log(2 pi)
        mean = Tensor([0.0])
        log_var = Tensor([0.0])
        target = Tensor([0.0])
        nll = F.gaussian_nll(mean, log_var, target)
        assert np.allclose(nll.item(), 0.5 * np.log(2.0 * np.pi))

    def test_gaussian_nll_penalizes_wrong_mean(self):
        target = Tensor([0.0])
        good = F.gaussian_nll(Tensor([0.0]), Tensor([0.0]), target).item()
        bad = F.gaussian_nll(Tensor([3.0]), Tensor([0.0]), target).item()
        assert bad > good

    def test_huber_quadratic_region(self):
        pred = Tensor([0.5], requires_grad=True)
        target = Tensor([0.0])
        assert np.allclose(F.huber_loss(pred, target, delta=1.0).item(), 0.125)

    def test_huber_linear_region(self):
        pred = Tensor([3.0])
        target = Tensor([0.0])
        assert np.allclose(F.huber_loss(pred, target, delta=1.0).item(), 2.5)

    def test_pinball_loss_asymmetry(self):
        target = Tensor([1.0])
        over = F.pinball_loss(Tensor([2.0]), target, quantile=0.9).item()
        under = F.pinball_loss(Tensor([0.0]), target, quantile=0.9).item()
        assert under > over

    def test_pinball_invalid_quantile(self):
        with pytest.raises(ValueError):
            F.pinball_loss(Tensor([0.0]), Tensor([0.0]), quantile=1.5)

    def test_dropout_mask_scaling(self):
        rng = np.random.default_rng(0)
        mask = F.dropout_mask((10000,), rate=0.3, rng=rng)
        assert np.allclose(mask.mean(), 1.0, atol=0.05)
        assert set(np.unique(mask)).issubset({0.0, 1.0 / 0.7})

    def test_dropout_mask_invalid_rate(self):
        with pytest.raises(ValueError):
            F.dropout_mask((3,), rate=1.0, rng=np.random.default_rng(0))
