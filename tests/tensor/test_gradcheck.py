"""Finite-difference gradient checks and hypothesis property tests for autodiff."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, gradcheck
from repro.tensor import functional as F


def _rand(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestGradcheckOps:
    def test_add_mul(self):
        a, b = _rand((3, 4), 0), _rand((3, 4), 1)
        assert gradcheck(lambda x, y: (x * y + x).sum(), [a, b])

    def test_div(self):
        a = _rand((3,), 0)
        b = Tensor(np.abs(np.random.default_rng(1).normal(size=3)) + 1.0, requires_grad=True)
        assert gradcheck(lambda x, y: (x / y).sum(), [a, b])

    def test_matmul(self):
        a, b = _rand((3, 4), 0), _rand((4, 2), 1)
        assert gradcheck(lambda x, y: x.matmul(y).sum(), [a, b])

    def test_batched_matmul(self):
        a, b = _rand((2, 3, 4), 0), _rand((2, 4, 2), 1)
        assert gradcheck(lambda x, y: x.matmul(y).sum(), [a, b])

    def test_exp_log(self):
        a = Tensor(np.abs(np.random.default_rng(0).normal(size=(3,))) + 0.5, requires_grad=True)
        assert gradcheck(lambda x: (x.log() + x.exp()).sum(), [a])

    def test_tanh_sigmoid(self):
        a = _rand((5,), 0)
        assert gradcheck(lambda x: (x.tanh() * x.sigmoid()).sum(), [a])

    def test_softplus(self):
        a = _rand((6,), 3)
        assert gradcheck(lambda x: x.softplus().sum(), [a])

    def test_mean_var(self):
        a = _rand((4, 3), 2)
        assert gradcheck(lambda x: (x.mean(axis=0) + x.var(axis=0)).sum(), [a])

    def test_softmax(self):
        a = _rand((3, 5), 1)
        weights = Tensor(np.random.default_rng(9).normal(size=(3, 5)))
        assert gradcheck(lambda x: (F.softmax(x, axis=-1) * weights).sum(), [a])

    def test_transpose_reshape_chain(self):
        a = _rand((2, 3, 4), 5)
        assert gradcheck(lambda x: x.transpose(2, 0, 1).reshape(4, 6).sum(axis=0).sum(), [a])

    def test_cat(self):
        a, b = _rand((2, 3), 0), _rand((2, 2), 1)
        assert gradcheck(lambda x, y: F.cat([x, y], axis=1).sum(), [a, b])

    def test_stack(self):
        a, b = _rand((3,), 0), _rand((3,), 1)
        assert gradcheck(lambda x, y: (F.stack([x, y], axis=0) ** 2).sum(), [a, b])

    def test_getitem(self):
        a = _rand((5, 4), 7)
        assert gradcheck(lambda x: x[1:4, ::2].sum(), [a])

    def test_gaussian_nll(self):
        mean = _rand((6,), 0)
        log_var = _rand((6,), 1)
        target = Tensor(np.random.default_rng(2).normal(size=6))
        assert gradcheck(lambda m, lv: F.gaussian_nll(m, lv, target), [mean, log_var])

    def test_pinball(self):
        pred = _rand((6,), 0)
        target = Tensor(np.random.default_rng(3).normal(size=6))
        assert gradcheck(lambda p: F.pinball_loss(p, target, 0.975), [pred], atol=1e-3)

    def test_gradcheck_requires_scalar(self):
        a = _rand((3,), 0)
        with pytest.raises(ValueError):
            gradcheck(lambda x: x * 2.0, [a])

    def test_gradcheck_requires_grad_inputs(self):
        a = Tensor([1.0])
        with pytest.raises(ValueError):
            gradcheck(lambda x: x.sum(), [a])


@st.composite
def small_arrays(draw, max_side=4):
    shape = draw(hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=max_side))
    return draw(
        hnp.arrays(
            dtype=np.float64,
            shape=shape,
            elements=st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False),
        )
    )


class TestAutodiffProperties:
    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_ones(self, data):
        x = Tensor(data, requires_grad=True)
        x.sum().backward()
        assert np.allclose(x.grad, np.ones_like(data))

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_linear_gradient_is_coefficient(self, data):
        x = Tensor(data, requires_grad=True)
        (3.5 * x).sum().backward()
        assert np.allclose(x.grad, 3.5 * np.ones_like(data))

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_square_gradient(self, data):
        x = Tensor(data, requires_grad=True)
        (x * x).sum().backward()
        assert np.allclose(x.grad, 2.0 * data, atol=1e-8)

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_forward_matches_numpy(self, data):
        x = Tensor(data)
        assert np.allclose((x.tanh() + x.sigmoid()).numpy(), np.tanh(data) + 1.0 / (1.0 + np.exp(-data)))

    @given(small_arrays(), st.integers(min_value=0, max_value=2))
    @settings(max_examples=30, deadline=None)
    def test_softmax_normalizes_any_axis(self, data, axis_seed):
        axis = axis_seed % data.ndim
        out = F.softmax(Tensor(data), axis=axis).numpy()
        assert np.allclose(out.sum(axis=axis), 1.0)

    @given(small_arrays())
    @settings(max_examples=20, deadline=None)
    def test_reshape_preserves_sum(self, data):
        x = Tensor(data)
        assert np.allclose(x.reshape(-1).sum().item(), data.sum())
