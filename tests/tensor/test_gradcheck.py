"""Finite-difference gradient checks and hypothesis property tests for autodiff."""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn
from repro.nn.module import Module
from repro.tensor import Tensor, gradcheck
from repro.tensor import functional as F


def _rand(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestGradcheckOps:
    def test_add_mul(self):
        a, b = _rand((3, 4), 0), _rand((3, 4), 1)
        assert gradcheck(lambda x, y: (x * y + x).sum(), [a, b])

    def test_div(self):
        a = _rand((3,), 0)
        b = Tensor(np.abs(np.random.default_rng(1).normal(size=3)) + 1.0, requires_grad=True)
        assert gradcheck(lambda x, y: (x / y).sum(), [a, b])

    def test_matmul(self):
        a, b = _rand((3, 4), 0), _rand((4, 2), 1)
        assert gradcheck(lambda x, y: x.matmul(y).sum(), [a, b])

    def test_batched_matmul(self):
        a, b = _rand((2, 3, 4), 0), _rand((2, 4, 2), 1)
        assert gradcheck(lambda x, y: x.matmul(y).sum(), [a, b])

    def test_exp_log(self):
        a = Tensor(np.abs(np.random.default_rng(0).normal(size=(3,))) + 0.5, requires_grad=True)
        assert gradcheck(lambda x: (x.log() + x.exp()).sum(), [a])

    def test_tanh_sigmoid(self):
        a = _rand((5,), 0)
        assert gradcheck(lambda x: (x.tanh() * x.sigmoid()).sum(), [a])

    def test_softplus(self):
        a = _rand((6,), 3)
        assert gradcheck(lambda x: x.softplus().sum(), [a])

    def test_mean_var(self):
        a = _rand((4, 3), 2)
        assert gradcheck(lambda x: (x.mean(axis=0) + x.var(axis=0)).sum(), [a])

    def test_softmax(self):
        a = _rand((3, 5), 1)
        weights = Tensor(np.random.default_rng(9).normal(size=(3, 5)))
        assert gradcheck(lambda x: (F.softmax(x, axis=-1) * weights).sum(), [a])

    def test_transpose_reshape_chain(self):
        a = _rand((2, 3, 4), 5)
        assert gradcheck(lambda x: x.transpose(2, 0, 1).reshape(4, 6).sum(axis=0).sum(), [a])

    def test_cat(self):
        a, b = _rand((2, 3), 0), _rand((2, 2), 1)
        assert gradcheck(lambda x, y: F.cat([x, y], axis=1).sum(), [a, b])

    def test_stack(self):
        a, b = _rand((3,), 0), _rand((3,), 1)
        assert gradcheck(lambda x, y: (F.stack([x, y], axis=0) ** 2).sum(), [a, b])

    def test_getitem(self):
        a = _rand((5, 4), 7)
        assert gradcheck(lambda x: x[1:4, ::2].sum(), [a])

    def test_gaussian_nll(self):
        mean = _rand((6,), 0)
        log_var = _rand((6,), 1)
        target = Tensor(np.random.default_rng(2).normal(size=6))
        assert gradcheck(lambda m, lv: F.gaussian_nll(m, lv, target), [mean, log_var])

    def test_pinball(self):
        pred = _rand((6,), 0)
        target = Tensor(np.random.default_rng(3).normal(size=6))
        assert gradcheck(lambda p: F.pinball_loss(p, target, 0.975), [pred], atol=1e-3)

    def test_gradcheck_requires_scalar(self):
        a = _rand((3,), 0)
        with pytest.raises(ValueError):
            gradcheck(lambda x: x * 2.0, [a])

    def test_gradcheck_requires_grad_inputs(self):
        a = Tensor([1.0])
        with pytest.raises(ValueError):
            gradcheck(lambda x: x.sum(), [a])


class _AdaptiveBlock(Module):
    """AdaptiveAdjacency + AVWGCN wired the way AGCRN uses them."""

    def __init__(self, num_nodes, in_features, out_features, embed_dim, cheb_k, rng):
        super().__init__()
        self.adjacency = nn.AdaptiveAdjacency(num_nodes, embed_dim, rng=rng)
        self.conv = nn.AVWGCN(in_features, out_features, embed_dim, cheb_k=cheb_k, rng=rng)

    def forward(self, x):
        return self.conv(x, self.adjacency(), self.adjacency.embeddings)


def _rand_support(rng, n):
    """A well-conditioned normalized (n, n) propagation matrix."""
    raw = np.abs(rng.normal(size=(n, n))) + 0.1
    return raw / raw.sum(axis=1, keepdims=True)


def _build_linear(rng, b, t, n, c, h):
    return nn.Linear(c, h, rng=rng), (b, c)


def _build_causal_conv(rng, b, t, n, c, h):
    return nn.CausalConv1d(c, h, kernel_size=2, rng=rng), (b, t, n, c)


def _build_valid_conv(rng, b, t, n, c, h):
    return nn.CausalConv1d(c, h, kernel_size=2, causal=False, rng=rng), (b, t + 1, n, c)


def _build_gated_conv(rng, b, t, n, c, h):
    return nn.GatedTemporalConv(c, h, kernel_size=2, rng=rng), (b, t, n, c)


def _build_gru(rng, b, t, n, c, h):
    gru = nn.GRU(c, h, rng=rng)
    return (lambda x: gru(x)[0]), gru, (b, t, c)


def _build_gru_cell(rng, b, t, n, c, h):
    cell = nn.GRUCell(c, h, rng=rng)
    hidden = Tensor(rng.normal(size=(b, h)))
    return (lambda x: cell(x, hidden)), cell, (b, c)


def _build_gcn(rng, b, t, n, c, h):
    return nn.GCNLayer(c, h, _rand_support(rng, n), activation="tanh", rng=rng), (b, n, c)


def _build_cheb(rng, b, t, n, c, h):
    supports = [np.eye(n), _rand_support(rng, n)]
    return nn.ChebConv(c, h, supports, rng=rng), (b, n, c)


def _build_diffusion(rng, b, t, n, c, h):
    supports = [_rand_support(rng, n), _rand_support(rng, n).T]
    return nn.DiffusionConv(c, h, supports, max_step=2, rng=rng), (b, n, c)


def _build_avwgcn(rng, b, t, n, c, h):
    return _AdaptiveBlock(n, c, h, embed_dim=2, cheb_k=2, rng=rng), (b, n, c)


def _build_spatial_attention(rng, b, t, n, c, h):
    return nn.SpatialAttention(t, c, rng=rng), (b, t, n, c)


def _build_temporal_attention(rng, b, t, n, c, h):
    return nn.TemporalAttention(n, c, rng=rng), (b, t, n, c)


def _build_batchnorm(rng, b, t, n, c, h):
    layer = nn.BatchNorm1d(c)
    layer.running_mean = rng.normal(size=c)
    layer.running_var = np.abs(rng.normal(size=c)) + 0.5
    # Eval mode: running statistics are constants, so the full input gradient
    # is well-defined (training-mode batch stats are intentionally detached).
    layer.eval()
    return layer, (b, n, c)


def _build_layernorm(rng, b, t, n, c, h):
    return nn.LayerNorm(c), (b, n, c)


LAYER_BUILDERS = {
    "linear": _build_linear,
    "causal_conv": _build_causal_conv,
    "valid_conv": _build_valid_conv,
    "gated_conv": _build_gated_conv,
    "gru": _build_gru,
    "gru_cell": _build_gru_cell,
    "gcn": _build_gcn,
    "cheb_conv": _build_cheb,
    "diffusion_conv": _build_diffusion,
    "avwgcn": _build_avwgcn,
    "spatial_attention": _build_spatial_attention,
    "temporal_attention": _build_temporal_attention,
    "batchnorm": _build_batchnorm,
    "layernorm": _build_layernorm,
}


class TestLayerGradchecks:
    """Finite-difference agreement for every nn layer, randomized shapes/seeds.

    Each case draws small random dimensions from its seed, builds the layer,
    and checks the analytic gradient of ``layer(x).sum()`` against central
    finite differences with respect to the input *and every parameter*.
    """

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("name", sorted(LAYER_BUILDERS))
    def test_layer_matches_finite_differences(self, name, seed):
        # crc32 (not hash()) so shapes are stable across processes/PYTHONHASHSEED.
        rng = np.random.default_rng(1000 * seed + zlib.crc32(name.encode()) % 1000)
        b, t, n = rng.integers(2, 4), int(rng.integers(2, 4)), int(rng.integers(2, 4))
        c, h = int(rng.integers(2, 4)), int(rng.integers(2, 4))
        built = LAYER_BUILDERS[name](rng, int(b), t, n, c, h)
        if len(built) == 3:
            forward, layer, in_shape = built
        else:
            layer, in_shape = built
            forward = layer
        x = Tensor(rng.normal(size=in_shape), requires_grad=True)
        params = layer.parameters()
        assert params, f"{name} exposes no parameters"
        assert gradcheck(lambda *ts: forward(ts[0]).sum(), [x] + params)


@st.composite
def small_arrays(draw, max_side=4):
    shape = draw(hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=max_side))
    return draw(
        hnp.arrays(
            dtype=np.float64,
            shape=shape,
            elements=st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False),
        )
    )


class TestAutodiffProperties:
    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_ones(self, data):
        x = Tensor(data, requires_grad=True)
        x.sum().backward()
        assert np.allclose(x.grad, np.ones_like(data))

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_linear_gradient_is_coefficient(self, data):
        x = Tensor(data, requires_grad=True)
        (3.5 * x).sum().backward()
        assert np.allclose(x.grad, 3.5 * np.ones_like(data))

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_square_gradient(self, data):
        x = Tensor(data, requires_grad=True)
        (x * x).sum().backward()
        assert np.allclose(x.grad, 2.0 * data, atol=1e-8)

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_forward_matches_numpy(self, data):
        x = Tensor(data)
        assert np.allclose((x.tanh() + x.sigmoid()).numpy(), np.tanh(data) + 1.0 / (1.0 + np.exp(-data)))

    @given(small_arrays(), st.integers(min_value=0, max_value=2))
    @settings(max_examples=30, deadline=None)
    def test_softmax_normalizes_any_axis(self, data, axis_seed):
        axis = axis_seed % data.ndim
        out = F.softmax(Tensor(data), axis=axis).numpy()
        assert np.allclose(out.sum(axis=axis), 1.0)

    @given(small_arrays())
    @settings(max_examples=20, deadline=None)
    def test_reshape_preserves_sum(self, data):
        x = Tensor(data)
        assert np.allclose(x.reshape(-1).sum().item(), data.sum())
