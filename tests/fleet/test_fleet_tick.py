"""Fleet ticks: shared batched predicts, single-stream equivalence, ops."""

import numpy as np
import pytest

from repro.core.inference import PredictionResult
from repro.data import StreamingTrafficFeed
from repro.graph import grid_network
from repro.serving import InferenceServer, KeyRouter
from repro.streaming import PersistenceForecaster, StreamingForecaster
from repro.fleet import FleetStream, StreamFleet

HISTORY, HORIZON = 8, 4
STEPS = 60


@pytest.fixture(scope="module")
def network():
    return grid_network(2, 2)


def _feeds(network, n, steps=STEPS):
    return {f"c{i}": StreamingTrafficFeed(network, num_steps=steps, seed=i) for i in range(n)}


def _server(max_batch_size=64):
    model = PersistenceForecaster(horizon=HORIZON, sigma=20.0)
    return InferenceServer(
        model.predict, model_version="base", max_batch_size=max_batch_size, max_wait_ms=2.0
    )


class TestBatchedTick:
    def test_tick_returns_per_stream_results(self, network):
        feeds = _feeds(network, 6)
        with _server() as server:
            fleet = StreamFleet(server, HISTORY, HORIZON)
            for name in feeds:
                fleet.add_stream(name)
            results = fleet.run({name: iter(feed) for name, feed in feeds.items()})
        assert len(results) == STEPS
        last = results[-1]
        assert set(dict(last)) == set(feeds)
        for name in feeds:
            step = last[name]
            assert step.prediction is not None
            assert step.prediction.mean.shape == (1, HORIZON, network.num_nodes)
            assert step.lower.shape == (HORIZON, network.num_nodes)
            assert np.all(step.lower <= step.upper)

    def test_predicts_are_batched_not_sequential(self, network):
        """A tick over N warm streams must coalesce into few micro-batches."""
        n = 8
        feeds = _feeds(network, n)
        with _server(max_batch_size=64) as server:
            fleet = StreamFleet(server, HISTORY, HORIZON)
            for name in feeds:
                fleet.add_stream(name)
            fleet.run({name: iter(feed) for name, feed in feeds.items()})
            stats = server.stats
        warm_ticks = STEPS - HISTORY + 1
        assert stats["requests_served"] == n * warm_ticks
        # Perfect coalescing would be one batch per tick; allow a little
        # dispatcher jitter but demand far fewer batches than requests.
        assert stats["batches_dispatched"] <= warm_ticks * 2
        assert stats["mean_batch_size"] >= n / 2

    def test_unknown_stream_rejected(self, network):
        with _server() as server:
            fleet = StreamFleet(server, HISTORY, HORIZON)
            fleet.add_stream("known")
            with pytest.raises(KeyError, match="unknown"):
                fleet.tick({"unknown": np.zeros(network.num_nodes)})

    def test_duplicate_stream_rejected(self, network):
        with _server() as server:
            fleet = StreamFleet(server, HISTORY, HORIZON)
            fleet.add_stream("c0")
            with pytest.raises(ValueError, match="already exists"):
                fleet.add_stream("c0")

    def test_malformed_row_rejected_before_any_stream_mutates(self, network):
        feeds = _feeds(network, 2)
        with _server() as server:
            fleet = StreamFleet(server, HISTORY, HORIZON)
            fleet.add_stream("c0")
            fleet.add_stream("c1")
            iterators = {name: iter(feed) for name, feed in feeds.items()}
            for _ in range(3):
                fleet.tick({name: next(it) for name, it in iterators.items()})
            with pytest.raises(ValueError, match="sensors per row"):
                fleet.tick({
                    "c0": next(iterators["c0"]),
                    "c1": np.zeros(network.num_nodes + 1),
                })
            # the failed tick mutated nothing: both streams stayed in sync
            assert fleet["c0"].core.step == 3
            assert fleet["c1"].core.step == 3
            result = fleet.tick({name: next(it) for name, it in iterators.items()})
            assert set(result.results) == {"c0", "c1"}

    def test_duplicate_spatial_node_rejected(self, network):
        from repro.fleet import SpatialDriftAggregator

        with _server() as server:
            fleet = StreamFleet(
                server, HISTORY, HORIZON,
                spatial=SpatialDriftAggregator(network.adjacency_matrix(weighted=False)),
            )
            fleet.add_stream("a", node=1)
            with pytest.raises(ValueError, match="already mapped"):
                fleet.add_stream("b", node=1)

    def test_path_hostile_stream_names_rejected(self, network):
        with _server() as server:
            fleet = StreamFleet(server, HISTORY, HORIZON)
            for bad in ("", "a/b", "a\\b", "..", "."):
                with pytest.raises(ValueError, match="path component"):
                    fleet.add_stream(bad)

    def test_add_streams_rejects_shared_stateful_instances(self, network):
        from repro.streaming import CoverageBreachDetector

        with _server() as server:
            fleet = StreamFleet(server, HISTORY, HORIZON)
            with pytest.raises(ValueError, match="detector_factory"):
                fleet.add_streams(["a", "b"], detectors=[CoverageBreachDetector()])

    def test_node_outside_spatial_graph_rejected_at_registration(self, network):
        from repro.fleet import SpatialDriftAggregator

        with _server() as server:
            fleet = StreamFleet(
                server, HISTORY, HORIZON,
                spatial=SpatialDriftAggregator(network.adjacency_matrix(weighted=False)),
            )
            fleet.add_stream("ok", node=network.num_nodes - 1)
            with pytest.raises(IndexError, match="out of range"):
                fleet.add_stream("bad", node=network.num_nodes)

    def test_run_drains_unequal_feeds_without_dropping_rows(self, network):
        short = StreamingTrafficFeed(network, num_steps=20, seed=0)
        long = StreamingTrafficFeed(network, num_steps=35, seed=1)
        with _server() as server:
            fleet = StreamFleet(server, HISTORY, HORIZON)
            fleet.add_stream("short")
            fleet.add_stream("long")
            results = fleet.run({"short": iter(short), "long": iter(long)})
        # every fetched row was ticked: the long stream keeps going alone
        assert len(results) == 35
        assert fleet["short"].core.step == 20
        assert fleet["long"].core.step == 35
        assert set(results[-1].results) == {"long"}

    def test_partial_tick_skips_unobserved_streams(self, network):
        feeds = _feeds(network, 2)
        with _server() as server:
            fleet = StreamFleet(server, HISTORY, HORIZON)
            fleet.add_stream("c0")
            fleet.add_stream("c1")
            rows = list(feeds["c0"])
            for row in rows[:10]:
                fleet.tick({"c0": row})
            result = fleet.tick({"c0": rows[10], "c1": next(iter(feeds["c1"]))})
        assert fleet["c0"].core.step == 11
        assert fleet["c1"].core.step == 1
        assert set(result.results) == {"c0", "c1"}


class TestSingleStreamEquivalence:
    def test_one_stream_fleet_matches_streaming_forecaster(self, network):
        """The fleet path (through the shared server) must be bit-identical
        to the extracted single-stream loop for a deterministic model."""
        feed_args = dict(num_steps=STEPS, seed=3)
        fleet_feed = StreamingTrafficFeed(network, **feed_args)
        solo_feed = StreamingTrafficFeed(network, **feed_args)

        solo = StreamingForecaster(
            PersistenceForecaster(horizon=HORIZON, sigma=20.0),
            history=HISTORY,
            horizon=HORIZON,
            aci={"window": 500},
        )
        solo_results = solo.run(solo_feed)

        with _server() as server:
            fleet = StreamFleet(server, HISTORY, HORIZON, aci={"window": 500})
            fleet.add_stream("only")
            fleet_results = fleet.run({"only": iter(fleet_feed)})

        for solo_step, fleet_tick in zip(solo_results, fleet_results):
            fleet_step = fleet_tick["only"]
            assert solo_step.step == fleet_step.step
            np.testing.assert_array_equal(solo_step.observed, fleet_step.observed)
            if solo_step.prediction is None:
                assert fleet_step.prediction is None
                continue
            np.testing.assert_array_equal(solo_step.lower, fleet_step.lower)
            np.testing.assert_array_equal(solo_step.upper, fleet_step.upper)
            np.testing.assert_array_equal(
                solo_step.prediction.mean, fleet_step.prediction.mean
            )
        assert solo.monitor.snapshot() == fleet["only"].core.monitor.snapshot()


class TestRoutingAndOps:
    def test_key_router_installed_and_streams_keyed_by_region(self, network):
        with _server() as server:
            fleet = StreamFleet(server, HISTORY, HORIZON)
            assert isinstance(server.router, KeyRouter)
            stream = fleet.add_stream("c0", region="north")
            assert stream.key == "north"
            named = fleet.add_stream("c1")
            assert named.key == "c1"

    def test_existing_key_router_preserved(self, network):
        router = KeyRouter({"north": "regional"})
        model = PersistenceForecaster(horizon=HORIZON, sigma=20.0)
        server = InferenceServer(model.predict, model_version="base", router=router)
        fleet = StreamFleet(server, HISTORY, HORIZON)
        assert fleet.router is router

    def test_snapshot_is_metrics_endpoint_ready(self, network):
        feeds = _feeds(network, 3)
        with _server() as server:
            fleet = StreamFleet(server, HISTORY, HORIZON)
            for index, name in enumerate(feeds):
                fleet.add_stream(name, region="r", node=index)
            fleet.run({name: iter(feed) for name, feed in feeds.items()}, max_steps=20)
            snap = fleet.snapshot()
        assert snap["tick"] == 20
        assert snap["num_streams"] == 3
        for name in feeds:
            entry = snap["streams"][name]
            assert {"region", "node", "key", "step", "warmed_up", "metrics", "events"} <= set(entry)
            assert {"coverage", "mae", "rmse", "winkler"} <= set(entry["metrics"])
        # the shared server's stats ride along: serving counters, cache
        # statistics and per-deployment ModelPool stats in one dict
        assert "deployments" in snap["server"]
        assert "cache_hits" in snap["server"]
        import json

        json.dumps(snap)  # must be JSON-serializable as-is

    def test_streaming_forecaster_snapshot(self, network):
        feed = StreamingTrafficFeed(network, num_steps=30, seed=0)
        runner = StreamingForecaster(
            PersistenceForecaster(horizon=HORIZON, sigma=20.0),
            history=HISTORY,
            horizon=HORIZON,
        )
        runner.run(feed)
        snap = runner.snapshot()
        assert snap["step"] == 30
        assert {"coverage", "mae"} <= set(snap["metrics"])
        import json

        json.dumps(snap)


class TestFleetStream:
    def test_describe_round_trips_identity(self):
        from repro.streaming import StreamCore

        stream = FleetStream("c9", StreamCore(4, 2), region="west", node=7)
        record = stream.describe()
        assert record == {"name": "c9", "region": "west", "node": 7, "key": "west"}


class TestForecasterFacade:
    def test_forecaster_fleet_builds_and_serves(self, network):
        """Forecaster.fleet() opens a fleet over the fitted model's server."""
        from repro.api import Forecaster
        from repro.data import TrafficData, generate_traffic, train_val_test_split

        values = generate_traffic(network, 400, seed=5)
        data = TrafficData(name="fleet-api", values=values, network=network)
        train, val, _ = train_val_test_split(data)
        forecaster = Forecaster.from_spec(
            {
                "method": "Point",
                "backbone": "AGCRN",
                "training": {
                    "history": HISTORY, "horizon": HORIZON,
                    "hidden_dim": 4, "embed_dim": 2, "epochs": 1, "seed": 0,
                },
            }
        )
        forecaster.fit(train, val)
        fleet = forecaster.fleet()
        try:
            fleet.add_stream("c0")
            feed = StreamingTrafficFeed(network, num_steps=HISTORY + 3, seed=0)
            results = fleet.run({"c0": iter(feed)})
            assert results[-1]["c0"].prediction is not None
        finally:
            fleet.server.stop()
