"""Spatial drift aggregation: correlated breaches → one incident event."""

import numpy as np
import pytest

from repro.core.inference import PredictionResult
from repro.data import StreamingTrafficFeed
from repro.data.synthetic import SyntheticTrafficConfig
from repro.graph import grid_network
from repro.serving import InferenceServer, KeyRouter
from repro.streaming import DriftEvent, ErrorCusumDetector
from repro.fleet import SpatialDriftAggregator, StreamFleet


def _breach(step, kind="coverage_breach"):
    return [DriftEvent(kind=kind, step=step, value=0.0, threshold=0.0)]


class TestAggregatorUnit:
    """Deterministic, detector-free behaviour on a 3x3 corridor grid."""

    @pytest.fixture
    def adjacency(self):
        return grid_network(3, 3).adjacency_matrix(weighted=False)

    def test_connected_cluster_fires_one_event(self, adjacency):
        aggregator = SpatialDriftAggregator(adjacency, window=10, min_cluster=3)
        # nodes 1, 4, 7 form a connected column of the grid
        for step, node in enumerate((1, 4, 7)):
            aggregator.observe(node, f"s{node}", _breach(step), step)
        event = aggregator.poll(3)
        assert event is not None
        assert event.kind == "spatial_incident"
        assert event.value == 3.0
        for name in ("s1", "s4", "s7"):
            assert name in event.message
        assert aggregator.incidents == 1

    def test_scattered_breaches_do_not_fire(self, adjacency):
        aggregator = SpatialDriftAggregator(adjacency, window=10, min_cluster=3)
        # corners 0, 2, 6 are pairwise non-adjacent
        for node in (0, 2, 6):
            aggregator.observe(node, f"s{node}", _breach(0), 0)
        assert aggregator.poll(1) is None

    def test_breaches_expire_out_of_the_window(self, adjacency):
        aggregator = SpatialDriftAggregator(adjacency, window=5, min_cluster=3)
        aggregator.observe(1, "s1", _breach(0), 0)
        aggregator.observe(4, "s4", _breach(1), 1)
        aggregator.observe(7, "s7", _breach(20), 20)  # the others are stale
        assert aggregator.poll(20) is None

    def test_cooldown_silences_repeat_firings(self, adjacency):
        aggregator = SpatialDriftAggregator(adjacency, window=50, min_cluster=2, cooldown=30)
        aggregator.observe(0, "s0", _breach(0), 0)
        aggregator.observe(1, "s1", _breach(0), 0)
        assert aggregator.poll(0) is not None
        aggregator.observe(0, "s0", _breach(5), 5)
        assert aggregator.poll(5) is None          # still cooling down
        aggregator.observe(0, "s0", _breach(31), 31)
        aggregator.observe(1, "s1", _breach(31), 31)
        assert aggregator.poll(31) is not None     # re-armed

    def test_unwatched_kinds_are_ignored(self, adjacency):
        aggregator = SpatialDriftAggregator(adjacency, window=10, min_cluster=1)
        aggregator.observe(0, "s0", _breach(0, kind="recalibrated"), 0)
        assert aggregator.poll(0) is None

    def test_unmapped_stream_is_a_noop(self, adjacency):
        aggregator = SpatialDriftAggregator(adjacency, window=10, min_cluster=1)
        aggregator.observe(None, "s?", _breach(0), 0)
        assert aggregator.poll(0) is None

    def test_bad_node_rejected(self, adjacency):
        aggregator = SpatialDriftAggregator(adjacency, window=10, min_cluster=1)
        with pytest.raises(IndexError):
            aggregator.observe(99, "s99", _breach(0), 0)


HISTORY, HORIZON = 6, 2
STEPS = 160
STORM_AT, STORM_LEN = 80, 40
FLAT = SyntheticTrafficConfig(peak_amplitude=0.0, weekend_attenuation=1.0)


class TwinOracle:
    """Predicts one corridor's *no-storm* clean signal (per-corridor deployment).

    Each corridor runs its own deployment behind the fleet's KeyRouter, so
    this oracle sees exactly one window per tick and can track the stream
    position by call count — all residual error is then observation noise
    plus whatever the scripted storm removed from the real feed.
    """

    def __init__(self, clean: np.ndarray, sigma: float) -> None:
        self.clean = clean
        self.sigma = float(sigma)
        self.calls = 0

    def predict(self, windows: np.ndarray) -> PredictionResult:
        assert windows.shape[0] == 1
        t = HISTORY - 1 + self.calls
        self.calls += 1
        last = self.clean.shape[0] - 1
        mean = np.stack(
            [self.clean[min(t + h, last)] for h in range(1, HORIZON + 1)]
        )[None]
        variance = np.full_like(mean, self.sigma ** 2)
        return PredictionResult(
            mean=mean, aleatoric_var=variance, epistemic_var=np.zeros_like(mean)
        )


class TestIncidentStormIntegration:
    """An incident storm on neighboring corridors → one spatial incident."""

    #: Connected 2x2 block in the middle of the 4x4 corridor grid.
    CLUSTER = (5, 6, 9, 10)

    @pytest.fixture(scope="class")
    def storm_run(self):
        corridor_graph = grid_network(4, 4)
        sensors = grid_network(2, 2)  # each corridor observes 4 sensors
        num_corridors = corridor_graph.num_nodes

        feeds, oracles = {}, {}
        for node in range(num_corridors):
            name = f"c{node}"
            if node in self.CLUSTER:
                feeds[name] = StreamingTrafficFeed.scenario(
                    sensors, "incident_storm", num_steps=STEPS, seed=node,
                    start=STORM_AT, duration=STORM_LEN, rate=0.5, severity=0.7,
                    config=FLAT,
                )
            else:
                feeds[name] = StreamingTrafficFeed(
                    sensors, num_steps=STEPS, seed=node, config=FLAT
                )
            # the twin shares the seed but no events: its clean signal is
            # what a drift-free model of this corridor would predict
            twin = StreamingTrafficFeed(sensors, num_steps=STEPS, seed=node, config=FLAT)
            oracles[name] = TwinOracle(twin.clean, sigma=20.0)

        server = InferenceServer(
            cache_size=0, max_batch_size=64, max_wait_ms=2.0,
            router=KeyRouter({f"c{i}": f"oracle-c{i}" for i in range(num_corridors)}),
        )
        for node in range(num_corridors):
            server.deploy(f"oracle-c{node}", oracles[f"c{node}"], version="v0")
        with server:
            fleet = StreamFleet(
                server, HISTORY, HORIZON,
                aci={"window": 400, "gamma": 0.01},
                detector_factory=lambda: [
                    # 25 keeps the 12 clean corridors silent for the whole
                    # run while the 70%-severity storm still fires the
                    # cluster within ~3 ticks of its onset.
                    ErrorCusumDetector(slack=1.0, threshold=25.0, warmup=60)
                ],
                spatial=SpatialDriftAggregator(
                    corridor_graph.adjacency_matrix(weighted=False),
                    window=30, min_cluster=3, cooldown=STEPS,
                ),
            )
            for node in range(num_corridors):
                fleet.add_stream(f"c{node}", node=node)
            fleet.run({name: iter(feed) for name, feed in feeds.items()})
        return fleet

    def test_exactly_one_spatial_incident(self, storm_run):
        fleet = storm_run
        incidents = [e for e in fleet.event_log if e.kind == "spatial_incident"]
        assert len(incidents) == 1
        (incident,) = incidents
        assert STORM_AT <= incident.step <= STORM_AT + STORM_LEN
        assert incident.value >= 3

    def test_incident_names_the_storm_cluster(self, storm_run):
        fleet = storm_run
        (incident,) = [e for e in fleet.event_log if e.kind == "spatial_incident"]
        named = {name for name in incident.message.split(": ")[1].split(", ")}
        assert named <= {f"c{node}" for node in self.CLUSTER}

    def test_clean_corridors_never_breach(self, storm_run):
        fleet = storm_run
        outside = [
            name
            for name, stream in fleet.streams.items()
            if int(name[1:]) not in self.CLUSTER
            and any(e.kind == "error_cusum" for e in stream.core.event_log)
        ]
        assert outside == []

    def test_per_corridor_deployments_served_their_streams(self, storm_run):
        fleet = storm_run
        stats = fleet.server.stats
        warm_ticks = STEPS - HISTORY + 1
        for node in (0, 5, 15):
            assert stats["deployments"][f"oracle-c{node}"]["requests_served"] == warm_ticks
        assert stats["route_fallbacks"] == 0
