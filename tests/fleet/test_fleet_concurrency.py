"""Fleet coordination under drift: one refit per region, zero drops.

The headline ISSUE acceptance test: a 64-stream fleet where one region
(32 streams) takes a synthetic ``regime_shift`` (observation noise 3x
mid-stream) must — with a fixed seed — trigger **exactly one** coordinated
refit/promotion for that region, serve every request (zero drops, zero
route fallbacks), and leave the control region untouched.
"""

import numpy as np
import pytest

from repro.core.inference import PredictionResult
from repro.data import StreamingTrafficFeed
from repro.data.synthetic import SyntheticTrafficConfig
from repro.graph import grid_network
from repro.serving import InferenceServer
from repro.streaming import ErrorCusumDetector
from repro.fleet import FleetRefitPolicy, RefitCoordinator, StreamFleet

HISTORY, HORIZON = 6, 2
STEPS = 200
SHIFT_AT = 100
NUM_STREAMS = 64
SHIFTED = 32  # streams 0..31 form region "north", the rest "south"

#: Flat daily profile: the regime shift is the only nonstationarity, so the
#: error-CUSUM detectors localize drift to the shifted region.
FLAT = SyntheticTrafficConfig(peak_amplitude=0.0, weekend_attenuation=1.0)


class FixedSigmaPersistence:
    """Persistence forecaster reporting a fixed predictive scale."""

    def __init__(self, sigma: float) -> None:
        self.sigma = float(sigma)

    def predict(self, windows: np.ndarray) -> PredictionResult:
        last = windows[:, -1:, :]
        mean = np.repeat(last, HORIZON, axis=1)
        variance = np.full_like(mean, self.sigma ** 2)
        return PredictionResult(
            mean=mean, aleatoric_var=variance, epistemic_var=np.zeros_like(mean)
        )


def _feeds(network):
    feeds = {}
    for i in range(NUM_STREAMS):
        if i < SHIFTED:
            feeds[f"c{i}"] = StreamingTrafficFeed.scenario(
                network, "regime_shift", num_steps=STEPS, seed=i,
                start=SHIFT_AT, noise_scale=3.0, config=FLAT,
            )
        else:
            feeds[f"c{i}"] = StreamingTrafficFeed(
                network, num_steps=STEPS, seed=i, config=FLAT
            )
    return feeds


@pytest.fixture(scope="module")
def fleet_run():
    network = grid_network(2, 2)
    feeds = _feeds(network)
    refit_calls = []

    def refit_fn(region, recents):
        refit_calls.append((region, sorted(recents)))
        return FixedSigmaPersistence(sigma=60.0)

    def detector_factory():
        # Threshold picked so the 3x noise shift fires every shifted stream
        # within ~3 ticks while the 32 control streams stay far below quorum
        # (sweeping 12/20/30 gives 10/4/2 spurious firings over the run).
        return [ErrorCusumDetector(slack=1.0, threshold=20.0, warmup=80)]

    model = FixedSigmaPersistence(sigma=20.0)
    server = InferenceServer(
        model.predict, model_version="base", max_batch_size=64, max_wait_ms=2.0
    )
    with server:
        fleet = StreamFleet(
            server,
            HISTORY,
            HORIZON,
            aci={"window": 400, "gamma": 0.01},
            detector_factory=detector_factory,
            refit_fn=refit_fn,
            refit_policy=FleetRefitPolicy(
                quorum=8, window=40, cooldown=200, max_concurrent=1,
                eval_steps=60, mae_tolerance=0.5, coverage_tolerance=0.5,
            ),
        )
        for i in range(NUM_STREAMS):
            fleet.add_stream(f"c{i}", region="north" if i < SHIFTED else "south")
        results = fleet.run({name: iter(feed) for name, feed in feeds.items()})
        fleet.join_refits()
        stats = server.stats
    return fleet, results, refit_calls, stats


class TestCoordinatedRefit:
    def test_exactly_one_coordinated_refit_and_promotion(self, fleet_run):
        fleet, _, refit_calls, _ = fleet_run
        kinds = [event.kind for event in fleet.event_log]
        assert kinds.count("region_refit_started") == 1
        assert kinds.count("region_candidate_staged") == 1
        assert kinds.count("region_candidate_promoted") == 1
        assert "region_candidate_rejected" not in kinds
        assert "region_refit_failed" not in kinds
        # one refit call, for the shifted region, pooling all 32 streams
        assert len(refit_calls) == 1
        region, streams = refit_calls[0]
        assert region == "north"
        assert len(streams) == SHIFTED

    def test_refit_triggered_after_the_shift(self, fleet_run):
        fleet, _, _, _ = fleet_run
        (started,) = [e for e in fleet_log(fleet, "region_refit_started")]
        assert SHIFT_AT <= started.step <= SHIFT_AT + 40

    def test_promotion_re_points_only_the_drifted_region(self, fleet_run):
        fleet, _, _, _ = fleet_run
        assert fleet._region_deployment == {"north": "fleet-north-cand1"}
        assert fleet.router.routes.get("north") == "fleet-north-cand1"
        assert "south" not in fleet.router.routes
        assert "fleet-north-cand1" in fleet.server.pool

    def test_zero_dropped_requests(self, fleet_run):
        fleet, results, _, stats = fleet_run
        warm_ticks = STEPS - HISTORY + 1
        # every warm stream-tick produced a served prediction...
        expected_primary = NUM_STREAMS * warm_ticks
        assert stats["requests_served"] >= expected_primary
        assert stats["route_fallbacks"] == 0
        # ...and every tick's results carry resolved forecasts for all streams
        for tick in results[HISTORY:]:
            assert len(tick) == NUM_STREAMS
            for _, step in tick:
                assert step.prediction is not None

    def test_refit_storm_budget_respected(self, fleet_run):
        """One regime shift over 32 streams must not launch 32 refits."""
        fleet, _, refit_calls, _ = fleet_run
        assert len(refit_calls) == 1
        assert fleet.coordinator.stats()["triggers"] == 1

    def test_control_region_never_drifts_to_quorum(self, fleet_run):
        fleet, _, _, _ = fleet_run
        south_drifted = [
            name
            for name, stream in fleet.streams.items()
            if stream.region == "south"
            and any(e.kind == "error_cusum" for e in stream.core.event_log)
        ]
        assert len(south_drifted) < fleet.coordinator.policy.quorum


def fleet_log(fleet, kind):
    return [event for event in fleet.event_log if event.kind == kind]


class _FireAt:
    """Deterministic detector: one coverage-breach event at a fixed step."""

    signal = "coverage"

    def __init__(self, at: int) -> None:
        self.at = int(at)

    def update(self, step, value):
        from repro.streaming import DriftEvent

        if step == self.at:
            return DriftEvent(kind="coverage_breach", step=step, value=0.0, threshold=0.0)
        return None


class TestBrokenCandidateTrial:
    def test_failing_candidate_aborts_trial_without_desyncing_the_fleet(self):
        """A refit whose predict raises must be rejected, not kill the tick."""
        network = grid_network(2, 2)

        class Broken:
            def predict(self, windows):
                raise RuntimeError("corrupt checkpoint")

        model = FixedSigmaPersistence(sigma=20.0)
        server = InferenceServer(model.predict, model_version="base", max_batch_size=64)
        steps = 30
        with server:
            fleet = StreamFleet(
                server, HISTORY, HORIZON,
                detector_factory=lambda: [_FireAt(at=15)],
                refit_fn=lambda region, recents: Broken(),
                refit_policy=FleetRefitPolicy(
                    quorum=2, window=20, cooldown=100, background=False
                ),
            )
            feeds = {
                f"c{i}": StreamingTrafficFeed(network, num_steps=steps, seed=i, config=FLAT)
                for i in range(4)
            }
            for name in feeds:
                fleet.add_stream(name, region="r")
            results = fleet.run({name: iter(feed) for name, feed in feeds.items()})
            # every tick completed and every stream stayed in lock-step
            assert len(results) == steps
            assert all(s.core.step == steps for s in fleet.streams.values())
            # the broken candidate failed its trial and was undeployed
            kinds = [event.kind for event in fleet.event_log]
            assert kinds.count("region_candidate_staged") == 1
            assert kinds.count("region_candidate_failed") == 1
            assert "region_candidate_promoted" not in kinds
            assert not any("cand" in name for name in server.pool.names())
            assert fleet.coordinator.trials == {}
            # the fleet kept serving after the failure
            assert results[-1]["c0"].prediction is not None
            assert server.stats["route_fallbacks"] == 0


class TestCoordinatorUnit:
    def test_quorum_and_window(self):
        coordinator = RefitCoordinator(
            lambda region, recents: FixedSigmaPersistence(1.0),
            policy=FleetRefitPolicy(quorum=3, window=10, background=False),
        )
        coordinator.note_drift("r", "a", 0)
        coordinator.note_drift("r", "b", 1)
        assert coordinator.maybe_trigger(2, lambda region: {}) == []
        coordinator.note_drift("r", "c", 2)
        assert coordinator.maybe_trigger(2, lambda region: {}) == ["r"]
        assert [r for r, _, _ in coordinator.take_finished()] == ["r"]

    def test_stale_drift_falls_out_of_the_window(self):
        coordinator = RefitCoordinator(
            lambda region, recents: None,
            policy=FleetRefitPolicy(quorum=2, window=5, background=False),
        )
        coordinator.note_drift("r", "a", 0)
        coordinator.note_drift("r", "b", 10)
        assert coordinator.maybe_trigger(10, lambda region: {}) == []

    def test_budget_caps_concurrent_regions(self):
        coordinator = RefitCoordinator(
            lambda region, recents: FixedSigmaPersistence(1.0),
            policy=FleetRefitPolicy(
                quorum=1, window=10, max_concurrent=1, mode="trial", background=False
            ),
        )
        coordinator.note_drift("r1", "a", 0)
        coordinator.note_drift("r2", "b", 0)
        triggered = coordinator.maybe_trigger(1, lambda region: {})
        assert len(triggered) == 1

    def test_cooldown_blocks_retrigger(self):
        coordinator = RefitCoordinator(
            lambda region, recents: FixedSigmaPersistence(1.0),
            policy=FleetRefitPolicy(quorum=1, window=100, cooldown=50, background=False),
        )
        coordinator.note_drift("r", "a", 0)
        assert coordinator.maybe_trigger(0, lambda region: {}) == ["r"]
        coordinator.take_finished()
        coordinator.note_drift("r", "a", 10)
        assert coordinator.maybe_trigger(10, lambda region: {}) == []
        coordinator.note_drift("r", "a", 60)
        assert coordinator.maybe_trigger(60, lambda region: {}) == ["r"]

    def test_refit_error_is_surfaced_not_raised(self):
        def failing(region, recents):
            raise RuntimeError("boom")

        coordinator = RefitCoordinator(
            failing, policy=FleetRefitPolicy(quorum=1, window=10, background=False)
        )
        coordinator.note_drift("r", "a", 0)
        coordinator.maybe_trigger(0, lambda region: {})
        ((region, model, error),) = coordinator.take_finished()
        assert region == "r" and model is None
        assert isinstance(error, RuntimeError)

    def test_state_round_trip(self):
        coordinator = RefitCoordinator(
            lambda region, recents: None,
            policy=FleetRefitPolicy(quorum=1, window=10, background=False),
        )
        coordinator.note_drift("r", "a", 3)
        coordinator.maybe_trigger(3, lambda region: {})
        state = coordinator.get_state()
        restored = RefitCoordinator(lambda region, recents: None).set_state(state)
        assert restored.get_state() == state
