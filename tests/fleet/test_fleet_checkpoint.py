"""Whole-fleet checkpoints: bit-identical per-stream state round trips."""

import numpy as np
import pytest

from repro.data import StreamingTrafficFeed
from repro.graph import grid_network
from repro.serving import InferenceServer
from repro.streaming import CoverageBreachDetector, PersistenceForecaster
from repro.fleet import StreamFleet
from repro.fleet.checkpoint import FLEET_FORMAT_VERSION

HISTORY, HORIZON = 8, 4
STEPS = 50
N = 6


def _server():
    model = PersistenceForecaster(horizon=HORIZON, sigma=20.0)
    return InferenceServer(model.predict, model_version="base", max_batch_size=64)


def _detectors():
    return [CoverageBreachDetector(nominal=0.95, tolerance=0.05, warmup=10, patience=5)]


def _run_fleet(server):
    network = grid_network(2, 2)
    fleet = StreamFleet(
        server, HISTORY, HORIZON,
        aci={"window": 300, "gamma": 0.02},
        detector_factory=_detectors,
    )
    feeds = {}
    for i in range(N):
        name = f"c{i}"
        fleet.add_stream(name, region="east" if i < 3 else "west", node=i % 4)
        feeds[name] = StreamingTrafficFeed(network, num_steps=STEPS, seed=i)
    fleet.run({name: iter(feed) for name, feed in feeds.items()})
    return fleet


class TestFleetCheckpoint:
    def test_round_trip_is_bit_identical(self, tmp_path):
        with _server() as server:
            fleet = _run_fleet(server)
            fleet.save(tmp_path / "ckpt")
            with _server() as server2:
                restored = StreamFleet.load(tmp_path / "ckpt", server2, detector_factory=_detectors)
                assert len(restored) == len(fleet)
                assert restored._tick == fleet._tick
                for name, stream in fleet.streams.items():
                    twin = restored[name]
                    assert twin.region == stream.region
                    assert twin.node == stream.node
                    assert twin.key == stream.key
                    original = stream.core.get_state()
                    copy = twin.core.get_state()
                    assert original["meta"] == copy["meta"]
                    assert set(original["arrays"]) == set(copy["arrays"])
                    for key, array in original["arrays"].items():
                        np.testing.assert_array_equal(
                            array, copy["arrays"][key], err_msg=f"{name}:{key}"
                        )

    def test_restored_fleet_resumes_with_warm_metrics(self, tmp_path):
        """A restarted fleet continues the stream rather than re-warming."""
        network = grid_network(2, 2)
        with _server() as server:
            fleet = _run_fleet(server)
            before = {
                name: stream.core.monitor.snapshot()
                for name, stream in fleet.streams.items()
            }
            fleet.save(tmp_path / "ckpt")
        with _server() as server2:
            restored = StreamFleet.load(tmp_path / "ckpt", server2, detector_factory=_detectors)
            for name, snapshot in before.items():
                assert restored[name].core.monitor.snapshot() == snapshot
            # the restored fleet keeps ticking (history re-warms, state warm)
            feed = StreamingTrafficFeed(network, num_steps=HISTORY + 2, seed=99)
            rows = list(feed)
            for row in rows:
                result = restored.tick({name: row for name in restored.streams})
            for name in restored.streams:
                assert restored[name].core.step == STEPS + len(rows)
                assert result[name].prediction is not None

    def test_event_logs_round_trip(self, tmp_path):
        with _server() as server:
            fleet = _run_fleet(server)
            fleet.save(tmp_path / "ckpt")
            with _server() as server2:
                restored = StreamFleet.load(tmp_path / "ckpt", server2, detector_factory=_detectors)
                assert restored.event_log.to_records() == fleet.event_log.to_records()
                for name, stream in fleet.streams.items():
                    assert (
                        restored[name].core.event_log.to_records()
                        == stream.core.event_log.to_records()
                    )

    def test_refit_window_survives_the_round_trip(self, tmp_path):
        from repro.streaming import StreamCore

        core = StreamCore(4, 2, refit_window=1000)
        for step in range(600):
            core.ingest(np.full(3, float(step)))
            core.advance()
        restored = StreamCore(4, 2).set_state(core.get_state())
        assert restored.refit_window == 1000
        assert restored._recent.maxlen == 1000

    def test_promoted_routes_are_re_pointed_on_load(self, tmp_path):
        """A reloaded fleet must actually route regions at their promoted
        deployments, not just report them in the snapshot."""
        with _server() as server:
            fleet = _run_fleet(server)
            server.deploy("east-cand", PersistenceForecaster(horizon=HORIZON, sigma=40.0))
            fleet._promote_region("east", "east-cand")
            assert fleet.router.routes["east"] == "east-cand"
            fleet.save(tmp_path / "ckpt")

            # same server still holds the deployment: routes come back
            restored = StreamFleet.load(tmp_path / "ckpt", server, detector_factory=_detectors)
            assert restored._region_deployment == {"east": "east-cand"}
            assert restored.router.routes.get("east") == "east-cand"

        # a fresh server without the deployment: the stale promotion record
        # is dropped instead of claiming a phantom model
        with _server() as server2:
            fresh = StreamFleet.load(tmp_path / "ckpt", server2, detector_factory=_detectors)
            assert fresh._region_deployment == {}
            assert "east" not in fresh.router.routes

    def test_wrong_format_version_rejected(self, tmp_path):
        import json

        with _server() as server:
            fleet = _run_fleet(server)
            fleet.save(tmp_path / "ckpt")
        manifest_path = tmp_path / "ckpt" / "fleet" / "checkpoint.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = FLEET_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with _server() as server2:
            with pytest.raises(ValueError, match="unsupported fleet checkpoint"):
                StreamFleet.load(tmp_path / "ckpt", server2, detector_factory=_detectors)

    def test_non_fleet_directory_rejected(self, tmp_path):
        from repro.utils.serialization import save_checkpoint

        save_checkpoint(tmp_path / "bogus" / "fleet", {"kind": "other"}, {})
        with _server() as server:
            with pytest.raises(ValueError, match="not a fleet checkpoint"):
                StreamFleet.load(tmp_path / "bogus", server)
