"""Regression: partial quorum evidence must survive a checkpoint round trip.

Found by the ``checkpoint/missing-attr`` analyzer rule: the coordinator's
``_drifted`` map (region -> stream -> drift step) was assigned in
``__init__`` but absent from ``get_state``, so a fleet killed one drift
short of quorum forgot every drift already noted and the coordinated
refit never fired after the restore — the fleet-level analogue of the
PR-6 detector-state bug.
"""

import numpy as np

from repro.fleet.coordinator import FleetRefitPolicy, RefitCoordinator


def _coordinator(**policy_kwargs):
    policy = FleetRefitPolicy(
        quorum=3, window=50, cooldown=10, background=False, mode="immediate",
        **policy_kwargs,
    )
    return RefitCoordinator(refit_fn=lambda region, recents: "model", policy=policy)


class TestDriftedSurvivesRoundTrip:
    def test_partial_quorum_is_in_the_state_dict(self):
        coordinator = _coordinator()
        coordinator.note_drift("north", "s1", step=10)
        coordinator.note_drift("north", "s2", step=12)
        state = coordinator.get_state()
        assert state["drifted"] == {"north": {"s1": 10, "s2": 12}}

    def test_restored_coordinator_remembers_drifted_streams(self):
        coordinator = _coordinator()
        coordinator.note_drift("north", "s1", step=10)
        coordinator.note_drift("north", "s2", step=12)

        restored = _coordinator()
        restored.set_state(coordinator.get_state())
        assert sorted(restored.drifted_streams("north", step=20)) == ["s1", "s2"]

    def test_quorum_completes_after_a_restore(self):
        """The kill lands one drift short of quorum; the third drift after
        the restore must trigger the coordinated refit."""
        coordinator = _coordinator()
        coordinator.note_drift("north", "s1", step=10)
        coordinator.note_drift("north", "s2", step=12)
        assert coordinator.maybe_trigger(14, lambda region: {}) == []

        restored = _coordinator()
        restored.set_state(coordinator.get_state())
        restored.note_drift("north", "s3", step=15)
        assert restored.maybe_trigger(16, lambda region: {}) == ["north"]

    def test_without_drifted_state_the_refit_was_lost(self):
        """Documents the pre-fix failure mode: dropping ``drifted`` from the
        snapshot (an old-format checkpoint) loses the partial quorum, and
        only streams drifting *after* the restore count."""
        coordinator = _coordinator()
        coordinator.note_drift("north", "s1", step=10)
        coordinator.note_drift("north", "s2", step=12)
        old_format = {
            key: value
            for key, value in coordinator.get_state().items()
            if key != "drifted"
        }

        restored = _coordinator()
        restored.set_state(old_format)
        restored.note_drift("north", "s3", step=15)
        assert restored.maybe_trigger(16, lambda region: {}) == []

    def test_counters_and_cooldown_still_round_trip(self):
        coordinator = _coordinator()
        coordinator.note_drift("north", "s1", step=1)
        coordinator.note_drift("north", "s2", step=2)
        coordinator.note_drift("north", "s3", step=3)
        assert coordinator.maybe_trigger(4, lambda region: {}) == ["north"]

        restored = _coordinator()
        restored.set_state(coordinator.get_state())
        # Cooldown carries over: re-noting drifts right away cannot re-trigger.
        for stream in ("s1", "s2", "s3"):
            restored.note_drift("north", stream, step=6)
        assert restored.maybe_trigger(7, lambda region: {}) == []
        state = restored.get_state()
        assert state["triggers"] == 1
        assert state["last_trigger"] == {"north": 4}
