"""Tests for the declarative ForecasterSpec."""

import pytest

from repro.api import ForecasterSpec
from repro.core import TrainingConfig


class TestConstruction:
    def test_defaults(self):
        spec = ForecasterSpec()
        assert spec.method == "DeepSTUQ"
        assert spec.backbone == "AGCRN"
        assert spec.training == {}

    def test_backbone_alias_canonicalized(self):
        assert ForecasterSpec(method="Point", backbone="GWN").backbone == "GWNet"

    def test_unknown_method_rejected(self):
        with pytest.raises(KeyError, match="unknown UQ method"):
            ForecasterSpec(method="Oracle")

    def test_unknown_backbone_rejected(self):
        with pytest.raises(KeyError, match="unknown backbone"):
            ForecasterSpec(backbone="Transformer")

    def test_unknown_training_field_rejected(self):
        with pytest.raises(ValueError, match="unknown training fields"):
            ForecasterSpec(training={"warmup": 5})

    def test_training_config_materialization(self):
        spec = ForecasterSpec(training={"epochs": 3, "history": 6})
        config = spec.training_config()
        assert isinstance(config, TrainingConfig)
        assert config.epochs == 3 and config.history == 6
        assert config.horizon == TrainingConfig().horizon  # untouched default


class TestRoundTrip:
    def test_json_round_trip(self):
        spec = ForecasterSpec(
            method="MCDO",
            backbone="DCRNN",
            method_kwargs={},
            backbone_kwargs={"hidden_dim": 8},
            training={"epochs": 2, "seed": 7},
        )
        assert ForecasterSpec.from_json(spec.to_json()) == spec

    def test_dict_round_trip(self):
        spec = ForecasterSpec(method="DeepEnsemble", method_kwargs={"num_members": 2})
        assert ForecasterSpec.from_dict(spec.to_dict()) == spec

    def test_flat_training_keys_folded(self):
        spec = ForecasterSpec.from_dict(
            {"method": "MVE", "backbone": "AGCRN", "epochs": 4, "history": 6}
        )
        assert spec.training == {"epochs": 4, "history": 6}

    def test_flat_and_nested_training_merge(self):
        spec = ForecasterSpec.from_dict({"training": {"epochs": 4}, "seed": 9})
        assert spec.training == {"epochs": 4, "seed": 9}

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown spec keys"):
            ForecasterSpec.from_dict({"method": "MVE", "optimizer_name": "adam"})

    def test_from_dict_passthrough(self):
        spec = ForecasterSpec(method="Point")
        assert ForecasterSpec.from_dict(spec) is spec
