"""Forecaster facade tests: spec-driven fitting and full-state checkpoints.

The core guarantee: for every registered UQ method, ``save()`` -> ``load()``
-> ``predict`` is bit-identical to the in-memory forecaster — including the
scaler statistics, calibration temperature, conformal quantiles, ensemble
members and FGE snapshots.
"""

import numpy as np
import pytest

from repro.api import Forecaster, ForecasterSpec
from repro.core import TrainingConfig
from repro.data import SlidingWindowDataset, TrafficData, generate_traffic, train_val_test_split
from repro.graph import grid_network
from repro.uq import available_methods, create_method

NUM_NODES = 9
HISTORY = 4
HORIZON = 2

TRAINING = {
    "history": HISTORY, "horizon": HORIZON, "hidden_dim": 6, "embed_dim": 2,
    "epochs": 2, "batch_size": 64, "mc_samples": 2, "seed": 0,
}

#: Per-method spec kwargs keeping the expensive methods cheap (JSON-able).
METHOD_KWARGS = {
    "FGE": {"num_snapshots": 2, "cycle_epochs": 1},
    "DeepEnsemble": {"num_members": 2},
    "DeepSTUQ": {"awa_config": {"epochs": 2}},
}


@pytest.fixture(scope="module")
def splits():
    network = grid_network(3, 3)
    values = generate_traffic(network, 300, seed=5)
    traffic = TrafficData(name="api-test", values=values, network=network)
    return train_val_test_split(traffic)


@pytest.fixture(scope="module")
def test_windows(splits):
    _, _, test = splits
    dataset = SlidingWindowDataset(test.slice_steps(0, 40), history=HISTORY, horizon=HORIZON)
    return dataset.arrays()[0]


@pytest.fixture(scope="module")
def fitted(splits):
    """One fitted facade per registered method (shared across tests)."""
    train, val, _ = splits
    forecasters = {}
    for name in available_methods():
        spec = ForecasterSpec(
            method=name, method_kwargs=METHOD_KWARGS.get(name, {}), training=TRAINING
        )
        forecasters[name] = Forecaster.from_spec(spec).fit(train, val)
    return forecasters


def _assert_results_identical(a, b):
    assert np.array_equal(a.mean, b.mean)
    assert np.array_equal(a.aleatoric_var, b.aleatoric_var)
    assert np.array_equal(a.epistemic_var, b.epistemic_var)


class TestFacade:
    def test_facade_matches_direct_method(self, splits, test_windows):
        """Facade fitting is bit-identical to the low-level create_method path."""
        train, val, _ = splits
        facade = Forecaster.from_spec({"method": "MVE", "training": TRAINING})
        facade.fit(train, val)
        direct = create_method("MVE", NUM_NODES, config=TrainingConfig(**TRAINING))
        direct.fit(train, val)
        _assert_results_identical(facade.predict(test_windows), direct.predict(test_windows))

    def test_num_nodes_inferred_from_data(self, fitted):
        assert fitted["Point"].num_nodes == NUM_NODES

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="must be fitted"):
            Forecaster.from_spec({"method": "Point"}).predict(np.zeros((1, HISTORY, NUM_NODES)))

    def test_save_before_fit_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="must be fitted"):
            Forecaster.from_spec({"method": "Point"}).save(tmp_path)

    def test_predict_on(self, fitted, splits):
        _, _, test = splits
        result, targets = fitted["MVE"].predict_on(test.slice_steps(0, 40))
        assert result.mean.shape == targets.shape

    def test_mismatched_num_nodes_rejected(self, splits):
        train, val, _ = splits
        forecaster = Forecaster.from_spec({"method": "Point"}, num_nodes=4)
        with pytest.raises(ValueError, match="nodes"):
            forecaster.fit(train, val)


class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("name", sorted({"Point", "Quantile", "MVE", "MCDO",
                                             "Combined", "TS", "FGE", "Conformal",
                                             "CFRNN", "DeepSTUQ", "DeepEnsemble"}))
    def test_bit_identical_after_reload(self, name, fitted, test_windows, tmp_path):
        forecaster = fitted[name]
        directory = tmp_path / name
        forecaster.save(directory)
        restored = Forecaster.load(directory)
        _assert_results_identical(
            forecaster.predict(test_windows), restored.predict(test_windows)
        )

    def test_registry_fully_covered(self, fitted):
        """Every registered method is exercised by the round-trip test above."""
        assert set(fitted) == set(available_methods())

    def test_scaler_restored_exactly(self, fitted, tmp_path):
        forecaster = fitted["MVE"]
        forecaster.save(tmp_path / "mve")
        restored = Forecaster.load(tmp_path / "mve")
        assert restored.method.scaler.mean_ == forecaster.method.scaler.mean_
        assert restored.method.scaler.std_ == forecaster.method.scaler.std_

    def test_temperature_restored_exactly(self, fitted, tmp_path):
        forecaster = fitted["TS"]
        forecaster.save(tmp_path / "ts")
        restored = Forecaster.load(tmp_path / "ts")
        assert restored.method.calibrator.temperature == forecaster.method.calibrator.temperature
        assert restored.method.calibrator.fitted

    def test_deepstuq_temperature_restored(self, fitted, tmp_path):
        forecaster = fitted["DeepSTUQ"]
        forecaster.save(tmp_path / "deepstuq")
        restored = Forecaster.load(tmp_path / "deepstuq")
        assert restored.method.temperature == forecaster.method.temperature

    def test_conformal_quantile_restored(self, fitted, tmp_path):
        forecaster = fitted["Conformal"]
        forecaster.save(tmp_path / "conformal")
        restored = Forecaster.load(tmp_path / "conformal")
        assert restored.method.conformal_quantile == forecaster.method.conformal_quantile

    def test_ensemble_members_restored(self, fitted, tmp_path):
        forecaster = fitted["DeepEnsemble"]
        forecaster.save(tmp_path / "ensemble")
        restored = Forecaster.load(tmp_path / "ensemble")
        assert len(restored.method.members) == len(forecaster.method.members)
        for ours, theirs in zip(forecaster.method.members, restored.method.members):
            for key, value in ours.state_dict().items():
                assert np.array_equal(value, theirs.state_dict()[key])

    def test_spec_round_trips_through_checkpoint(self, fitted, tmp_path):
        forecaster = fitted["MCDO"]
        forecaster.save(tmp_path / "mcdo")
        assert Forecaster.load(tmp_path / "mcdo").spec == forecaster.spec

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Forecaster.load(tmp_path / "nope")


class TestAlternativeBackbones:
    def test_dcrnn_mcdo_acceptance_flow(self, splits, test_windows, tmp_path):
        """The ISSUE acceptance example: DCRNN backbone + MCDO method, flat spec."""
        train, val, _ = splits
        forecaster = Forecaster.from_spec(
            {"backbone": "DCRNN", "method": "MCDO", **TRAINING, "hidden_dim": 6}
        )
        forecaster.fit(train, val)
        forecaster.save(tmp_path / "dcrnn-mcdo")
        restored = Forecaster.load(tmp_path / "dcrnn-mcdo")
        _assert_results_identical(
            forecaster.predict(test_windows), restored.predict(test_windows)
        )
        # The adjacency travelled inside the checkpoint, not the dataset.
        assert restored.adjacency is not None
        assert np.array_equal(restored.adjacency, train.network.adjacency_matrix())

    def test_stgcn_mve_head_adapter_round_trip(self, splits, test_windows, tmp_path):
        """A heads-requiring method over a point-only backbone (adapter path)."""
        train, val, _ = splits
        forecaster = Forecaster.from_spec(
            {"backbone": "STGCN", "method": "MVE", "training": TRAINING}
        )
        forecaster.fit(train, val)
        result = forecaster.predict(test_windows)
        assert np.all(result.aleatoric_var >= 0)
        forecaster.save(tmp_path / "stgcn-mve")
        _assert_results_identical(
            result, Forecaster.load(tmp_path / "stgcn-mve").predict(test_windows)
        )

    def test_deepstuq_pipeline_over_stgcn(self, splits, test_windows, tmp_path):
        """The full 3-stage pipeline (AWA + calibration) over a swapped backbone."""
        train, val, _ = splits
        forecaster = Forecaster.from_spec({
            "method": "DeepSTUQ", "backbone": "STGCN",
            "method_kwargs": {"awa_config": {"epochs": 2}},
            "training": TRAINING,
        })
        forecaster.fit(train, val)
        assert forecaster.method.temperature > 0
        forecaster.save(tmp_path / "deepstuq-stgcn")
        _assert_results_identical(
            forecaster.predict(test_windows),
            Forecaster.load(tmp_path / "deepstuq-stgcn").predict(test_windows),
        )

    def test_untrainable_backbones_rejected_up_front(self):
        """Naive references have no parameters; methods must refuse them early."""
        from repro.uq import create_method

        with pytest.raises(ValueError, match="no trainable parameters"):
            create_method("MCDO", NUM_NODES, backbone="LastValue")
        with pytest.raises(ValueError, match="no trainable parameters"):
            Forecaster.from_spec({"method": "Point", "backbone": "HistoricalAverage"},
                                 num_nodes=NUM_NODES)._build_method()

    def test_cfrnn_rejects_backbone_overrides(self):
        """CFRNN never uses the shared backbone, so overriding it must fail loudly."""
        from repro.uq import create_method

        with pytest.raises(ValueError, match="graph-free GRU"):
            create_method(
                "CFRNN", NUM_NODES, backbone="DCRNN", adjacency=np.eye(NUM_NODES)
            )

    def test_adjacency_required_without_dataset(self):
        forecaster = Forecaster.from_spec(
            {"backbone": "DCRNN", "method": "Point"}, num_nodes=NUM_NODES
        )
        with pytest.raises(RuntimeError, match="adjacency"):
            forecaster._build_method()
