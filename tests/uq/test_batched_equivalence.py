"""Batched MC inference must match the sequential loop exactly.

For every method in ``uq/registry.py`` the vectorized (sample-folded) path
and the looped reference path are run with the same seed and compared to
1e-10 on all three :class:`PredictionResult` arrays.  Methods without MC
sampling are covered too: their predictions must be deterministic across
repeated calls, which is what keeps the serving cache coherent.
"""

import inspect

import numpy as np
import pytest

from repro.core import TrainingConfig
from repro.core.awa import AWAConfig
from repro.core.inference import BatchedPredictor, monte_carlo_forecast
from repro.data import SlidingWindowDataset, TrafficData, generate_traffic, train_val_test_split
from repro.data.scalers import StandardScaler
from repro.graph import grid_network
from repro.models.agcrn import AGCRN
from repro.uq import available_methods, create_method

NUM_NODES = 4
HISTORY = 4
HORIZON = 2


def _tiny_config(**overrides):
    params = dict(
        history=HISTORY, horizon=HORIZON, hidden_dim=4, embed_dim=2,
        epochs=2, batch_size=64, mc_samples=4, seed=3,
    )
    params.update(overrides)
    return TrainingConfig(**params)


def _method_kwargs(name):
    if name == "FGE":
        return {"num_snapshots": 2, "cycle_epochs": 1}
    if name == "DeepEnsemble":
        return {"num_members": 2}
    if name == "DeepSTUQ":
        return {"awa_config": AWAConfig(epochs=2)}
    return {}


@pytest.fixture(scope="module")
def splits():
    network = grid_network(2, 2)
    values = generate_traffic(network, 320, seed=5)
    traffic = TrafficData(name="equiv-test", values=values, network=network)
    return train_val_test_split(traffic)


@pytest.fixture(scope="module")
def test_windows(splits):
    _, _, test = splits
    dataset = SlidingWindowDataset(test.slice_steps(0, 40), history=HISTORY, horizon=HORIZON)
    return dataset.arrays()[0]


@pytest.fixture(scope="module")
def fitted_methods(splits):
    train, val, _ = splits
    fitted = {}
    for name in available_methods():
        method = create_method(name, NUM_NODES, config=_tiny_config(), **_method_kwargs(name))
        method.fit(train, val)
        fitted[name] = method
    return fitted


def _assert_results_equal(a, b):
    np.testing.assert_allclose(a.mean, b.mean, rtol=0.0, atol=1e-10)
    np.testing.assert_allclose(a.aleatoric_var, b.aleatoric_var, rtol=0.0, atol=1e-10)
    np.testing.assert_allclose(a.epistemic_var, b.epistemic_var, rtol=0.0, atol=1e-10)


class TestRegistryEquivalence:
    @pytest.mark.parametrize("name", [
        "Point", "Quantile", "MVE", "MCDO", "Combined", "TS", "FGE", "Conformal",
        "CFRNN", "DeepSTUQ", "DeepEnsemble",
    ])
    def test_batched_matches_sequential(self, name, fitted_methods, test_windows):
        method = fitted_methods[name]
        batched = method.predict(test_windows)
        if "vectorized" in inspect.signature(method.predict).parameters:
            sequential = method.predict(test_windows, vectorized=False)
        else:
            # No sampling axis to fold: the contract is plain determinism.
            sequential = method.predict(test_windows)
        _assert_results_equal(batched, sequential)


class TestEngineEquivalence:
    """Direct engine-level checks on a raw heteroscedastic AGCRN."""

    @pytest.fixture(scope="class")
    def model_scaler_inputs(self):
        rng = np.random.default_rng(0)
        model = AGCRN(
            num_nodes=NUM_NODES, history=HISTORY, horizon=HORIZON, hidden_dim=4,
            embed_dim=2, encoder_dropout=0.2, decoder_dropout=0.2,
            heads=("mean", "log_var"), rng=rng,
        )
        scaler = StandardScaler().fit(np.array([0.0, 100.0]))
        inputs = rng.uniform(-1.0, 1.0, size=(17, HISTORY, NUM_NODES))
        return model, scaler, inputs

    @pytest.mark.parametrize("batch_size", [256, 5])
    @pytest.mark.parametrize("num_samples", [1, 4])
    def test_folded_equals_looped_across_chunkings(
        self, model_scaler_inputs, batch_size, num_samples
    ):
        model, scaler, inputs = model_scaler_inputs
        kwargs = dict(num_samples=num_samples, batch_size=batch_size, temperature=1.3)
        a = monte_carlo_forecast(
            model, inputs, scaler, rng=np.random.default_rng(9), vectorized=True, **kwargs
        )
        b = monte_carlo_forecast(
            model, inputs, scaler, rng=np.random.default_rng(9), vectorized=False, **kwargs
        )
        _assert_results_equal(a, b)

    def test_single_sample_has_finite_zero_epistemic(self, model_scaler_inputs):
        model, scaler, inputs = model_scaler_inputs
        result = monte_carlo_forecast(
            model, inputs, scaler, num_samples=1, rng=np.random.default_rng(2)
        )
        assert np.all(np.isfinite(result.std))
        assert np.allclose(result.epistemic_var, 0.0)

    def test_predictor_restores_model_state(self, model_scaler_inputs):
        model, scaler, inputs = model_scaler_inputs
        model.train()
        predictor = BatchedPredictor(model, scaler)
        predictor.monte_carlo(inputs, num_samples=2, rng=np.random.default_rng(0))
        assert model.training
        assert not model.encoder_dropout.mc_active
        assert model.encoder_dropout._fold_streams is None

    def test_invalid_args(self, model_scaler_inputs):
        model, scaler, inputs = model_scaler_inputs
        with pytest.raises(ValueError):
            BatchedPredictor(model, scaler, temperature=0.0)
        with pytest.raises(ValueError):
            BatchedPredictor(model, scaler).monte_carlo(inputs, num_samples=0)
