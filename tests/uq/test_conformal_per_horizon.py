"""Per-horizon mode of the locally-weighted conformal method."""

import numpy as np
import pytest

from repro.api import Forecaster
from repro.core.trainer import TrainingConfig
from repro.data import TrafficData, generate_traffic, train_val_test_split
from repro.graph import grid_network
from repro.metrics import Z_95
from repro.uq.conformal import LocallyWeightedConformal

NUM_NODES = 9
TRAINING = {
    "history": 4, "horizon": 3, "hidden_dim": 6, "embed_dim": 2,
    "epochs": 1, "batch_size": 64, "seed": 0,
}


@pytest.fixture(scope="module")
def splits():
    network = grid_network(3, 3)
    values = generate_traffic(network, 300, seed=11)
    traffic = TrafficData(name="conformal-test", values=values, network=network)
    return train_val_test_split(traffic)


@pytest.fixture(scope="module")
def fitted_per_horizon(splits):
    train, val, _ = splits
    method = LocallyWeightedConformal(
        NUM_NODES, config=TrainingConfig(**TRAINING), per_horizon=True
    )
    return method.fit(train, val)


class TestPerHorizonQuantiles:
    def test_quantile_is_per_step_ahead(self, fitted_per_horizon):
        q = fitted_per_horizon.conformal_quantile
        assert isinstance(q, np.ndarray)
        assert q.shape == (TRAINING["horizon"],)
        assert np.all(q > 0.0)

    def test_scalar_mode_unchanged_default(self, splits):
        train, val, _ = splits
        method = LocallyWeightedConformal(NUM_NODES, config=TrainingConfig(**TRAINING))
        method.fit(train, val)
        assert isinstance(method.conformal_quantile, float)

    def test_predict_broadcasts_per_horizon(self, fitted_per_horizon, splits):
        _, _, test = splits
        result, _ = fitted_per_horizon.predict_on(test.slice_steps(0, 30))
        q = fitted_per_horizon.conformal_quantile
        # Interval half-width per horizon h must equal q[h] * sigma(x).
        base = LocallyWeightedConformal.__mro__[1].predict(  # MVE.predict
            fitted_per_horizon, fitted_per_horizon._windows(test.slice_steps(0, 30))[0]
        )
        np.testing.assert_allclose(
            result.std * Z_95,
            q.reshape(1, -1, 1) * base.aleatoric_std,
            rtol=1e-10,
        )

    def test_per_horizon_matches_manual_quantiles(self, fitted_per_horizon, splits):
        """Recompute the per-step-ahead quantiles directly from the scores."""
        train, val, _ = splits
        inputs, targets = fitted_per_horizon._windows(val)
        base = LocallyWeightedConformal.__mro__[1].predict(fitted_per_horizon, inputs)
        sigma = np.maximum(base.aleatoric_std, 1e-6)
        scores = np.abs(targets - base.mean) / sigma
        n = scores.shape[0] * scores.shape[2]
        level = min(np.ceil((n + 1) * 0.95) / n, 1.0)
        for h in range(TRAINING["horizon"]):
            expected = np.quantile(scores[:, h, :].reshape(-1), level)
            assert fitted_per_horizon.conformal_quantile[h] == pytest.approx(expected)


class TestPerHorizonState:
    def test_get_set_state_roundtrip(self, fitted_per_horizon):
        state = fitted_per_horizon.get_state()
        assert state["meta"]["per_horizon"] is True
        assert "conformal.quantiles" in state["arrays"]
        clone = LocallyWeightedConformal(
            NUM_NODES, config=TrainingConfig(**TRAINING), per_horizon=True
        )
        clone.set_state(state)
        np.testing.assert_array_equal(
            clone.conformal_quantile, fitted_per_horizon.conformal_quantile
        )

    def test_mode_mismatch_rejected(self, fitted_per_horizon):
        state = fitted_per_horizon.get_state()
        scalar = LocallyWeightedConformal(NUM_NODES, config=TrainingConfig(**TRAINING))
        with pytest.raises(ValueError, match="per_horizon"):
            scalar.set_state(state)

    def test_directory_checkpoint_roundtrip(self, splits, tmp_path):
        """Per-horizon state round-trips through Forecaster directory checkpoints."""
        train, val, test = splits
        forecaster = Forecaster.from_spec(
            {
                "method": "Conformal",
                "method_kwargs": {"per_horizon": True},
                "training": TRAINING,
            }
        ).fit(train, val)
        forecaster.save(tmp_path / "ckpt")
        restored = Forecaster.load(tmp_path / "ckpt")
        np.testing.assert_array_equal(
            restored.method.conformal_quantile, forecaster.method.conformal_quantile
        )
        windows = forecaster.method._windows(test.slice_steps(0, 20))[0]
        direct = forecaster.predict(windows)
        reloaded = restored.predict(windows)
        np.testing.assert_array_equal(direct.mean, reloaded.mean)
        np.testing.assert_array_equal(direct.total_var, reloaded.total_var)
