"""Integration-style tests: every UQ method trains on a tiny dataset and
produces well-formed probabilistic forecasts."""

import numpy as np
import pytest

from repro.core import TrainingConfig
from repro.core.awa import AWAConfig
from repro.data import TrafficData, generate_traffic, train_val_test_split
from repro.graph import grid_network
from repro.metrics import picp, point_metrics, uncertainty_metrics
from repro.uq import (
    CFRNN,
    DeepSTUQ,
    METHOD_INFO,
    available_methods,
    create_method,
    method_info,
)
from repro.uq.registry import MethodInfo

NUM_NODES = 9
HISTORY = 6
HORIZON = 3


def _tiny_config(**overrides):
    params = dict(
        history=HISTORY, horizon=HORIZON, hidden_dim=8, embed_dim=3,
        epochs=10, batch_size=64, mc_samples=3, seed=0,
    )
    params.update(overrides)
    return TrainingConfig(**params)


@pytest.fixture(scope="module")
def splits():
    network = grid_network(3, 3)
    values = generate_traffic(network, 800, seed=11)
    traffic = TrafficData(name="uq-test", values=values, network=network)
    return train_val_test_split(traffic)


@pytest.fixture(scope="module")
def test_windows(splits):
    _, _, test = splits
    from repro.data import SlidingWindowDataset

    dataset = SlidingWindowDataset(test.slice_steps(0, 120), history=HISTORY, horizon=HORIZON)
    return dataset.arrays()


def _method_kwargs(name):
    """Keep the expensive methods cheap in the unit tests."""
    if name == "FGE":
        return {"num_snapshots": 2, "cycle_epochs": 1}
    if name == "DeepEnsemble":
        return {"num_members": 2}
    if name == "DeepSTUQ":
        return {"awa_config": AWAConfig(epochs=2)}
    return {}


@pytest.fixture(scope="module")
def fitted_methods(splits):
    train, val, _ = splits
    fitted = {}
    for name in available_methods():
        method = create_method(name, NUM_NODES, config=_tiny_config(), **_method_kwargs(name))
        method.fit(train, val)
        fitted[name] = method
    return fitted


class TestRegistry:
    def test_paper_methods_present(self):
        expected = {
            "Point", "Quantile", "MVE", "MCDO", "Combined", "TS", "FGE", "Conformal",
            "CFRNN", "DeepSTUQ",
        }
        assert expected.issubset(set(available_methods()))
        assert set(available_methods(paper_only=True)) == expected

    def test_table2_taxonomy(self):
        assert method_info("Point").paradigm == "deterministic"
        assert method_info("Quantile").paradigm == "distribution-free"
        assert method_info("MVE").uncertainty_type == "aleatoric"
        assert method_info("MCDO").uncertainty_type == "epistemic"
        assert method_info("Combined").uncertainty_type == "aleatoric + epistemic"
        assert method_info("FGE").paradigm == "ensembling"
        assert method_info("DeepSTUQ").paradigm == "Bayesian + ensembling"

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            method_info("NotAMethod")
        with pytest.raises(KeyError):
            create_method("NotAMethod", NUM_NODES)

    def test_info_entries_are_frozen(self):
        info = method_info("MVE")
        assert isinstance(info, MethodInfo)
        with pytest.raises(AttributeError):
            info.name = "other"

    def test_class_attributes_match_registry(self):
        for name, info in METHOD_INFO.items():
            assert info.factory.name == name
            assert info.factory.paradigm == info.paradigm
            assert info.factory.uncertainty_type == info.uncertainty_type


class TestAllMethodsProduceValidForecasts:
    @pytest.mark.parametrize("name", [
        "Point", "Quantile", "MVE", "MCDO", "Combined", "TS", "FGE", "Conformal",
        "CFRNN", "DeepSTUQ", "DeepEnsemble",
    ])
    def test_forecast_shape_and_finiteness(self, name, fitted_methods, test_windows):
        inputs, targets = test_windows
        result = fitted_methods[name].predict(inputs)
        assert result.mean.shape == targets.shape
        assert np.all(np.isfinite(result.mean))
        assert np.all(np.isfinite(result.total_var))
        assert np.all(result.total_var >= 0.0)

    @pytest.mark.parametrize("name", [
        "Quantile", "MVE", "Combined", "TS", "Conformal", "CFRNN", "DeepSTUQ", "DeepEnsemble",
    ])
    def test_aleatoric_aware_methods_have_positive_intervals(self, name, fitted_methods, test_windows):
        inputs, _ = test_windows
        result = fitted_methods[name].predict(inputs)
        lower, upper = result.interval()
        assert np.all(upper > lower)

    def test_point_method_has_no_uncertainty(self, fitted_methods, test_windows):
        inputs, _ = test_windows
        result = fitted_methods["Point"].predict(inputs)
        assert np.allclose(result.total_var, 0.0)

    def test_mcdo_has_only_epistemic(self, fitted_methods, test_windows):
        inputs, _ = test_windows
        result = fitted_methods["MCDO"].predict(inputs)
        assert np.allclose(result.aleatoric_var, 0.0)
        assert result.epistemic_var.mean() > 0.0

    def test_fge_has_only_epistemic(self, fitted_methods, test_windows):
        inputs, _ = test_windows
        result = fitted_methods["FGE"].predict(inputs)
        assert np.allclose(result.aleatoric_var, 0.0)
        assert result.epistemic_var.mean() > 0.0

    def test_mve_has_only_aleatoric(self, fitted_methods, test_windows):
        inputs, _ = test_windows
        result = fitted_methods["MVE"].predict(inputs)
        assert np.allclose(result.epistemic_var, 0.0)
        assert result.aleatoric_var.mean() > 0.0

    def test_deepstuq_has_both_uncertainties(self, fitted_methods, test_windows):
        inputs, _ = test_windows
        result = fitted_methods["DeepSTUQ"].predict(inputs)
        assert result.aleatoric_var.mean() > 0.0
        assert result.epistemic_var.mean() > 0.0

    def test_aleatoric_is_substantial_for_deepstuq(self, fitted_methods, test_windows):
        """Paper Fig. 9: traffic uncertainty has a large aleatoric component.

        In the paper's full-scale setting the aleatoric part dominates; on the
        deliberately tiny test fixture (small hidden width, few epochs) the MC
        dropout spread is comparatively large, so the test only asserts that
        the aleatoric share of the total variance is substantial.  The full
        dominance claim is exercised by the Fig. 9 benchmark configuration.
        """
        inputs, _ = test_windows
        result = fitted_methods["DeepSTUQ"].predict(inputs)
        aleatoric_share = result.aleatoric_var.mean() / result.total_var.mean()
        assert aleatoric_share > 0.3

    def test_epistemic_only_methods_undercover(self, fitted_methods, test_windows):
        """Paper Table IV: MCDO / FGE intervals drastically under-cover."""
        inputs, targets = test_windows
        for name in ("MCDO", "FGE"):
            result = fitted_methods[name].predict(inputs)
            lower, upper = result.interval()
            assert picp(targets, lower, upper) < 90.0

    def test_aleatoric_methods_cover_reasonably(self, fitted_methods, test_windows):
        """Methods that model the data noise should cover much better than MCDO."""
        inputs, targets = test_windows
        mcdo_coverage = picp(targets, *fitted_methods["MCDO"].predict(inputs).interval())
        for name in ("MVE", "Combined", "DeepSTUQ", "Conformal"):
            coverage = picp(targets, *fitted_methods[name].predict(inputs).interval())
            assert coverage > mcdo_coverage

    def test_predict_before_fit_raises(self):
        method = create_method("MVE", NUM_NODES, config=_tiny_config())
        with pytest.raises(RuntimeError):
            method.predict(np.zeros((1, HISTORY, NUM_NODES)))

    def test_predict_on_returns_targets(self, fitted_methods, splits):
        _, _, test = splits
        result, targets = fitted_methods["MVE"].predict_on(test.slice_steps(0, 100))
        assert result.mean.shape == targets.shape


class TestSpecificBehaviours:
    def test_ts_changes_variance_scale_relative_to_mve(self, fitted_methods, test_windows):
        inputs, _ = test_windows
        mve_var = fitted_methods["MVE"].predict(inputs).aleatoric_var.mean()
        ts = fitted_methods["TS"]
        ts_var = ts.predict(inputs).aleatoric_var.mean()
        assert ts.calibrator.fitted
        expected = mve_var / (ts.calibrator.temperature ** 2)
        assert ts_var == pytest.approx(expected, rel=0.35)

    def test_conformal_quantile_positive(self, fitted_methods):
        assert fitted_methods["Conformal"].conformal_quantile > 0.0

    def test_cfrnn_horizon_widths_shape(self, fitted_methods):
        widths = fitted_methods["CFRNN"].horizon_widths
        assert widths.shape == (HORIZON,)
        assert np.all(widths > 0.0)

    def test_cfrnn_interval_constant_across_nodes(self, fitted_methods, test_windows):
        inputs, _ = test_windows
        result = fitted_methods["CFRNN"].predict(inputs)
        stds = result.std
        assert np.allclose(stds[:, 0, :], stds[0, 0, 0])

    def test_deepstuq_single_pass_matches_shapes(self, fitted_methods, test_windows):
        inputs, targets = test_windows
        result = fitted_methods["DeepSTUQ"].predict_single_pass(inputs)
        assert result.mean.shape == targets.shape
        assert np.allclose(result.epistemic_var, 0.0)

    def test_deepstuq_temperature_fitted(self, fitted_methods):
        assert fitted_methods["DeepSTUQ"].temperature > 0.0
        assert fitted_methods["DeepSTUQ"].temperature != 1.0

    def test_deep_ensemble_member_count(self, fitted_methods):
        assert len(fitted_methods["DeepEnsemble"].members) == 2

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            create_method("FGE", NUM_NODES, config=_tiny_config(), num_snapshots=1)
        with pytest.raises(ValueError):
            create_method("DeepEnsemble", NUM_NODES, config=_tiny_config(), num_members=1)
        with pytest.raises(ValueError):
            create_method("Conformal", NUM_NODES, config=_tiny_config(), significance=2.0)
        with pytest.raises(ValueError):
            CFRNN(NUM_NODES, config=_tiny_config(), significance=0.0)

    def test_learned_methods_beat_historical_average(self, fitted_methods, test_windows):
        """Sanity: the trained backbone should beat a naive baseline on MAE."""
        from repro.models import HistoricalAverage

        inputs, targets = test_windows
        naive = HistoricalAverage(NUM_NODES, HISTORY, HORIZON).predict(inputs)
        naive_mae = point_metrics(naive, targets)["MAE"]
        deepstuq_mae = point_metrics(fitted_methods["DeepSTUQ"].predict(inputs).mean, targets)["MAE"]
        assert deepstuq_mae < naive_mae * 1.2


class TestNativeBounds:
    """Quantile/CFRNN carry their native (possibly asymmetric) interval bounds."""

    Z95 = 1.959963984540054

    @pytest.mark.parametrize("name", ["Quantile", "CFRNN"])
    def test_bound_carrying_methods(self, name, fitted_methods, test_windows):
        inputs, _ = test_windows
        result = fitted_methods[name].predict(inputs)
        assert result.has_native_bounds
        assert result.lower.shape == result.mean.shape
        assert np.all(result.lower <= result.upper)
        # the pseudo std folds exactly the native width, so the Gaussian
        # interface emits an interval of the same width
        np.testing.assert_allclose(
            result.std, (result.upper - result.lower) / (2.0 * self.Z95)
        )

    @pytest.mark.parametrize("name", ["Point", "MVE", "MCDO", "DeepSTUQ"])
    def test_gaussian_methods_have_no_native_bounds(self, name, fitted_methods, test_windows):
        inputs, _ = test_windows
        assert not fitted_methods[name].predict(inputs).has_native_bounds

    def test_quantile_bounds_need_not_be_symmetric(self, fitted_methods, test_windows):
        inputs, _ = test_windows
        result = fitted_methods["Quantile"].predict(inputs)
        below = result.mean - result.lower
        above = result.upper - result.mean
        # pinball-loss heads place the bounds independently of the median;
        # exact symmetry everywhere would mean the bounds are derived, not native
        assert not np.allclose(below, above)

    def test_cfrnn_bounds_match_per_horizon_widths(self, fitted_methods, test_windows):
        inputs, _ = test_windows
        method = fitted_methods["CFRNN"]
        result = method.predict(inputs)
        widths = method.horizon_widths.reshape(1, -1, 1)
        np.testing.assert_allclose(result.upper - result.mean, np.broadcast_to(widths, result.mean.shape))
        np.testing.assert_allclose(result.mean - result.lower, np.broadcast_to(widths, result.mean.shape))
