"""Sample-folded dropout: the mechanism behind vectorized MC inference."""

import numpy as np
import pytest

from repro import nn
from repro.nn.dropout import sample_fold, set_sample_fold
from repro.tensor import Tensor


def _streams(seed, n):
    rng = np.random.default_rng(seed)
    return [np.random.default_rng(int(s)) for s in rng.integers(0, 2**62, size=n)]


class TestFoldedMasks:
    def test_folded_equals_per_sample_sequential(self):
        """The folded mask slab for sample s == the mask a sequential pass draws."""
        num_samples, sub_batch = 3, 4
        x = Tensor(np.ones((num_samples * sub_batch, 5)))

        folded_layer = nn.Dropout(0.5)
        folded_layer.set_fold(_streams(7, num_samples))
        folded = folded_layer(x).numpy()

        for s, stream in enumerate(_streams(7, num_samples)):
            seq_layer = nn.Dropout(0.5, rng=stream)
            seq = seq_layer(Tensor(np.ones((sub_batch, 5)))).numpy()
            np.testing.assert_array_equal(folded[s * sub_batch : (s + 1) * sub_batch], seq)

    def test_fold_requires_divisible_batch(self):
        layer = nn.Dropout(0.5)
        layer.set_fold(_streams(0, 3))
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((7, 2))))

    def test_fold_cleared_restores_normal_mode(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(1))
        layer.set_fold(_streams(0, 2))
        layer.set_fold(None)
        out = layer(Tensor(np.ones((5, 3))))  # any batch size again
        assert out.shape == (5, 3)

    def test_zero_rate_is_identity_even_when_folded(self):
        layer = nn.Dropout(0.0)
        layer.set_fold(_streams(0, 2))
        x = Tensor(np.ones((4, 3)))
        layer.eval()
        assert layer(x) is x


class TestModuleTreeHelpers:
    def _model(self):
        class TwoDropouts(nn.Module):
            def __init__(self):
                super().__init__()
                self.a = nn.Dropout(0.3)
                self.b = nn.Dropout(0.3)

        return TwoDropouts()

    def test_set_sample_fold_counts_layers(self):
        model = self._model()
        assert set_sample_fold(model, _streams(0, 2)) == 2
        assert all(d._fold_streams is not None for d in (model.a, model.b))
        assert set_sample_fold(model, None) == 2
        assert all(d._fold_streams is None for d in (model.a, model.b))

    def test_sample_fold_context_manager_cleans_up(self):
        model = self._model()
        with sample_fold(model, _streams(0, 2)):
            assert model.a._fold_streams is not None
        assert model.a._fold_streams is None

    def test_sample_fold_cleans_up_on_error(self):
        model = self._model()
        with pytest.raises(RuntimeError):
            with sample_fold(model, _streams(0, 2)):
                raise RuntimeError("boom")
        assert model.a._fold_streams is None
