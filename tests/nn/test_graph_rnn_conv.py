"""Tests for graph convolutions, recurrent layers, temporal convolutions,
attention and normalization layers."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, gradcheck


def _ring_adjacency(n):
    adj = np.zeros((n, n))
    for i in range(n):
        adj[i, (i + 1) % n] = 1.0
        adj[(i + 1) % n, i] = 1.0
    return adj


def _sym_norm(adj):
    deg = adj.sum(axis=1)
    d_inv_sqrt = np.diag(1.0 / np.sqrt(np.maximum(deg, 1e-12)))
    return np.eye(len(adj)) + d_inv_sqrt @ adj @ d_inv_sqrt


class TestGCNLayer:
    def test_output_shape_batched(self):
        support = _sym_norm(_ring_adjacency(6))
        layer = nn.GCNLayer(3, 5, support)
        out = layer(Tensor(np.random.default_rng(0).normal(size=(4, 6, 3))))
        assert out.shape == (4, 6, 5)

    def test_output_shape_unbatched(self):
        support = _sym_norm(_ring_adjacency(6))
        layer = nn.GCNLayer(3, 5, support, activation=None)
        assert layer(Tensor(np.ones((6, 3)))).shape == (6, 5)

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            nn.GCNLayer(3, 5, np.eye(4), activation="gelu")

    def test_identity_support_reduces_to_dense(self):
        layer = nn.GCNLayer(3, 2, np.eye(5), activation=None, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(2, 5, 3))
        expected = x @ layer.weight.numpy() + layer.bias.numpy()
        assert np.allclose(layer(Tensor(x)).numpy(), expected)

    def test_gradcheck(self):
        support = _sym_norm(_ring_adjacency(4))
        layer = nn.GCNLayer(2, 3, support, activation="tanh", rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(2, 4, 2)), requires_grad=True)
        assert gradcheck(lambda inp: layer(inp).sum(), [x])


class TestChebAndDiffusion:
    def test_cheb_conv_shape(self):
        n = 5
        supports = [np.eye(n), _sym_norm(_ring_adjacency(n))]
        layer = nn.ChebConv(2, 4, supports)
        assert layer(Tensor(np.ones((3, n, 2)))).shape == (3, n, 4)

    def test_cheb_conv_requires_supports(self):
        with pytest.raises(ValueError):
            nn.ChebConv(2, 4, [])

    def test_diffusion_conv_shape_and_matrix_count(self):
        n = 6
        adj = _ring_adjacency(n)
        forward = adj / np.maximum(adj.sum(axis=1, keepdims=True), 1)
        backward = adj.T / np.maximum(adj.T.sum(axis=1, keepdims=True), 1)
        layer = nn.DiffusionConv(2, 4, [forward, backward], max_step=2)
        assert layer.num_matrices == 5  # I + 2 powers per direction
        assert layer(Tensor(np.ones((3, n, 2)))).shape == (3, n, 4)

    def test_diffusion_invalid_max_step(self):
        with pytest.raises(ValueError):
            nn.DiffusionConv(2, 4, [np.eye(3)], max_step=0)


class TestAdaptiveGraph:
    def test_adaptive_adjacency_rows_sum_to_one(self):
        adj_module = nn.AdaptiveAdjacency(num_nodes=7, embed_dim=3, rng=np.random.default_rng(0))
        adjacency = adj_module().numpy()
        assert adjacency.shape == (7, 7)
        assert np.allclose(adjacency.sum(axis=1), 1.0)
        assert np.all(adjacency >= 0.0)

    def test_adaptive_adjacency_invalid_args(self):
        with pytest.raises(ValueError):
            nn.AdaptiveAdjacency(0, 3)

    def test_avwgcn_shape(self):
        rng = np.random.default_rng(0)
        adj_module = nn.AdaptiveAdjacency(6, 4, rng=rng)
        layer = nn.AVWGCN(in_features=3, out_features=8, embed_dim=4, cheb_k=2, rng=rng)
        x = Tensor(rng.normal(size=(5, 6, 3)))
        out = layer(x, adj_module(), adj_module.embeddings)
        assert out.shape == (5, 6, 8)

    def test_avwgcn_cheb_k_three(self):
        rng = np.random.default_rng(0)
        adj_module = nn.AdaptiveAdjacency(4, 3, rng=rng)
        layer = nn.AVWGCN(2, 2, embed_dim=3, cheb_k=3, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 4, 2))), adj_module(), adj_module.embeddings)
        assert out.shape == (2, 4, 2)

    def test_avwgcn_invalid_cheb_k(self):
        with pytest.raises(ValueError):
            nn.AVWGCN(2, 2, embed_dim=3, cheb_k=0)

    def test_avwgcn_gradients_reach_embeddings(self):
        rng = np.random.default_rng(0)
        adj_module = nn.AdaptiveAdjacency(5, 3, rng=rng)
        layer = nn.AVWGCN(2, 2, embed_dim=3, rng=rng)
        x = Tensor(rng.normal(size=(2, 5, 2)))
        out = layer(x, adj_module(), adj_module.embeddings)
        out.sum().backward()
        assert adj_module.embeddings.grad is not None
        assert layer.weight_pool.grad is not None

    def test_avwgcn_gradcheck(self):
        rng = np.random.default_rng(3)
        adj_module = nn.AdaptiveAdjacency(4, 2, rng=rng)
        layer = nn.AVWGCN(2, 2, embed_dim=2, rng=rng)
        x = Tensor(rng.normal(size=(2, 4, 2)), requires_grad=True)
        assert gradcheck(
            lambda inp: layer(inp, adj_module(), adj_module.embeddings).sum(), [x]
        )


class TestRecurrent:
    def test_gru_cell_shapes(self):
        cell = nn.GRUCell(3, 6)
        h = cell.init_hidden(4)
        out = cell(Tensor(np.ones((4, 3))), h)
        assert out.shape == (4, 6)

    def test_gru_sequence(self):
        gru = nn.GRU(3, 6)
        outputs, final = gru(Tensor(np.random.default_rng(0).normal(size=(2, 7, 3))))
        assert outputs.shape == (2, 7, 6)
        assert final.shape == (2, 6)
        assert np.allclose(outputs.numpy()[:, -1, :], final.numpy())

    def test_gru_rejects_2d_input(self):
        gru = nn.GRU(3, 6)
        with pytest.raises(ValueError):
            gru(Tensor(np.ones((2, 3))))

    def test_gru_hidden_stays_bounded(self):
        gru = nn.GRU(2, 4)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 50, 2)) * 10)
        outputs, _ = gru(x)
        assert np.all(np.abs(outputs.numpy()) <= 1.0 + 1e-9)

    def test_gru_gradients_flow(self):
        gru = nn.GRU(2, 3, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(2, 4, 2)))
        _, final = gru(x)
        final.sum().backward()
        assert all(p.grad is not None for p in gru.parameters())


class TestTemporalConv:
    def test_causal_conv_preserves_length(self):
        conv = nn.CausalConv1d(2, 5, kernel_size=3, dilation=2)
        out = conv(Tensor(np.ones((2, 12, 4, 2))))
        assert out.shape == (2, 12, 4, 5)

    def test_valid_conv_shortens(self):
        conv = nn.CausalConv1d(2, 5, kernel_size=3, causal=False)
        out = conv(Tensor(np.ones((2, 12, 4, 2))))
        assert out.shape == (2, 10, 4, 5)

    def test_receptive_field(self):
        conv = nn.CausalConv1d(1, 1, kernel_size=2, dilation=4)
        assert conv.receptive_field == 5

    def test_too_short_input_raises(self):
        conv = nn.CausalConv1d(1, 1, kernel_size=5, causal=False)
        with pytest.raises(ValueError):
            conv(Tensor(np.ones((1, 3, 2, 1))))

    def test_rejects_3d_input(self):
        conv = nn.CausalConv1d(1, 1, kernel_size=2)
        with pytest.raises(ValueError):
            conv(Tensor(np.ones((1, 3, 1))))

    def test_causality(self):
        """Changing a future input must not affect past outputs."""
        rng = np.random.default_rng(0)
        conv = nn.CausalConv1d(1, 1, kernel_size=3, rng=rng)
        x = rng.normal(size=(1, 10, 1, 1))
        out_a = conv(Tensor(x)).numpy()
        x_mod = x.copy()
        x_mod[0, 7, 0, 0] += 100.0
        out_b = conv(Tensor(x_mod)).numpy()
        assert np.allclose(out_a[0, :7], out_b[0, :7])
        assert not np.allclose(out_a[0, 7:], out_b[0, 7:])

    def test_matches_manual_convolution(self):
        conv = nn.CausalConv1d(1, 1, kernel_size=2, causal=False, rng=np.random.default_rng(0))
        x = np.arange(5.0).reshape(1, 5, 1, 1)
        out = conv(Tensor(x)).numpy()[0, :, 0, 0]
        w0 = conv.weight.numpy()[0, 0, 0]
        w1 = conv.weight.numpy()[1, 0, 0]
        b = conv.bias.numpy()[0]
        expected = np.array([x[0, t, 0, 0] * w0 + x[0, t + 1, 0, 0] * w1 + b for t in range(4)])
        assert np.allclose(out, expected)

    def test_gated_conv_output_bounded(self):
        gated = nn.GatedTemporalConv(2, 3, kernel_size=2)
        out = gated(Tensor(np.random.default_rng(0).normal(size=(2, 8, 3, 2)) * 10)).numpy()
        assert np.all(np.abs(out) <= 1.0)

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            nn.CausalConv1d(1, 1, kernel_size=0)


class TestAttention:
    def test_spatial_attention_shape_and_rows(self):
        att = nn.SpatialAttention(num_steps=6, channels=3)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 6, 5, 3)))
        scores = att(x).numpy()
        assert scores.shape == (2, 5, 5)
        assert np.allclose(scores.sum(axis=-1), 1.0)

    def test_temporal_attention_shape_and_rows(self):
        att = nn.TemporalAttention(num_nodes=5, channels=3)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 6, 5, 3)))
        scores = att(x).numpy()
        assert scores.shape == (2, 6, 6)
        assert np.allclose(scores.sum(axis=-1), 1.0)


class TestNormalization:
    def test_batchnorm_training_normalizes(self):
        bn = nn.BatchNorm1d(4)
        x = Tensor(np.random.default_rng(0).normal(loc=5.0, scale=3.0, size=(200, 4)))
        out = bn(x).numpy()
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_batchnorm_running_stats_used_in_eval(self):
        bn = nn.BatchNorm1d(2, momentum=1.0)
        x = Tensor(np.random.default_rng(0).normal(loc=3.0, size=(500, 2)))
        bn(x)
        bn.eval()
        out = bn(Tensor(np.full((10, 2), 3.0))).numpy()
        assert np.allclose(out, 0.0, atol=0.2)

    def test_batchnorm_reset_running_stats(self):
        bn = nn.BatchNorm1d(2)
        bn(Tensor(np.random.default_rng(0).normal(size=(50, 2))))
        bn.reset_running_stats()
        assert np.allclose(bn.running_mean, 0.0)
        assert bn.num_batches_tracked == 0

    def test_batchnorm_feature_mismatch(self):
        with pytest.raises(ValueError):
            nn.BatchNorm1d(3)(Tensor(np.ones((5, 4))))

    def test_batchnorm_invalid_momentum(self):
        with pytest.raises(ValueError):
            nn.BatchNorm1d(3, momentum=0.0)

    def test_layernorm_normalizes_last_axis(self):
        ln = nn.LayerNorm(6)
        x = Tensor(np.random.default_rng(0).normal(loc=2.0, scale=4.0, size=(3, 5, 6)))
        out = ln(x).numpy()
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)

    def test_layernorm_feature_mismatch(self):
        with pytest.raises(ValueError):
            nn.LayerNorm(3)(Tensor(np.ones((2, 4))))
