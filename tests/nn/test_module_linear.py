"""Tests for the Module/Parameter machinery, Linear, containers and init."""

import numpy as np
import pytest

from repro import nn
from repro.nn import init
from repro.tensor import Tensor


class TinyNet(nn.Module):
    def __init__(self, rng=None):
        super().__init__()
        self.fc1 = nn.Linear(4, 8, rng=rng)
        self.fc2 = nn.Linear(8, 2, rng=rng)
        self.drop = nn.Dropout(0.5, rng=rng)

    def forward(self, x):
        return self.fc2(self.drop(self.fc1(x).relu()))


class TestModule:
    def test_parameter_registration(self):
        net = TinyNet()
        names = dict(net.named_parameters())
        assert "fc1.weight" in names and "fc2.bias" in names
        assert len(net.parameters()) == 4

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_train_eval_recursive(self):
        net = TinyNet()
        net.eval()
        assert not net.training and not net.fc1.training and not net.drop.training
        net.train()
        assert net.drop.training

    def test_zero_grad(self):
        net = TinyNet()
        x = Tensor(np.ones((3, 4)))
        net(x).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_state_dict_roundtrip(self):
        rng = np.random.default_rng(0)
        net_a = TinyNet(rng=rng)
        net_b = TinyNet(rng=np.random.default_rng(99))
        net_b.load_state_dict(net_a.state_dict())
        x = Tensor(np.ones((2, 4)))
        net_a.eval(), net_b.eval()
        assert np.allclose(net_a(x).numpy(), net_b(x).numpy())

    def test_load_state_dict_strict_mismatch(self):
        net = TinyNet()
        with pytest.raises(KeyError):
            net.load_state_dict({"nonexistent": np.zeros(3)})

    def test_load_state_dict_shape_mismatch(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_modules_iteration(self):
        net = TinyNet()
        classes = [m.__class__.__name__ for m in net.modules()]
        assert classes.count("Linear") == 2
        assert "Dropout" in classes

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(1)

    def test_repr_lists_children(self):
        assert "fc1" in repr(TinyNet())


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(5, 3)
        assert layer(Tensor(np.ones((7, 5)))).shape == (7, 3)

    def test_batched_3d_input(self):
        layer = nn.Linear(5, 3)
        assert layer(Tensor(np.ones((2, 7, 5)))).shape == (2, 7, 3)

    def test_wrong_input_dim_raises(self):
        layer = nn.Linear(5, 3)
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((7, 4))))

    def test_no_bias(self):
        layer = nn.Linear(5, 3, bias=False)
        assert len(layer.parameters()) == 1

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 3)

    def test_gradients_flow_to_weights(self):
        layer = nn.Linear(4, 2, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(6, 4)))
        layer(x).sum().backward()
        assert layer.weight.grad is not None and layer.weight.grad.shape == (4, 2)
        assert np.allclose(layer.bias.grad, 6.0 * np.ones(2))


class TestDropout:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_training_mode_is_stochastic(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100,)))
        out = layer(x).numpy()
        assert np.any(out == 0.0)
        assert np.any(out > 1.0)

    def test_eval_mode_is_identity(self):
        layer = nn.Dropout(0.5)
        layer.eval()
        x = Tensor(np.ones((10,)))
        assert np.allclose(layer(x).numpy(), 1.0)

    def test_mc_mode_stays_stochastic_in_eval(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        layer.eval()
        layer.mc_active = True
        out = layer(Tensor(np.ones(200))).numpy()
        assert np.any(out == 0.0)

    def test_set_mc_dropout_helper(self):
        from repro.nn.dropout import set_mc_dropout

        net = TinyNet()
        count = set_mc_dropout(net, True)
        assert count == 1
        assert net.drop.mc_active
        set_mc_dropout(net, False)
        assert not net.drop.mc_active

    def test_zero_rate_is_identity_even_in_training(self):
        layer = nn.Dropout(0.0)
        x = Tensor(np.ones(50))
        assert np.allclose(layer(x).numpy(), 1.0)


class TestContainers:
    def test_sequential_forward(self):
        seq = nn.Sequential(nn.Linear(4, 8), nn.Linear(8, 2))
        assert seq(Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_sequential_registers_parameters(self):
        seq = nn.Sequential(nn.Linear(4, 8), nn.Linear(8, 2))
        assert len(seq.parameters()) == 4

    def test_sequential_indexing_len_iter(self):
        seq = nn.Sequential(nn.Linear(4, 8), nn.Linear(8, 2))
        assert len(seq) == 2
        assert isinstance(seq[0], nn.Linear)
        assert len(list(iter(seq))) == 2

    def test_module_list(self):
        layers = nn.ModuleList([nn.Linear(3, 3) for _ in range(4)])
        assert len(layers) == 4
        assert len(layers.parameters()) == 8
        with pytest.raises(NotImplementedError):
            layers(Tensor(np.ones((1, 3))))

    def test_module_list_append(self):
        layers = nn.ModuleList()
        layers.append(nn.Linear(2, 2))
        assert len(layers) == 1


class TestInit:
    def test_xavier_uniform_bound(self):
        w = init.xavier_uniform((100, 100), rng=np.random.default_rng(0))
        bound = np.sqrt(6.0 / 200)
        assert np.all(np.abs(w) <= bound)

    def test_xavier_normal_std(self):
        w = init.xavier_normal((200, 200), rng=np.random.default_rng(0))
        assert abs(w.std() - np.sqrt(2.0 / 400)) < 5e-4

    def test_kaiming_normal_std(self):
        w = init.kaiming_normal((300, 50), rng=np.random.default_rng(0))
        assert abs(w.std() - np.sqrt(2.0 / 300)) < 2e-3

    def test_constant_and_zeros(self):
        assert np.all(init.constant((3, 3), 2.5) == 2.5)
        assert np.all(init.zeros((2,)) == 0.0)

    def test_fan_calculation_high_rank(self):
        w = init.xavier_uniform((3, 4, 5), rng=np.random.default_rng(0))
        assert w.shape == (3, 4, 5)
