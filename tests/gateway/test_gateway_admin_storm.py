"""Admin-vs-data-plane storm over HTTP: a full canary ramp (deploy → traffic
split → promote → rollback) driven through the admin verbs while a closed-loop
load generator hammers ``/predict``.  Zero requests may drop, zero may error,
and every response must come from a valid generation — internally consistent,
never mixing versions within one forecast."""

import threading
import time

import numpy as np

from repro.analysis import lockwatch
from repro.gateway import LoadGenerator
from repro.serving import InferenceServer

from gatewaylib import HISTORY, NODES, constant_predictor, http_call

#: Constant value served by each generation; responses must stay inside it.
GENERATION_VALUES = {"gen-0": 0.0, "gen-1": 1.0, "gen-2": 2.0}


def _admin(url, method, path, body=None):
    status, payload, _ = http_call(url, method, path, body)
    assert status == 200, f"{method} {path} -> {status}: {payload}"
    return payload


def test_promote_rollback_storm_under_http_load(make_gateway):
    # The whole stack — server, gateway, HTTP threads, loadgen workers — is
    # built inside the lock-order sanitizer; any admin-vs-data-plane lock
    # cycle fails the test via the acyclicity assert at the end.
    with lockwatch.watching(raise_on_cycle=False) as watch:
        server = InferenceServer(max_batch_size=16, max_wait_ms=1.0, cache_size=64)
        server.deploy("gen-0", constant_predictor(GENERATION_VALUES["gen-0"]), version="v0")

        def resolver(spec):
            return constant_predictor(float(spec["value"]))

        gateway = make_gateway(server=server, model_resolver=resolver)
        url = gateway.url
        valid_values = set(GENERATION_VALUES.values())

        def validate(status, body):
            """200 + a mean that is one generation's constant, never a mixture."""
            if status != 200 or not isinstance(body, dict):
                return False
            mean = np.asarray(body.get("mean"), dtype=np.float64)
            if mean.shape != (mean.shape[0], NODES) or mean.size == 0:
                return False
            values = set(np.unique(mean).tolist())
            return len(values) == 1 and values.pop() in valid_values

        loadgen = LoadGenerator(
            url,
            num_workers=4,
            seed=7,
            validate_fn=validate,
            history=HISTORY,
            nodes=NODES,
        )
        outcome = {}

        def pound():
            outcome["report"] = loadgen.run(total_requests=400)

        thread = threading.Thread(target=pound, daemon=True)
        thread.start()

        # The full ramp, interleaved with live traffic.
        _admin(url, "POST", "/admin/deploy", {"name": "gen-1", "model": {"value": 1.0}, "version": "v1"})
        _admin(url, "POST", "/admin/routes", {"weights": {"": 0.7, "gen-1": 0.3}})
        time.sleep(0.05)
        _admin(url, "POST", "/admin/promote", {"name": "gen-1"})
        time.sleep(0.05)
        _admin(url, "POST", "/admin/deploy", {"name": "gen-2", "model": {"value": 2.0}, "version": "v2"})
        _admin(url, "POST", "/admin/routes", {"weights": {"": 0.5, "gen-2": 0.5}})
        time.sleep(0.05)
        _admin(url, "POST", "/admin/promote", {"name": "gen-2"})
        time.sleep(0.05)
        # Reject the canary: gen-2 is undeployed while its split weight still
        # points at it — queued requests must fall back to the default, not drop.
        _admin(url, "POST", "/admin/rollback", {"name": "gen-2"})
        time.sleep(0.05)
        _admin(url, "POST", "/admin/routes", {"weights": {"": 1.0}})

        thread.join(timeout=60.0)
    assert not thread.is_alive(), "load generator never finished"
    watch.assert_acyclic()
    report = outcome["report"]

    assert report.requests == 400
    assert report.dropped == 0, report.summary()
    assert report.http_errors == 0, report.summary()
    assert report.ok == 400
    assert report.status_counts == {200: 400}

    # The ramp really happened and landed where the rollback left it.
    routes = _admin(url, "GET", "/admin/routes")
    assert routes["default_route"] == "gen-1"
    assert set(routes["deployments"]) == {"gen-0", "gen-1"}
    stats = server.stats
    assert stats["promotions"] == 2
    assert stats["rollbacks"] == 1
    assert stats["requests_served"] >= 400


def test_keyed_routes_over_http(make_gateway):
    server = InferenceServer(max_batch_size=8, max_wait_ms=1.0)
    server.deploy("gen-0", constant_predictor(0.0), version="v0")
    server.deploy("gen-1", constant_predictor(1.0), version="v1")
    gateway = make_gateway(server=server)
    url = gateway.url

    info = _admin(url, "POST", "/admin/routes", {"routes": {"region-b": "gen-1"}})
    assert info["router"]["type"] == "KeyRouter"
    assert info["router"]["routes"] == {"region-b": "gen-1"}

    window = np.zeros((HISTORY, NODES)).tolist()
    status, body, _ = http_call(url, "POST", "/predict", {"window": window, "key": "region-a"})
    assert status == 200 and body["mean"][0][0] == 0.0
    status, body, _ = http_call(url, "POST", "/predict", {"window": window, "key": "region-b"})
    assert status == 200 and body["mean"][0][0] == 1.0
