"""Observability over the wire: /trace, /profile, obs metrics, escaping, caps."""

import numpy as np
import pytest

import repro.obs as obs
from repro.fleet import StreamFleet
from repro.gateway.metrics import (
    _STREAM_METRIC_KEYS,
    _Exposition,
    parse_prometheus_text,
)
from repro.serving import InferenceServer

from gatewaylib import HISTORY, NODES, constant_predictor, http_call


@pytest.fixture(autouse=True)
def _obs_clean():
    obs.reset()
    yield
    obs.reset()


def _predict_once(gateway):
    window = np.zeros((HISTORY, NODES)).tolist()
    return http_call(gateway.url, "POST", "/predict", {"window": window})


class TestTraceSurface:
    def test_predict_trace_carries_the_full_span_chain(self, make_gateway):
        """The acceptance path: one traced /predict renders as the chain

        gateway.predict -> router.submit -> batch.execute -> model.forward
        with correct parentage — the batch spans hop threads (handler ->
        batch worker) and must still parent under the submitting request.
        """
        obs.configure(enabled=True, seed=0, log_sink=False)
        gateway = make_gateway()
        status, _, headers = _predict_once(gateway)
        assert status == 200
        trace_id = headers["X-Trace-Id"]
        assert trace_id == "t00000001"  # fixed seed => deterministic IDs

        status, body, _ = http_call(gateway.url, "GET", "/trace?limit=10")
        assert status == 200
        assert body["enabled"] is True
        [tree] = [t for t in body["traces"] if t["trace_id"] == trace_id]
        assert tree["num_spans"] == 4
        chain = []
        ids = []
        [node] = tree["spans"]
        while True:
            chain.append(node["name"])
            ids.append((node["span_id"], node["parent_id"]))
            if not node["children"]:
                break
            [node] = node["children"]
        assert chain == [
            "gateway.predict",
            "router.submit",
            "batch.execute",
            "model.forward",
        ]
        # Parentage is exact: each span's parent_id is its predecessor's id.
        assert ids[0][1] is None
        for (child_id, parent_id), (prev_id, _) in zip(ids[1:], ids):
            assert parent_id == prev_id

    def test_trace_endpoint_when_disabled_reports_disabled(self, make_gateway):
        gateway = make_gateway()
        status, body, headers = http_call(gateway.url, "GET", "/trace")
        assert status == 200
        assert body["enabled"] is False
        assert body["traces"] == []
        assert "X-Trace-Id" not in headers  # unsampled requests stay silent

    def test_trace_limit_must_be_an_integer(self, make_gateway):
        gateway = make_gateway()
        status, body, _ = http_call(gateway.url, "GET", "/trace?limit=nope")
        assert status == 400
        assert "limit" in body["error"]["message"]

    def test_admin_requests_trace_too(self, make_gateway):
        obs.configure(enabled=True, seed=0, log_sink=False)
        gateway = make_gateway()
        status, _, headers = http_call(gateway.url, "GET", "/healthz")
        assert status == 200
        root_trace = headers["X-Trace-Id"]
        status, body, _ = http_call(gateway.url, "GET", "/trace?limit=50")
        names = {
            tree["spans"][0]["name"]
            for tree in body["traces"]
            if tree["spans"]
        }
        assert "gateway.healthz" in names
        assert any(tree["trace_id"] == root_trace for tree in body["traces"])


class TestProfileSurface:
    def test_profile_reports_phases_after_traffic(self, make_gateway):
        obs.configure(enabled=True, seed=0, log_sink=False)
        gateway = make_gateway()
        for index in range(3):
            # Distinct windows: identical ones would hit the prediction
            # cache and skip the model pass we want profiled.
            window = np.full((HISTORY, NODES), float(index)).tolist()
            status, _, _ = http_call(
                gateway.url, "POST", "/predict", {"window": window}
            )
            assert status == 200
        status, body, _ = http_call(gateway.url, "GET", "/profile")
        assert status == 200
        assert body["enabled"] is True
        assert body["phases"]["model_forward"]["count"] >= 3
        assert body["phases"]["queue_wait"]["count"] >= 3
        assert set(body["top_phases"]) <= set(body["phases"])

    def test_profile_when_disabled_is_empty_but_serves(self, make_gateway):
        gateway = make_gateway()
        status, body, _ = http_call(gateway.url, "GET", "/profile")
        assert status == 200
        assert body == {"enabled": False, "phases": {}, "top_phases": []}


class TestObsMetrics:
    def test_scrape_carries_obs_and_phase_series(self, make_gateway):
        obs.configure(enabled=True, seed=0, log_sink=False)
        gateway = make_gateway()
        status, _, _ = _predict_once(gateway)
        assert status == 200
        status, text, _ = http_call(gateway.url, "GET", "/metrics")
        assert status == 200
        series = parse_prometheus_text(text)
        assert series["obs_tracing_enabled"][()] == 1.0
        assert series["obs_profiling_enabled"][()] == 1.0
        assert series["obs_trace_spans_added_total"][()] >= 4.0
        assert series["obs_dropped_series_total"][()] == 0.0
        forward = (("phase", "model_forward"),)
        assert series["repro_phase_seconds_count"][forward] >= 1.0
        assert series["repro_phase_seconds_sum"][forward] >= 0.0
        assert (("phase", "model_forward"), ("quantile", "0.5")) in series[
            "repro_phase_seconds"
        ]
        # Server saturation series (queue depth / batch fill) export too.
        assert "repro_server_queue_depth" in series
        assert 0.0 <= series["repro_server_batch_fill_ratio"][()] <= 1.0

    def test_disabled_obs_scrape_shows_zero_flags(self, make_gateway):
        gateway = make_gateway()
        status, text, _ = http_call(gateway.url, "GET", "/metrics")
        assert status == 200
        series = parse_prometheus_text(text)
        assert series["obs_tracing_enabled"][()] == 0.0
        assert series["obs_profiling_enabled"][()] == 0.0


class TestCardinalityCap:
    def test_per_stream_series_cap_and_dropped_counter(self, make_gateway):
        server = InferenceServer(max_batch_size=8, max_wait_ms=1.0, cache_size=64)
        server.deploy("gen-0", constant_predictor(0.0))
        fleet = StreamFleet(server, history=HISTORY, horizon=2)
        fleet.add_streams([f"s{i}" for i in range(5)])
        gateway = make_gateway(server=server, fleet=fleet, max_metric_streams=2)

        status, text, _ = http_call(gateway.url, "GET", "/metrics")
        assert status == 200
        series = parse_prometheus_text(text)
        exported = {labels[0][1] for labels in series["repro_stream_step"]}
        # Sorted-by-name keeps the exported set stable scrape to scrape.
        assert exported == {"s0", "s1"}
        # ...and the cap is visible, not silent: count the exact series the
        # three capped streams would have emitted, from the same snapshot.
        status, snap, _ = http_call(gateway.url, "GET", "/snapshot")
        dropped = 0
        for name in sorted(snap["streams"])[2:]:
            stream = snap["streams"][name]
            dropped += 2  # step + warmed_up
            dropped += sum(
                1 for key in _STREAM_METRIC_KEYS if key in stream.get("metrics", {})
            )
            dropped += len({event["kind"] for event in stream.get("events", [])})
        assert dropped > 0
        assert series["obs_dropped_series_total"][()] == float(dropped)
        # Aggregates are never capped.
        assert series["repro_fleet_streams"][()] == 5.0

    def test_default_cap_keeps_small_fleets_untouched(self, make_gateway):
        server = InferenceServer(max_batch_size=8, max_wait_ms=1.0, cache_size=64)
        server.deploy("gen-0", constant_predictor(0.0))
        fleet = StreamFleet(server, history=HISTORY, horizon=2)
        fleet.add_streams(["a", "b"])
        gateway = make_gateway(server=server, fleet=fleet)
        status, text, _ = http_call(gateway.url, "GET", "/metrics")
        series = parse_prometheus_text(text)
        assert {labels[0][1] for labels in series["repro_stream_step"]} == {"a", "b"}
        assert series["obs_dropped_series_total"][()] == 0.0


class TestExpositionEscaping:
    def test_label_values_round_trip_through_the_parser(self):
        nasty = 'quo"te back\\slash new\nline'
        exp = _Exposition()
        exp.add("demo_total", "counter", "A demo.", 3, {"stream": nasty})
        text = exp.text()
        # The spec escapes: \ -> \\, newline -> \n, " -> \" (one line out).
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert text.count("\n") == 3  # HELP, TYPE, sample
        parsed = parse_prometheus_text(text)
        assert parsed["demo_total"][(("stream", nasty),)] == 3.0

    def test_help_text_escapes_backslash_and_newline_only(self):
        exp = _Exposition()
        exp.add("demo_total", "counter", 'line\nwith \\ and "quotes"', 1)
        help_line = exp.text().splitlines()[0]
        assert help_line == '# HELP demo_total line\\nwith \\\\ and "quotes"'

    def test_weird_deployment_names_survive_a_real_scrape(self, make_gateway):
        server = InferenceServer(max_batch_size=8, max_wait_ms=1.0, cache_size=64)
        name = 'gen"zero\\v1'
        server.deploy(name, constant_predictor(0.0))
        gateway = make_gateway(server=server)
        status, text, _ = http_call(gateway.url, "GET", "/metrics")
        assert status == 200
        series = parse_prometheus_text(text)
        assert series["repro_server_default_route"][(("deployment", name),)] == 1.0
