"""Every ops surface promises strictly JSON-native output — builtin scalars,
lists and dicts only, coerced at the source so the gateway can ``json.dumps``
snapshots verbatim.  These tests walk real post-traffic structures and assert
the promise type-by-type, then round-trip them through strict RFC 8259 JSON."""

import json

import numpy as np
import pytest

from repro.fleet import StreamFleet
from repro.serving import InferenceServer
from repro.serving.pool import Deployment
from repro.streaming.monitor import RollingStat, StreamingMonitor
from repro.utils.jsonsafe import json_ready

from gatewaylib import HISTORY, HORIZON, NODES, constant_predictor

_NATIVE = (str, int, float, bool, type(None))


def _assert_json_native(value, path="$"):
    """Recursively assert builtin containers/scalars only — no NumPy leaks."""
    assert not isinstance(value, np.generic), f"{path}: NumPy scalar {value!r}"
    if isinstance(value, dict):
        for key, item in value.items():
            assert type(key) in (str, int, float, bool), f"{path}: bad key {key!r}"
            _assert_json_native(item, f"{path}.{key}")
    elif isinstance(value, list):
        for index, item in enumerate(value):
            _assert_json_native(item, f"{path}[{index}]")
    else:
        assert type(value) in _NATIVE, f"{path}: {type(value).__name__} = {value!r}"


def _ticked_fleet():
    """A server + fleet that has really served traffic and scored steps."""
    server = InferenceServer(max_batch_size=8, max_wait_ms=1.0, cache_size=32)
    server.deploy("gen-0", constant_predictor(0.0), version="v0")
    server.start()
    fleet = StreamFleet(server, history=HISTORY, horizon=HORIZON, monitor_window=16)
    fleet.add_streams(["s0", "s1"])
    rng = np.random.default_rng(5)
    for step in range(HISTORY + 3):
        row = {
            "s0": rng.normal(size=NODES),
            "s1": rng.normal(size=NODES),
        }
        if step == HISTORY + 1:
            row["s0"][0] = np.nan  # exercise the masked-sensor path
        fleet.tick(row)
    return server, fleet


def test_fleet_snapshot_is_strictly_json_native():
    server, fleet = _ticked_fleet()
    try:
        snap = fleet.snapshot()
    finally:
        server.stop()
    _assert_json_native(snap)
    # Strict round trip: no NaN token anywhere after boundary coercion.
    strict = json_ready(snap, nan_to_none=True)
    text = json.dumps(strict, allow_nan=False)
    assert json.loads(text) == strict


def test_server_and_pool_stats_are_strictly_json_native():
    server, fleet = _ticked_fleet()
    try:
        stats = server.stats
    finally:
        server.stop()
    _assert_json_native(stats)
    assert stats["running"] is True or stats["running"] is False
    assert type(stats["requests_served"]) is int
    assert type(stats["outstanding_requests"]) is int
    assert type(stats["mean_batch_size"]) is float
    _assert_json_native(server.pool.stats)
    for dep_stats in server.pool.stats.values():
        assert type(dep_stats["requests_served"]) is int
        assert type(dep_stats["shadow_divergence"]) is float
    strict = json_ready(stats, nan_to_none=True)  # boundary form: NaN -> null
    assert json.loads(json.dumps(strict, allow_nan=False)) == strict


def test_rolling_stat_mean_stays_builtin_after_eviction():
    stat = RollingStat(4)
    for value in np.linspace(0.0, 1.0, 10):  # np.float64 pushes past capacity
        stat.push(value)
    # The eviction path subtracts ndarray elements; the read must stay native.
    assert type(stat.mean) is float


def test_monitor_snapshot_native_before_and_after_updates():
    monitor = StreamingMonitor(window=8)
    _assert_json_native(monitor.snapshot())  # all-NaN pre-warm-up snapshot
    shape = (HORIZON, NODES)
    monitor.update(
        target=np.zeros(shape),
        mean=np.zeros(shape),
        lower=-np.ones(shape),
        upper=np.ones(shape),
    )
    snap = monitor.snapshot()
    _assert_json_native(snap)
    assert type(snap["coverage"]) is float
    assert type(snap["scored_steps"]) is int


def test_deployment_stats_native_with_numpy_divergence():
    deployment = Deployment("d", "v0", constant_predictor(0.0))
    deployment.record_served(np.int64(3), np.int64(2))
    deployment.record_shadow(np.int64(1), divergence=np.float64(0.25))
    stats = deployment.stats
    _assert_json_native(stats)
    assert stats["requests_served"] == 3
    assert stats["shadow_divergence"] == 0.25


# --------------------------------------------------------------------------- #
# json_ready itself
# --------------------------------------------------------------------------- #
def test_json_ready_coerces_numpy_scalars_and_arrays():
    out = json_ready(
        {
            "i": np.int64(7),
            "f": np.float32(1.5),
            "b": np.bool_(True),
            "arr": np.arange(4, dtype=np.int32).reshape(2, 2),
            np.int64(3): "numpy key",
            "nested": [np.float64(2.5), (np.int8(1), {np.str_("k"): np.uint16(9)})],
            "set": {1, 2},
        }
    )
    _assert_json_native(out)
    assert out["i"] == 7 and type(out["i"]) is int
    assert out["f"] == 1.5 and type(out["f"]) is float
    assert out["b"] is True
    assert out["arr"] == [[0, 1], [2, 3]]
    assert out[3] == "numpy key"
    assert sorted(out["set"]) == [1, 2]


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), np.float64("-inf")])
def test_json_ready_nan_to_none(bad):
    assert json_ready(bad) != None  # noqa: E711 — NaN/Inf survive by default
    assert json_ready(bad, nan_to_none=True) is None
    assert json_ready({"x": [bad]}, nan_to_none=True) == {"x": [None]}


def test_json_ready_falls_back_to_str_for_exotic_objects():
    class Exotic:
        def __repr__(self):
            return "<exotic>"

    out = json_ready({"obj": Exotic()})
    assert out == {"obj": "<exotic>"}
