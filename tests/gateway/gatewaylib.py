"""Shared helpers for the HTTP gateway suite (imported by its test modules)."""

import json
import urllib.error
import urllib.request

import numpy as np

from repro.core.inference import PredictionResult

HISTORY, NODES, HORIZON = 4, 3, 2


def constant_predictor(value: float):
    """A fast deterministic model: every forecast entry equals ``value``."""

    def predict(windows: np.ndarray) -> PredictionResult:
        mean = np.full((windows.shape[0], HORIZON, windows.shape[2]), float(value))
        return PredictionResult(
            mean=mean,
            aleatoric_var=np.ones_like(mean),
            epistemic_var=np.zeros_like(mean),
        )

    return predict


def http_call(url: str, method: str, path: str, body=None, timeout: float = 15.0,
              headers=None):
    """One JSON request; returns ``(status, parsed_body, headers)``.

    Non-2xx responses are returned, not raised, so tests assert on status
    codes directly; ``/metrics`` text comes back as a plain string.
    ``headers`` adds extra request headers (e.g. ``Authorization``).
    """
    data = json.dumps(body).encode("utf-8") if body is not None else None
    return raw_call(url, method, path, data, timeout=timeout, headers=headers)


def raw_call(url: str, method: str, path: str, data=None, timeout: float = 15.0,
             headers=None):
    """Like :func:`http_call` but sends ``data`` bytes verbatim."""
    request = urllib.request.Request(
        url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            status, raw, headers = response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        status, raw, headers = error.code, error.read(), dict(error.headers)
    content_type = headers.get("Content-Type", "")
    if content_type.startswith("application/json"):
        return status, json.loads(raw.decode("utf-8")), headers
    return status, raw.decode("utf-8"), headers
