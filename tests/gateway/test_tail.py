"""Live event tail: SSE framing, the pump loop, and GET /tail over the wire."""

import json
import socket
import time

import pytest

from repro.gateway.sse import EventTail, format_sse_comment, format_sse_event
from repro.obs.events import configure_logging, log_event

from gatewaylib import http_call


@pytest.fixture(autouse=True)
def _obs_clean():
    import repro.obs as obs

    obs.reset()
    yield
    obs.reset()


class TestFraming:
    def test_event_frame_has_event_id_and_single_data_line(self):
        frame = format_sse_event("slo.alert_firing", 42, {"kind": "slo.alert_firing", "tick": 7})
        text = frame.decode("utf-8")
        lines = text.split("\n")
        assert lines[0] == "event: slo.alert_firing"
        assert lines[1] == "id: 42"
        assert lines[2].startswith("data: ")
        assert text.endswith("\n\n")
        payload = json.loads(lines[2][len("data: "):])
        assert payload == {"kind": "slo.alert_firing", "tick": 7}

    def test_event_frame_json_is_strict_nan_becomes_null(self):
        frame = format_sse_event("x", 1, {"burn": float("nan")})
        data_line = frame.decode("utf-8").split("\n")[2]
        assert json.loads(data_line[len("data: "):]) == {"burn": None}
        assert "NaN" not in data_line

    def test_comment_frame_strips_newlines(self):
        assert format_sse_comment("heartbeat") == b": heartbeat\n\n"
        assert format_sse_comment("a\nb\rc") == b": a b c\n\n"


class TestEventTailLoop:
    """The pump against a list-accumulating writer — no sockets involved."""

    def test_replays_ring_and_stops_at_max_events(self):
        configure_logging(enabled=True, sink=False)
        for i in range(5):
            log_event("tick.done", index=i)
        tail = EventTail(since=0, max_events=3, timeout_s=5.0)
        frames = []
        assert tail.run(frames.append) == "max_events"
        text = b"".join(frames).decode("utf-8")
        assert text.startswith(": tail start cursor=0\n\n")
        assert text.count("event: tick.done") == 3
        assert text.rstrip().endswith(": tail complete")
        assert tail.delivered == 3

    def test_kinds_prefix_filter_skips_but_advances_cursor(self):
        configure_logging(enabled=True, sink=False)
        log_event("serving.promote")
        log_event("slo.alert_pending")
        log_event("slo.alert_firing")
        tail = EventTail(kinds="slo.", since=0, max_events=2, timeout_s=5.0)
        frames = []
        assert tail.run(frames.append) == "max_events"
        text = b"".join(frames).decode("utf-8")
        assert "serving.promote" not in text
        assert "event: slo.alert_pending" in text
        assert "event: slo.alert_firing" in text

    def test_since_none_starts_at_now(self):
        configure_logging(enabled=True, sink=False)
        log_event("old.event")
        tail = EventTail(max_events=1, timeout_s=0.3, heartbeat_s=10.0, poll_s=0.01)
        frames = []
        assert tail.run(frames.append) == "timeout"
        assert b"old.event" not in b"".join(frames)

    def test_idle_stream_heartbeats_then_times_out(self):
        configure_logging(enabled=True, sink=False)
        tail = EventTail(heartbeat_s=0.05, timeout_s=0.4, poll_s=0.01)
        frames = []
        assert tail.run(frames.append) == "timeout"
        assert tail.heartbeats >= 2
        assert b": heartbeat\n\n" in b"".join(frames)
        assert b": tail timeout\n\n" == frames[-1]

    def test_raising_writer_reads_as_disconnect(self):
        configure_logging(enabled=True, sink=False)
        log_event("tick.done")

        def broken_pipe(frame):
            raise OSError("Broken pipe")

        tail = EventTail(since=0, timeout_s=5.0)
        assert tail.run(broken_pipe) == "disconnected"

    def test_should_stop_ends_the_stream(self):
        tail = EventTail(timeout_s=5.0)
        assert tail.run(lambda frame: None, should_stop=lambda: True) == "stopped"

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EventTail(max_events=0)
        with pytest.raises(ValueError):
            EventTail(heartbeat_s=0.0)


class TestTailOverHttp:
    def _tail_raw(self, gw, query, timeout=10.0):
        """One GET /tail over a raw socket; returns (headers_text, body_bytes)."""
        host, port = gw.host, gw.port
        with socket.create_connection((host, port), timeout=timeout) as sock:
            request = (
                f"GET /tail?{query} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\nConnection: close\r\n\r\n"
            )
            sock.sendall(request.encode("ascii"))
            blob = b""
            while True:
                try:
                    chunk = sock.recv(65536)
                except socket.timeout:
                    break
                if not chunk:
                    break
                blob += chunk
        head, _, body = blob.partition(b"\r\n\r\n")
        return head.decode("latin-1"), body

    @staticmethod
    def _dechunk(body):
        out = b""
        while body:
            size_line, _, body = body.partition(b"\r\n")
            size = int(size_line, 16)
            if size == 0:
                break
            out, body = out + body[:size], body[size + 2:]
        return out

    def test_tail_streams_events_with_sse_headers(self, make_gateway):
        gw = make_gateway()
        import repro.obs as obs

        obs.configure(logging=True, log_sink=False)
        for i in range(3):
            log_event("tick.done", index=i)
        head, body = self._tail_raw(gw, "since=0&max_events=3&timeout=5")
        assert "HTTP/1.1 200" in head.splitlines()[0]
        assert "Content-Type: text/event-stream; charset=utf-8" in head
        assert "Transfer-Encoding: chunked" in head
        assert "Cache-Control: no-cache" in head
        payload = self._dechunk(body).decode("utf-8")
        assert payload.startswith(": tail start cursor=0\n\n")
        assert payload.count("event: tick.done") == 3
        # Every data: line is strict one-line JSON.
        for line in payload.splitlines():
            if line.startswith("data: "):
                json.loads(line[len("data: "):])

    def test_tail_heartbeats_over_the_wire(self, make_gateway):
        gw = make_gateway()
        head, body = self._tail_raw(gw, "timeout=0.4&heartbeat=0.05")
        assert "HTTP/1.1 200" in head.splitlines()[0]
        assert b": heartbeat" in self._dechunk(body)

    def test_bad_tail_params_are_400_json(self, make_gateway):
        gw = make_gateway()
        status, body, _ = http_call(gw.url, "GET", "/tail?max_events=0")
        assert status == 400
        assert body["error"]["status"] == 400
        status, body, _ = http_call(gw.url, "GET", "/tail?since=soon")
        assert status == 400

    def test_gateway_survives_mid_stream_disconnect(self, make_gateway):
        gw = make_gateway()
        host, port = gw.host, gw.port
        sock = socket.create_connection((host, port), timeout=5.0)
        sock.sendall(
            f"GET /tail?timeout=30&heartbeat=0.05 HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n\r\n".encode("ascii")
        )
        sock.recv(1024)  # headers + first frames are flowing
        sock.close()     # hang up mid-stream
        time.sleep(0.2)
        # New connections still served after the disconnect poisoned that one.
        status, body, _ = http_call(gw.url, "GET", "/healthz")
        assert status == 200 and body["status"] == "ok"

    def test_connection_reuse_after_completed_stream(self, make_gateway):
        gw = make_gateway()
        import repro.obs as obs

        obs.configure(logging=True, log_sink=False)
        log_event("tick.done")
        host, port = gw.host, gw.port
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(
                f"GET /tail?since=0&max_events=1&timeout=5 HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n\r\n".encode("ascii")
            )
            blob = b""
            while not blob.endswith(b"0\r\n\r\n"):
                chunk = sock.recv(65536)
                assert chunk, f"connection closed before terminator: {blob!r}"
                blob += chunk
            # Same connection, second request: the stream ended cleanly with
            # a zero-length chunk, so keep-alive must still work.
            sock.sendall(
                f"GET /healthz HTTP/1.1\r\nHost: {host}:{port}\r\n"
                f"Connection: close\r\n\r\n".encode("ascii")
            )
            second = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                second += chunk
        assert b"HTTP/1.1 200" in second
        assert b'"status": "ok"' in second or b'"status":"ok"' in second
