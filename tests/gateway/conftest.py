"""Fixtures for the HTTP gateway suite.

Every test runs a real :class:`ThreadingHTTPServer` on an ephemeral loopback
port (``start(port=0)``) — no sockets are mocked, so the suite exercises the
exact wire path production traffic takes.
"""

import pytest

from repro.gateway import Gateway
from repro.serving import InferenceServer

from gatewaylib import constant_predictor


@pytest.fixture
def make_gateway():
    """Factory yielding started gateways; stops every one at teardown."""
    gateways = []

    def build(server=None, fleet=None, **kwargs):
        if server is None:
            server = InferenceServer(max_batch_size=8, max_wait_ms=1.0, cache_size=64)
            server.deploy("gen-0", constant_predictor(0.0))
        gateway = Gateway(server, fleet=fleet, **kwargs)
        gateway.start(port=0)
        gateways.append(gateway)
        return gateway

    yield build
    for gateway in gateways:
        gateway.stop(timeout=10.0)
