"""The closed-loop load generator: report math, response classification,
seeded reproducibility."""

import socket

import numpy as np
import pytest

from repro.gateway import LoadGenerator, LoadReport, RouteReport
from repro.gateway.loadgen import default_payload_fn, default_validate_fn

from gatewaylib import HISTORY, NODES


# --------------------------------------------------------------------------- #
# Report math
# --------------------------------------------------------------------------- #
def test_report_math_and_summary():
    report = LoadReport(
        requests=4,
        ok=2,
        http_errors=1,
        dropped=1,
        duration=2.0,
        latencies=[0.010, 0.020, 0.030, 0.040],
        status_counts={200: 2, 404: 1},
    )
    assert report.throughput == 2.0
    assert report.p50_ms == pytest.approx(25.0)
    assert report.p99_ms == pytest.approx(39.7)
    assert report.latency_ms(1.0) == pytest.approx(40.0)
    summary = report.summary()
    assert "dropped: 1" in summary
    assert "2.0 req/s" in summary
    assert "200: 2" in summary and "404: 1" in summary


def test_empty_report_is_well_defined():
    report = LoadReport(requests=0, ok=0, http_errors=0, dropped=0, duration=0.0)
    assert report.throughput == 0.0
    assert np.isnan(report.p50_ms)
    assert "(none)" in report.summary()


def test_default_validate_fn():
    good = {"mean": [[1.0, 2.0], [3.0, 4.0]]}
    assert default_validate_fn(200, good)
    assert not default_validate_fn(404, good)  # wrong status
    assert not default_validate_fn(200, "nope")  # not a dict
    assert not default_validate_fn(200, {})  # missing mean
    assert not default_validate_fn(200, {"mean": [[1.0, None]]})  # non-finite
    assert not default_validate_fn(200, {"mean": [1.0, 2.0]})  # not 2-D


# --------------------------------------------------------------------------- #
# Classification against a live gateway
# --------------------------------------------------------------------------- #
def test_classification_ok_error_dropped(make_gateway):
    gateway = make_gateway()
    predict = default_payload_fn(HISTORY, NODES)

    def payload(rng, index):
        cycle = index % 3
        if cycle == 0:
            return predict(rng, index)  # -> 200, valid
        if cycle == 1:
            return "/predict", {}  # -> 400 (http error)
        return "/nope", {}  # -> 404 (http error)

    loadgen = LoadGenerator(gateway.url, num_workers=2, seed=3, payload_fn=payload)
    report = loadgen.run(total_requests=30)
    assert report.requests == 30
    assert report.ok == 10
    assert report.http_errors == 20
    assert report.dropped == 0
    assert report.status_counts == {200: 10, 400: 10, 404: 10}
    assert len(report.latencies) == 30
    assert report.throughput > 0


def test_valid_status_with_invalid_body_counts_as_dropped(make_gateway):
    gateway = make_gateway()
    loadgen = LoadGenerator(
        gateway.url,
        num_workers=1,
        seed=0,
        history=HISTORY,
        nodes=NODES,
        validate_fn=lambda status, body: False,  # reject every body
    )
    report = loadgen.run(total_requests=5)
    assert report.status_counts == {200: 5}
    assert report.ok == 0
    assert report.dropped == 5  # a malformed success is still a failed request


def test_transport_failures_count_as_dropped():
    # Bind-then-close guarantees a port with nothing listening on it.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    loadgen = LoadGenerator(
        f"http://127.0.0.1:{port}", num_workers=1, seed=0, timeout=0.5
    )
    report = loadgen.run(total_requests=3)
    assert report.requests == 3
    assert report.dropped == 3
    assert report.ok == 0 and report.http_errors == 0
    assert report.status_counts == {}


# --------------------------------------------------------------------------- #
# Reproducibility
# --------------------------------------------------------------------------- #
def test_same_seed_same_request_stream(make_gateway):
    gateway = make_gateway()

    def capture_run(seed):
        windows = []
        base = default_payload_fn(HISTORY, NODES)

        def payload(rng, index):
            path, body = base(rng, index)
            windows.append(body["window"])
            return path, body

        LoadGenerator(
            gateway.url, num_workers=1, seed=seed, payload_fn=payload
        ).run(total_requests=4)
        return windows

    first, second = capture_run(seed=42), capture_run(seed=42)
    assert first == second
    assert capture_run(seed=43) != first


def test_duration_bound_stops_workers(make_gateway):
    gateway = make_gateway()
    loadgen = LoadGenerator(
        gateway.url, num_workers=2, seed=0, history=HISTORY, nodes=NODES
    )
    report = loadgen.run(duration=0.3)
    assert report.requests > 0
    assert report.dropped == 0
    assert report.duration < 5.0


def test_run_requires_a_bound(make_gateway):
    gateway = make_gateway()
    loadgen = LoadGenerator(gateway.url)
    with pytest.raises(ValueError):
        loadgen.run()


# --------------------------------------------------------------------------- #
# Wire-format strictness
# --------------------------------------------------------------------------- #
def test_nan_payload_fails_before_hitting_the_wire():
    """Regression for the ``boundary/json-nan`` analyzer finding: a NaN in a
    custom payload used to serialize as bare ``NaN`` (invalid JSON the
    gateway rejects with a 400 the report miscounted as an http error).  It
    must now raise locally, before any bytes are written."""
    loadgen = LoadGenerator(
        "http://127.0.0.1:1",
        num_workers=1,
        payload_fn=lambda rng, index: ("/predict", {"window": [[float("nan")]]}),
    )
    rng = np.random.default_rng(0)
    # conn=None proves serialization fails before the connection is touched.
    with pytest.raises(ValueError, match="[Nn]a[Nn]|[Oo]ut of range"):
        loadgen._one_request(None, rng, 0)


# --------------------------------------------------------------------------- #
# Per-route breakdown
# --------------------------------------------------------------------------- #
def test_routes_partition_the_aggregate(make_gateway):
    gateway = make_gateway()
    predict = default_payload_fn(HISTORY, NODES)

    def payload(rng, index):
        if index % 3 == 0:
            return "/nope", {}  # -> 404
        return predict(rng, index)  # -> 200, valid

    loadgen = LoadGenerator(gateway.url, num_workers=2, seed=3, payload_fn=payload)
    report = loadgen.run(total_requests=30)

    assert set(report.routes) == {"/predict", "/nope"}
    predict_route = report.routes["/predict"]
    nope = report.routes["/nope"]
    assert predict_route.requests == 20 and predict_route.ok == 20
    assert nope.requests == 10 and nope.http_errors == 10 and nope.ok == 0
    # Per-route counters and latencies sum exactly to the aggregate.
    assert sum(r.requests for r in report.routes.values()) == report.requests
    assert sum(r.ok for r in report.routes.values()) == report.ok
    assert sum(r.http_errors for r in report.routes.values()) == report.http_errors
    assert sum(r.dropped for r in report.routes.values()) == report.dropped
    assert sum(len(r.latencies) for r in report.routes.values()) == len(report.latencies)
    assert np.isfinite(predict_route.p50_ms) and np.isfinite(predict_route.p99_ms)
    assert predict_route.p50_ms <= predict_route.p99_ms


def test_route_breakdown_appears_in_the_summary():
    report = LoadReport(
        requests=3, ok=2, http_errors=1, dropped=0, duration=1.0,
        latencies=[0.01, 0.02, 0.03],
        routes={
            "/predict": RouteReport(requests=2, ok=2, latencies=[0.01, 0.02]),
            "/nope": RouteReport(requests=1, http_errors=1, latencies=[0.03]),
        },
    )
    summary = report.summary()
    assert "/predict" in summary and "/nope" in summary
    assert "2 req" in summary


def test_empty_route_report_quantiles_are_nan():
    route = RouteReport()
    assert np.isnan(route.p50_ms) and np.isnan(route.p99_ms)
