"""Regression tests for Prometheus exposition-format conformance.

Found by the ``boundary/metric-name`` audit: the old renderer appended
sample lines in call order, so the per-deployment and per-stream loops
interleaved families (``repro_deployment_a{A} repro_deployment_b{A}
repro_deployment_a{B}``) — illegal under the text format's rule that all
lines of one metric family must form a single uninterrupted group.  The
exposition now buffers per family, and the parser rejects a family that
resumes after another family's samples (so the bug class cannot return
silently).
"""

import numpy as np
import pytest

from repro.gateway.metrics import _Exposition, parse_prometheus_text
from repro.serving import InferenceServer

from gatewaylib import HISTORY, NODES, constant_predictor, http_call


def family_order(text):
    """Family of each sample line, in emission order (summaries collapsed)."""
    types = {}
    order = []
    for line in text.splitlines():
        if line.startswith("# TYPE"):
            parts = line.split()
            types[parts[2]] = parts[3]
            continue
        if not line or line.startswith("#"):
            continue
        name = line.split("{", 1)[0].split(" ", 1)[0]
        family = name
        for suffix in ("_count", "_sum"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "summary":
                family = base
        order.append(family)
    return order


def assert_grouped(text):
    order = family_order(text)
    seen = set()
    previous = None
    for family in order:
        if family != previous:
            assert family not in seen, f"family {family!r} is not contiguous"
            seen.add(family)
            previous = family


class TestFamilyGrouping:
    def test_exposition_groups_interleaved_adds(self):
        exp = _Exposition()
        for index in ("a", "b"):
            exp.add("demo_one_total", "counter", "One.", 1, {"x": index})
            exp.add("demo_two_total", "counter", "Two.", 2, {"x": index})
        text = exp.text()
        assert_grouped(text)
        lines = text.splitlines()
        assert lines.index('demo_one_total{x="b"} 1') == lines.index(
            'demo_one_total{x="a"} 1'
        ) + 1

    def test_summary_count_and_sum_stay_with_their_family(self):
        exp = _Exposition()
        exp.header("demo_seconds", "summary", "Latency.")
        for route in ("a", "b"):
            exp.sample("demo_seconds", "demo_seconds", {"route": route, "quantile": "0.5"}, 1)
            exp.sample("demo_seconds", "demo_seconds_count", {"route": route}, 2)
            exp.sample("demo_seconds", "demo_seconds_sum", {"route": route}, 3)
        exp.add("demo_other", "gauge", "Other.", 0)
        assert_grouped(exp.text())
        parsed = parse_prometheus_text(exp.text())
        assert parsed["demo_seconds_count"][(("route", "a"),)] == 2.0

    def test_illegal_family_name_is_rejected_at_runtime(self):
        exp = _Exposition()
        with pytest.raises(ValueError, match="illegal Prometheus"):
            exp.add("demo-bad", "gauge", "Bad.", 1)

    def test_sample_requires_declared_family(self):
        exp = _Exposition()
        with pytest.raises(KeyError):
            exp.sample("undeclared", "undeclared", None, 1)


class TestParserStructureChecks:
    def test_interleaved_families_are_rejected(self):
        text = (
            "# TYPE demo_one_total counter\n"
            'demo_one_total{x="a"} 1\n'
            "# TYPE demo_two_total counter\n"
            'demo_two_total{x="a"} 1\n'
            'demo_one_total{x="b"} 1\n'
        )
        with pytest.raises(ValueError, match="not contiguous"):
            parse_prometheus_text(text)

    def test_duplicate_type_line_is_rejected(self):
        text = (
            "# TYPE demo_total counter\n"
            "demo_total 1\n"
            "# TYPE demo_total counter\n"
            "demo_total 2\n"
        )
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_prometheus_text(text)

    def test_headerless_fixtures_stay_parseable(self):
        parsed = parse_prometheus_text("a_total 1\nb_total 2\na_total 3\n")
        assert parsed["a_total"][()] == 3.0


class TestRealScrapeIsGrouped:
    def test_multi_deployment_scrape_passes_the_structure_check(self, make_gateway):
        """Two deployments + shadow stats: the exact shape that interleaved."""
        server = InferenceServer(max_batch_size=8, max_wait_ms=1.0, cache_size=64)
        server.deploy("gen0", constant_predictor(0.0))
        server.deploy("gen1", constant_predictor(1.0))
        gateway = make_gateway(server=server)
        window = np.zeros((HISTORY, NODES)).tolist()
        for deployment in ("gen0", "gen1"):
            status, _, _ = http_call(
                gateway.url,
                "POST",
                "/predict",
                {"window": window, "deployment": deployment},
            )
            assert status == 200
        status, text, _ = http_call(gateway.url, "GET", "/metrics")
        assert status == 200
        assert_grouped(text)
        series = parse_prometheus_text(text)  # strict parser enforces grouping too
        assert series["repro_deployment_requests_served_total"][
            (("deployment", "gen0"), ("version", "v0"))
        ] >= 1.0
