"""HTTP error taxonomy: every failure mode maps to its status code, and no
response ever carries a stack trace."""

import json

import numpy as np
import pytest

from repro.fleet import StreamFleet
from repro.serving import InferenceServer

from gatewaylib import HISTORY, HORIZON, NODES, constant_predictor, http_call, raw_call


def _window():
    return np.zeros((HISTORY, NODES)).tolist()


def _assert_error(body, status):
    """Error bodies are compact JSON records, never tracebacks."""
    assert body["error"]["status"] == status
    text = json.dumps(body)
    assert "Traceback" not in text
    assert "File \\\"" not in text


# --------------------------------------------------------------------------- #
# 400 — malformed bodies
# --------------------------------------------------------------------------- #
def test_400_invalid_json(make_gateway):
    gateway = make_gateway()
    status, body, _ = raw_call(gateway.url, "POST", "/predict", b"{not json")
    assert status == 400
    _assert_error(body, 400)


def test_400_non_object_body(make_gateway):
    gateway = make_gateway()
    status, body, _ = raw_call(gateway.url, "POST", "/predict", b"[1, 2, 3]")
    assert status == 400
    _assert_error(body, 400)


def test_400_missing_window(make_gateway):
    gateway = make_gateway()
    status, body, _ = http_call(gateway.url, "POST", "/predict", {"nope": 1})
    assert status == 400
    _assert_error(body, 400)
    assert "window" in body["error"]["message"]


@pytest.mark.parametrize(
    "window",
    [
        [1.0, 2.0, 3.0],  # 1-D
        [["a", "b"], ["c", "d"]],  # non-numeric
        [],  # empty
        [[]],  # empty rows
    ],
)
def test_400_bad_window_shapes(make_gateway, window):
    gateway = make_gateway()
    status, body, _ = http_call(gateway.url, "POST", "/predict", {"window": window})
    assert status == 400
    _assert_error(body, 400)


def test_400_misaligned_batch_fields(make_gateway):
    gateway = make_gateway()
    status, body, _ = http_call(
        gateway.url, "POST", "/predict", {"windows": [_window()], "keys": ["a", "b"]}
    )
    assert status == 400
    _assert_error(body, 400)
    status, body, _ = http_call(
        gateway.url,
        "POST",
        "/predict",
        {"windows": [_window()], "deployments": ["gen-0", "gen-0"]},
    )
    assert status == 400


def test_400_body_over_size_limit(make_gateway):
    gateway = make_gateway(max_body_bytes=512)
    big = {"window": np.zeros((64, 64)).tolist()}
    status, body, _ = http_call(gateway.url, "POST", "/predict", big)
    assert status == 400
    _assert_error(body, 400)
    assert "byte" in body["error"]["message"]


def test_400_observe_non_numeric_row(make_gateway):
    server = InferenceServer(max_batch_size=8, max_wait_ms=1.0)
    server.deploy("gen-0", constant_predictor(0.0))
    fleet = StreamFleet(server, history=HISTORY, horizon=HORIZON)
    fleet.add_stream("s0")
    gateway = make_gateway(server=server, fleet=fleet)
    status, body, _ = http_call(
        gateway.url, "POST", "/observe", {"stream": "s0", "observation": ["x"] * NODES}
    )
    assert status == 400
    _assert_error(body, 400)


def test_400_deploy_without_resolver_or_checkpoint(make_gateway):
    gateway = make_gateway()
    status, body, _ = http_call(
        gateway.url, "POST", "/admin/deploy", {"name": "x", "model": {"value": 1}}
    )
    assert status == 400
    _assert_error(body, 400)
    status, body, _ = http_call(gateway.url, "POST", "/admin/deploy", {"name": "x"})
    assert status == 400
    status, body, _ = http_call(
        gateway.url, "POST", "/admin/deploy", {"name": "x", "checkpoint": "/no/such/dir"}
    )
    assert status == 400
    _assert_error(body, 400)


# --------------------------------------------------------------------------- #
# 404 — unknown things
# --------------------------------------------------------------------------- #
def test_404_unknown_path(make_gateway):
    gateway = make_gateway()
    status, body, _ = http_call(gateway.url, "GET", "/nope")
    assert status == 404
    _assert_error(body, 404)


def test_404_unknown_deployment(make_gateway):
    gateway = make_gateway()
    status, body, _ = http_call(
        gateway.url, "POST", "/predict", {"window": _window(), "deployment": "ghost"}
    )
    assert status == 404
    _assert_error(body, 404)
    assert "ghost" in body["error"]["message"]


def test_404_promote_unknown_deployment(make_gateway):
    gateway = make_gateway()
    status, body, _ = http_call(gateway.url, "POST", "/admin/promote", {"name": "ghost"})
    assert status == 404
    _assert_error(body, 404)


def test_404_observe_without_fleet(make_gateway):
    gateway = make_gateway()
    status, body, _ = http_call(
        gateway.url, "POST", "/observe", {"stream": "s0", "observation": [1.0] * NODES}
    )
    assert status == 404
    _assert_error(body, 404)


def test_404_observe_unknown_stream(make_gateway):
    server = InferenceServer(max_batch_size=8, max_wait_ms=1.0)
    server.deploy("gen-0", constant_predictor(0.0))
    fleet = StreamFleet(server, history=HISTORY, horizon=HORIZON)
    fleet.add_stream("s0")
    gateway = make_gateway(server=server, fleet=fleet)
    status, body, _ = http_call(
        gateway.url, "POST", "/observe", {"stream": "ghost", "observation": [1.0] * NODES}
    )
    assert status == 404
    _assert_error(body, 404)


def test_404_routes_with_unknown_deployment(make_gateway):
    gateway = make_gateway()
    status, body, _ = http_call(
        gateway.url, "POST", "/admin/routes", {"weights": {"ghost": 1.0}}
    )
    assert status == 404
    _assert_error(body, 404)


# --------------------------------------------------------------------------- #
# 405 / 409
# --------------------------------------------------------------------------- #
def test_405_wrong_method(make_gateway):
    gateway = make_gateway()
    status, body, _ = http_call(gateway.url, "GET", "/predict")
    assert status == 405
    _assert_error(body, 405)
    status, body, _ = http_call(gateway.url, "POST", "/healthz", {})
    assert status == 405
    _assert_error(body, 405)


def test_409_rollback_without_history(make_gateway):
    gateway = make_gateway()
    status, body, _ = http_call(gateway.url, "POST", "/admin/rollback", {})
    assert status == 409
    _assert_error(body, 409)


# --------------------------------------------------------------------------- #
# 500 — a model blowing up stays an opaque internal error
# --------------------------------------------------------------------------- #
def test_500_model_failure_does_not_leak_details(make_gateway):
    def exploding(windows):
        raise ValueError("secret internal detail")

    server = InferenceServer(max_batch_size=8, max_wait_ms=1.0)
    server.deploy("gen-0", constant_predictor(0.0))
    server.deploy("bad", exploding)
    gateway = make_gateway(server=server)
    status, body, _ = http_call(
        gateway.url, "POST", "/predict", {"window": _window(), "deployment": "bad"}
    )
    assert status == 500
    _assert_error(body, 500)
    assert body["error"]["message"] == "internal error: ValueError"
    assert "secret" not in json.dumps(body)


# --------------------------------------------------------------------------- #
# 503 — stopped server answers unavailable, with Retry-After
# --------------------------------------------------------------------------- #
def test_503_when_inference_server_stopped(make_gateway):
    gateway = make_gateway()
    gateway.server.stop()
    status, body, headers = http_call(
        gateway.url, "POST", "/predict", {"window": _window()}
    )
    assert status == 503
    _assert_error(body, 503)
    assert headers["Retry-After"] == "1"


# --------------------------------------------------------------------------- #
# 401 — bearer auth on the admin plane and the event tail
# --------------------------------------------------------------------------- #
def _bearer(token):
    return {"Authorization": f"Bearer {token}"}


def test_401_guarded_routes_require_the_token(make_gateway):
    gateway = make_gateway(admin_token="s3cret")
    for method, path in [
        ("POST", "/admin/rollback"),
        ("GET", "/admin/routes"),
        ("GET", "/tail?timeout=1"),
    ]:
        status, body, headers = http_call(
            gateway.url, method, path, {} if method == "POST" else None
        )
        assert status == 401, path
        _assert_error(body, 401)
        assert headers["WWW-Authenticate"] == "Bearer"


def test_401_wrong_token_is_rejected(make_gateway):
    gateway = make_gateway(admin_token="s3cret")
    status, body, _ = http_call(
        gateway.url, "GET", "/admin/routes", headers=_bearer("wrong")
    )
    assert status == 401
    _assert_error(body, 401)
    # Bare token without the Bearer scheme is also rejected.
    status, body, _ = http_call(
        gateway.url, "GET", "/admin/routes", headers={"Authorization": "s3cret"}
    )
    assert status == 401


def test_correct_token_unlocks_the_guarded_plane(make_gateway):
    gateway = make_gateway(admin_token="s3cret")
    status, body, _ = http_call(
        gateway.url, "GET", "/admin/routes", headers=_bearer("s3cret")
    )
    assert status == 200
    # Auth happens before taxonomy: a guarded route still 409s normally.
    status, body, _ = http_call(
        gateway.url, "POST", "/admin/rollback", {}, headers=_bearer("s3cret")
    )
    assert status == 409


def test_unguarded_routes_stay_open_with_a_token_set(make_gateway):
    gateway = make_gateway(admin_token="s3cret")
    for path in ["/healthz", "/metrics", "/snapshot"]:
        status, _, _ = http_call(gateway.url, "GET", path)
        assert status == 200, path
    status, _, _ = http_call(
        gateway.url, "POST", "/predict", {"window": _window()}
    )
    assert status == 200


def test_admin_token_env_var_fallback(make_gateway, monkeypatch):
    monkeypatch.setenv("REPRO_ADMIN_TOKEN", "from-env")
    gateway = make_gateway()
    status, _, _ = http_call(gateway.url, "GET", "/admin/routes")
    assert status == 401
    status, _, _ = http_call(
        gateway.url, "GET", "/admin/routes", headers=_bearer("from-env")
    )
    assert status == 200


def test_no_token_means_everything_stays_open(make_gateway, monkeypatch):
    monkeypatch.delenv("REPRO_ADMIN_TOKEN", raising=False)
    gateway = make_gateway()
    status, _, _ = http_call(gateway.url, "GET", "/admin/routes")
    assert status == 200
