"""Graceful lifecycle: ephemeral binding, bounded stop, idempotent teardown.

The regression at stake: ``stop(timeout)`` must return within its bound even
with requests in flight on a hung model — the inference server's bounded stop
fails stranded futures with ``ServerStopped``, which wakes the blocked
handler into a 503.
"""

import threading
import time

import numpy as np

from repro.gateway import Gateway
from repro.serving import InferenceServer

from gatewaylib import HISTORY, NODES, constant_predictor, http_call


def _window():
    return np.zeros((HISTORY, NODES)).tolist()


def test_ephemeral_ports_are_distinct(make_gateway):
    first, second = make_gateway(), make_gateway()
    assert first.port != second.port
    for gateway in (first, second):
        status, body, _ = http_call(gateway.url, "GET", "/healthz")
        assert status == 200 and body["status"] == "ok"


def test_context_manager_round_trip():
    server = InferenceServer(max_batch_size=8, max_wait_ms=1.0)
    server.deploy("gen-0", constant_predictor(0.0))
    with Gateway(server) as gateway:
        status, _, _ = http_call(gateway.url, "POST", "/predict", {"window": _window()})
        assert status == 200
    assert gateway.port is None
    assert not server.stats["running"]


def test_stop_is_idempotent_and_bounded_when_idle():
    server = InferenceServer(max_batch_size=8, max_wait_ms=1.0)
    server.deploy("gen-0", constant_predictor(0.0))
    gateway = Gateway(server).start(port=0)
    started = time.monotonic()
    gateway.stop(timeout=5.0)
    gateway.stop(timeout=5.0)  # second stop is a no-op, not an error
    assert time.monotonic() - started < 5.0
    assert gateway.inflight_requests == 0


def test_stop_never_hangs_with_requests_in_flight_on_a_hung_model():
    server = InferenceServer(max_batch_size=8, max_wait_ms=1.0, cache_size=0)
    server.deploy("gen-0", constant_predictor(0.0))
    gateway = Gateway(server, request_timeout=30.0).start(port=0)
    url = gateway.url

    release = threading.Event()
    entered = threading.Event()

    def hang(deployment_name, stacked):
        entered.set()
        release.wait(timeout=30.0)

    server.fault_injector = hang

    outcome = {}

    def client():
        try:
            outcome["response"] = http_call(url, "POST", "/predict", {"window": _window()})
        except OSError as error:  # connection torn down mid-request
            outcome["error"] = error

    thread = threading.Thread(target=client, daemon=True)
    thread.start()
    assert entered.wait(timeout=5.0), "request never reached the model"

    started = time.monotonic()
    gateway.stop(timeout=1.5)
    elapsed = time.monotonic() - started
    # Bounded: well under the 30s the hung model (and the client) would take.
    assert elapsed < 6.0
    assert server.stats["stranded_requests"] == 1

    release.set()
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    # The stranded client saw a clean 503 (or a torn connection) — never a hang.
    if "response" in outcome:
        status, body, headers = outcome["response"]
        assert status == 503
        assert headers["Retry-After"] == "1"
        assert body["error"]["status"] == 503


def test_stop_without_stopping_the_server():
    server = InferenceServer(max_batch_size=8, max_wait_ms=1.0)
    server.deploy("gen-0", constant_predictor(0.0))
    gateway = Gateway(server).start(port=0)
    gateway.stop(timeout=5.0, stop_server=False)
    assert server.stats["running"]
    # The server keeps serving in-process traffic after the gateway is gone.
    result = server.predict_many([np.zeros((HISTORY, NODES))], timeout=10.0)[0]
    assert float(result.mean[0, 0, 0]) == 0.0
    server.stop()


def test_restart_after_stop_binds_a_fresh_port():
    server = InferenceServer(max_batch_size=8, max_wait_ms=1.0)
    server.deploy("gen-0", constant_predictor(0.0))
    gateway = Gateway(server).start(port=0)
    gateway.stop(timeout=5.0, stop_server=False)
    gateway.start(port=0)
    try:
        status, _, _ = http_call(gateway.url, "POST", "/predict", {"window": _window()})
        assert status == 200
    finally:
        gateway.stop(timeout=5.0)
