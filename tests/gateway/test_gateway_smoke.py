"""End-to-end smoke: every gateway endpoint over a real ephemeral-port server."""

import numpy as np

from repro.fleet import StreamFleet
from repro.gateway import parse_prometheus_text
from repro.serving import InferenceServer

from gatewaylib import HISTORY, HORIZON, NODES, constant_predictor, http_call


def _build_fleet_gateway(make_gateway):
    server = InferenceServer(max_batch_size=8, max_wait_ms=1.0, cache_size=64)
    server.deploy("gen-0", constant_predictor(0.0), version="v0")
    fleet = StreamFleet(server, history=HISTORY, horizon=HORIZON, monitor_window=32)
    fleet.add_streams(["s0", "s1"])
    return server, fleet, make_gateway(server=server, fleet=fleet)


def test_full_surface_smoke(make_gateway):
    server, fleet, gateway = _build_fleet_gateway(make_gateway)
    url = gateway.url
    assert gateway.port not in (None, 0)

    # healthz
    status, body, _ = http_call(url, "GET", "/healthz")
    assert status == 200
    assert body["status"] == "ok"
    assert body["deployments"] == 1
    assert body["default_route"] == "gen-0"
    assert body["streams"] == 2

    # single predict
    window = np.zeros((HISTORY, NODES)).tolist()
    status, body, _ = http_call(url, "POST", "/predict", {"window": window})
    assert status == 200
    assert body["horizon"] == HORIZON and body["num_nodes"] == NODES
    mean = np.asarray(body["mean"], dtype=np.float64)
    lower = np.asarray(body["lower"], dtype=np.float64)
    upper = np.asarray(body["upper"], dtype=np.float64)
    assert mean.shape == (HORIZON, NODES)
    assert np.all(mean == 0.0)
    assert np.all(lower <= mean) and np.all(mean <= upper)

    # batched predict with keys + a pinned deployment
    status, body, _ = http_call(
        url,
        "POST",
        "/predict",
        {
            "windows": [window, window],
            "keys": ["region-a", "region-b"],
            "deployments": [None, "gen-0"],
        },
    )
    assert status == 200
    assert body["count"] == 2
    assert len(body["results"]) == 2
    for result in body["results"]:
        assert np.asarray(result["mean"]).shape == (HORIZON, NODES)

    # observe until the streams warm up; the last tick returns forecasts
    rng = np.random.default_rng(0)
    for step in range(HISTORY):
        observations = {
            "s0": rng.uniform(0.0, 1.0, NODES).tolist(),
            "s1": rng.uniform(0.0, 1.0, NODES).tolist(),
        }
        status, body, _ = http_call(
            url,
            "POST",
            "/observe",
            {"observations": observations, "return_forecasts": True},
        )
        assert status == 200
        assert set(body["streams"]) == {"s0", "s1"}
        assert body["streams"]["s0"]["step"] == step
    assert body["tick"] == HISTORY - 1
    for entry in body["streams"].values():
        assert entry["forecast_ready"]
        assert np.asarray(entry["mean"]).shape == (HORIZON, NODES)

    # single-stream observe form
    status, body, _ = http_call(
        url, "POST", "/observe", {"stream": "s0", "observation": [1.0] * NODES}
    )
    assert status == 200
    assert list(body["streams"]) == ["s0"]

    # snapshot: fleet snapshot plus the gateway's own counters
    status, snap, _ = http_call(url, "GET", "/snapshot")
    assert status == 200
    assert snap["num_streams"] == 2
    assert snap["streams"]["s0"]["step"] == HISTORY + 1
    assert snap["server"]["requests_served"] > 0
    assert snap["gateway"]["requests_total"] > 0
    assert snap["gateway"]["requests"]["/predict"]["200"] == 2

    # admin routes view
    status, body, _ = http_call(url, "GET", "/admin/routes")
    assert status == 200
    assert body["default_route"] == "gen-0"
    assert body["deployments"] == {"gen-0": "v0"}

    # metrics scrape parses and carries all three layers
    status, text, headers = http_call(url, "GET", "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    series = parse_prometheus_text(text)
    requests_total = series["gateway_requests_total"]
    assert requests_total[(("code", "200"), ("route", "/predict"))] >= 2.0
    assert series["repro_server_requests_served_total"][()] > 0.0
    assert series["repro_fleet_streams"][()] == 2.0
    assert series["repro_stream_step"][(("stream", "s0"),)] == float(HISTORY + 1)
    assert "repro_stream_coverage" in series
    assert "gateway_request_latency_seconds" in series
    assert series["repro_server_default_route"][(("deployment", "gen-0"),)] == 1.0

    # trailing slashes resolve to the same endpoint
    status, _, _ = http_call(url, "GET", "/healthz/")
    assert status == 200


def test_gateway_without_fleet_serves_ops_surface(make_gateway):
    gateway = make_gateway()
    url = gateway.url

    status, body, _ = http_call(url, "GET", "/healthz")
    assert status == 200 and body["streams"] == 0

    status, snap, _ = http_call(url, "GET", "/snapshot")
    assert status == 200
    assert "server" in snap and "gateway" in snap

    status, text, _ = http_call(url, "GET", "/metrics")
    assert status == 200
    series = parse_prometheus_text(text)
    assert "repro_server_running" in series
    assert "repro_fleet_tick" not in series
