"""Acceptance: a fixed-seed chaos fault drives an SLO alert through its whole
lifecycle — pending → firing → resolved — observable on every gateway surface
(`/alerts` JSON, `/metrics` Prometheus families, the `/tail` SSE stream) with
`/healthz` degrading to 503 while the page-severity alert is live."""

import json

import pytest

import repro.obs as obs
from repro.fleet import StreamFleet
from repro.gateway.metrics import parse_prometheus_text
from repro.obs.slo import SLOEngine, SLOSpec
from repro.scenarios import PredictFault, ScenarioSpec
from repro.graph import grid_network
from repro.streaming import PersistenceForecaster
from repro.serving import InferenceServer

from gatewaylib import http_call

HISTORY, HORIZON = 6, 2
STEPS = 24
FAULT_AT = 10          # first faulted tick (well past the window warmup)
FAULT_TICKS = 2        # consecutive faulted ticks
FLAT = {"peak_amplitude": 0.0, "weekend_attenuation": 1.0}

ZERO_DROP = SLOSpec(
    name="zero_drop",
    kind="zero",
    metric="fleet.events.stream_predict_failed",
    good=None,
    total=None,
    long_window=8,
    short_window=2,
    for_ticks=0,
    severity="page",
    description="no stream predict failures, ever",
)


@pytest.fixture(autouse=True)
def _obs_clean():
    obs.reset()
    yield
    obs.reset()


def _feeds(num_streams=3):
    network = grid_network(2, 2)
    return {
        f"c{i}": list(
            ScenarioSpec(
                name="plain", num_steps=STEPS, seed=i, config=FLAT
            ).build(network)
        )
        for i in range(num_streams)
    }


def _stack():
    """Server + fleet + attached SLO engine, nothing ticked yet."""
    model = PersistenceForecaster(horizon=HORIZON, sigma=20.0)
    server = InferenceServer(
        model.predict, model_version="base", max_batch_size=64
    ).start()
    fleet = StreamFleet(server, HISTORY, HORIZON, detector_factory=list)
    feeds = _feeds()
    for name in feeds:
        fleet.add_stream(name)
    engine = fleet.attach_slo(SLOEngine(specs=[ZERO_DROP]))
    return server, fleet, feeds, engine


def _tick_range(fleet, feeds, lo, hi):
    for t in range(lo, hi):
        fleet.tick({name: rows[t] for name, rows in feeds.items()})


class TestAlertLifecycleOverTheWire:
    def test_chaos_fault_fires_and_resolves_on_every_surface(self, make_gateway):
        obs.configure(logging=True, log_sink=False)
        server, fleet, feeds, engine = _stack()
        gw = make_gateway(server=server, fleet=fleet, slo=engine)

        # Quiet warmup: no alert, healthz green, ALERTS family absent.
        _tick_range(fleet, feeds, 0, FAULT_AT)
        status, body, _ = http_call(gw.url, "GET", "/alerts")
        assert status == 200
        assert body["firing"] == []
        assert [a["state"] for a in body["alerts"]] == ["inactive"]
        status, health, _ = http_call(gw.url, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok"
        assert health["alerts_firing"] == 0

        # Chaos: every model pass raises for FAULT_TICKS ticks.
        fault = PredictFault(
            error=RuntimeError("chaos: model pass died"), count=None
        )
        server.fault_injector = fault
        _tick_range(fleet, feeds, FAULT_AT, FAULT_AT + FAULT_TICKS)
        server.fault_injector = None
        assert fault.fired >= 1

        # -- /alerts: the zero-drop page alert is firing. --
        status, body, _ = http_call(gw.url, "GET", "/alerts")
        assert status == 200
        (alert,) = body["firing"]
        assert alert["slo"] == "zero_drop"
        assert alert["state"] == "firing"
        assert alert["severity"] == "page"
        states = [t["state"] for t in body["transitions"]]
        assert states == ["pending", "firing"]

        # -- /healthz: page severity degrades serving health to 503. --
        status, health, _ = http_call(gw.url, "GET", "/healthz")
        assert status == 503
        assert health["status"] == "degraded"
        assert health["alerts_firing"] == 1
        assert health["firing"][0]["slo"] == "zero_drop"

        # -- /metrics: ALERTS convention + burn-rate/state families. --
        status, text, headers = http_call(gw.url, "GET", "/metrics")
        assert status == 200
        series = parse_prometheus_text(text)
        alerts_key = (
            ("alertname", "zero_drop"),
            ("alertstate", "firing"),
            ("series", "fleet.events.stream_predict_failed"),
            ("severity", "page"),
        )
        assert series["ALERTS"][alerts_key] == 1.0
        state_key = (
            ("series", "fleet.events.stream_predict_failed"),
            ("severity", "page"),
            ("slo", "zero_drop"),
        )
        assert series["repro_slo_alert_state"][state_key] == 2.0  # firing
        burn = series["repro_slo_burn_rate"]
        long_key = (
            ("series", "fleet.events.stream_predict_failed"),
            ("slo", "zero_drop"),
            ("window", "long"),
        )
        assert burn[long_key] >= 1.0
        transitions = series["repro_slo_transitions_total"]
        assert transitions[(("slo", "zero_drop"), ("state", "firing"))] == 1.0
        evals_mid = series["repro_slo_evaluations_total"][()]
        assert evals_mid == FAULT_AT + FAULT_TICKS

        # Recovery: faults stopped, the short window drains the breach.
        _tick_range(fleet, feeds, FAULT_AT + FAULT_TICKS, STEPS)

        # -- /alerts: resolved, page pressure gone. --
        status, body, _ = http_call(gw.url, "GET", "/alerts")
        assert body["firing"] == []
        (alert,) = body["alerts"]
        assert alert["state"] == "resolved"
        assert alert["fired_at"] == FAULT_AT  # breach on the first faulted tick
        states = [t["state"] for t in body["transitions"]]
        assert states == ["pending", "firing", "resolved"]

        # -- /healthz: green again. --
        status, health, _ = http_call(gw.url, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok"

        # -- /metrics: counters moved monotonically, state shows resolved. --
        status, text, _ = http_call(gw.url, "GET", "/metrics")
        series = parse_prometheus_text(text)
        assert series["repro_slo_alert_state"][state_key] == 3.0  # resolved
        assert series["repro_slo_evaluations_total"][()] == STEPS
        assert series["repro_slo_evaluations_total"][()] > evals_mid
        transitions = series["repro_slo_transitions_total"]
        assert transitions[(("slo", "zero_drop"), ("state", "resolved"))] == 1.0
        # A resolved alert keeps its ALERTS row out of the firing states.
        assert alerts_key not in series.get("ALERTS", {})

        # -- /tail: the whole lifecycle is in the event stream. --
        status, raw, headers = http_call(
            gw.url, "GET", "/tail?kinds=slo.&since=0&max_events=3&timeout=5"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/event-stream")
        kinds = [
            line[len("event: "):]
            for line in raw.splitlines()
            if line.startswith("event: ")
        ]
        assert kinds == [
            "slo.alert_pending", "slo.alert_firing", "slo.alert_resolved"
        ]
        payloads = [
            json.loads(line[len("data: "):])
            for line in raw.splitlines()
            if line.startswith("data: ")
        ]
        assert [p["state"] for p in payloads] == ["pending", "firing", "resolved"]
        assert all(p["slo"] == "zero_drop" for p in payloads)
        assert payloads[1]["tick"] == FAULT_AT

    def test_lifecycle_is_deterministic_across_runs(self, make_gateway):
        """Two identical fixed-seed runs produce identical transition lists."""
        runs = []
        for _ in range(2):
            obs.reset()
            server, fleet, feeds, engine = _stack()
            try:
                fault = PredictFault(
                    error=RuntimeError("chaos: model pass died"), count=None
                )
                _tick_range(fleet, feeds, 0, FAULT_AT)
                server.fault_injector = fault
                _tick_range(fleet, feeds, FAULT_AT, FAULT_AT + FAULT_TICKS)
                server.fault_injector = None
                _tick_range(fleet, feeds, FAULT_AT + FAULT_TICKS, STEPS)
                runs.append(
                    [
                        (t["tick"], t["state"], t["series"])
                        for t in engine.transitions()
                    ]
                )
            finally:
                server.stop()
        assert runs[0] == runs[1]
        assert [state for _, state, _ in runs[0]] == [
            "pending", "firing", "resolved"
        ]


class TestAlertSurfacesWithoutEngine:
    def test_alerts_is_404_without_an_engine(self, make_gateway):
        gw = make_gateway()
        status, body, _ = http_call(gw.url, "GET", "/alerts")
        assert status == 404
        assert "no SLO engine" in body["error"]["message"]

    def test_metrics_and_healthz_omit_slo_families_without_engine(self, make_gateway):
        gw = make_gateway()
        status, text, _ = http_call(gw.url, "GET", "/metrics")
        assert status == 200
        series = parse_prometheus_text(text)
        assert "repro_slo_evaluations_total" not in series
        assert "ALERTS" not in series
        status, health, _ = http_call(gw.url, "GET", "/healthz")
        assert status == 200
        assert "alerts_firing" not in health
