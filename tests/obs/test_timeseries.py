"""MetricsHistory: bounded ring, source polling, window queries, NaN hygiene."""

import math

import pytest

from repro.obs.timeseries import MetricsHistory


class TestSampling:
    def test_sources_are_polled_with_name_prefixes(self):
        history = MetricsHistory()
        history.add_source("server", lambda: {"requests": 3, "depth": 1.5})
        history.add_source("fleet", lambda: {"tick": 7})
        values = history.sample(0)
        assert values == {"server.requests": 3.0, "server.depth": 1.5, "fleet.tick": 7.0}
        assert history.latest("fleet.tick") == 7.0

    def test_reregistering_a_source_replaces_it(self):
        history = MetricsHistory()
        history.add_source("s", lambda: {"x": 1})
        history.add_source("s", lambda: {"x": 2})
        assert history.sample(0) == {"s.x": 2.0}
        assert history.sources() == ["s"]

    def test_raising_source_is_counted_not_fatal(self):
        history = MetricsHistory()

        def broken():
            raise RuntimeError("stats backend down")

        history.add_source("bad", broken)
        history.add_source("good", lambda: {"x": 1})
        assert history.sample(0) == {"good.x": 1.0}
        assert history.stats["source_errors"] == 1

    def test_non_finite_and_non_numeric_values_dropped_at_the_door(self):
        history = MetricsHistory()
        history.add_source(
            "m",
            lambda: {
                "nan": float("nan"),
                "inf": float("inf"),
                "text": "whee",
                "ok": 0.25,
            },
        )
        assert history.sample(0) == {"m.ok": 0.25}
        # record() applies the same hygiene to externally-built rows.
        history.record(1, {"a": float("nan"), "b": 2})
        assert history.values("b") == [2.0]
        assert history.values("a") == []

    def test_capacity_bounds_the_ring(self):
        history = MetricsHistory(capacity=4)
        for tick in range(10):
            history.record(tick, {"x": tick})
        assert len(history) == 4
        assert history.series("x") == [(6, 6.0), (7, 7.0), (8, 8.0), (9, 9.0)]
        assert history.stats["last_tick"] == 9

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsHistory(capacity=0)
        with pytest.raises(TypeError):
            MetricsHistory().add_source("x", 42)


class TestQueries:
    def _filled(self):
        history = MetricsHistory()
        for tick in range(6):
            history.record(tick, {"counter": 10 * tick, "gauge": 0.5})
        return history

    def test_delta_is_last_minus_first_over_window(self):
        history = self._filled()
        assert history.delta("counter") == 50.0
        assert history.delta("counter", window=3) == 20.0
        assert history.delta("counter", window=1) == 0.0  # < 2 points
        assert history.delta("missing") == 0.0

    def test_rate_is_delta_per_tick(self):
        history = self._filled()
        assert history.rate("counter") == 10.0
        assert history.rate("counter", window=4) == 10.0

    def test_values_and_names_read_the_window(self):
        history = self._filled()
        assert history.values("gauge", window=2) == [0.5, 0.5]
        assert history.names() == ["counter", "gauge"]
        history.clear()
        assert history.names() == []
        assert history.latest("gauge") is None

    def test_metric_absent_from_some_rows_skips_those_rows(self):
        history = MetricsHistory()
        history.record(0, {"x": 1.0})
        history.record(1, {})  # a warmup NaN was dropped here
        history.record(2, {"x": 5.0})
        assert history.series("x") == [(0, 1.0), (2, 5.0)]
        assert history.delta("x") == 4.0
        # rate uses actual tick distance, not sample count
        assert history.rate("x") == 2.0


class TestCounterDelta:
    def test_metric_springing_into_existence_counts_from_zero(self):
        history = MetricsHistory()
        history.record(0, {"other": 1.0})
        history.record(1, {"other": 1.0})
        history.record(2, {"other": 1.0, "drops": 3.0})
        # delta() needs two points; counter_delta reads the 0 -> 3 appearance.
        assert history.delta("drops", window=3) == 0.0
        assert history.counter_delta("drops", window=3) == 3.0

    def test_preexisting_total_is_a_baseline_not_a_burst(self):
        history = MetricsHistory()
        # First-ever row already carries the cumulative total (engine
        # attached to a long-lived process): no earlier rows, no burst.
        history.record(0, {"drops": 47.0})
        history.record(1, {"drops": 47.0})
        assert history.counter_delta("drops", window=2) == 0.0
        history.record(2, {"drops": 49.0})
        assert history.counter_delta("drops", window=2) == 2.0

    def test_matches_delta_once_the_series_is_established(self):
        history = MetricsHistory()
        for tick in range(5):
            history.record(tick, {"c": 10.0 * tick})
        assert history.counter_delta("c", window=3) == history.delta("c", window=3)
        assert history.counter_delta("missing") == 0.0
