"""Structured event log: records, trace correlation, sinks, the ring."""

import repro.obs as obs
from repro.obs.events import (
    configure_logging,
    events_emitted,
    events_since,
    last_event_seq,
    log_event,
    logging_enabled,
    recent_events,
)
from repro.obs.trace import configure_tracing, start_trace


class TestDisabled:
    def test_log_event_is_a_noop_while_disabled(self):
        assert not logging_enabled()
        emitted_before = events_emitted()
        assert log_event("drift.coverage_breach", step=3) is None
        assert recent_events() == []
        assert events_emitted() == emitted_before


class TestRecords:
    def test_record_shape_and_ring(self):
        configure_logging(enabled=True, sink=False)
        record = log_event("serving.promote", "gen-1 live", deployment="gen-1")
        assert record["kind"] == "serving.promote"
        assert record["message"] == "gen-1 live"
        assert record["deployment"] == "gen-1"
        assert record["trace_id"] is None  # no active span
        assert record["ts"] > 0
        assert recent_events() == [record]
        assert events_emitted() >= 1

    def test_trace_id_correlates_with_the_active_span(self):
        configure_logging(enabled=True, sink=False)
        configure_tracing(enabled=True, seed=0)
        with start_trace("fleet.tick") as span:
            record = log_event("drift.mean_shift", stream="s0")
        assert record["trace_id"] == span.trace_id

    def test_recent_events_honours_limit_oldest_first(self):
        configure_logging(enabled=True, sink=False)
        for index in range(5):
            log_event("k", index=index)
        tail = recent_events(limit=2)
        assert [record["index"] for record in tail] == [3, 4]

    def test_ring_is_bounded(self):
        configure_logging(enabled=True, sink=False, ring_size=3)
        for index in range(10):
            log_event("k", index=index)
        assert [r["index"] for r in recent_events()] == [7, 8, 9]
        assert events_emitted() >= 10  # the counter never forgets


class TestSinks:
    def test_custom_sink_receives_every_record(self):
        seen = []
        configure_logging(enabled=True, sink=seen.append)
        log_event("a")
        log_event("b")
        assert [record["kind"] for record in seen] == ["a", "b"]

    def test_sink_false_silences_but_keeps_the_ring(self):
        seen = []
        configure_logging(enabled=True, sink=seen.append)
        configure_logging(sink=False)
        log_event("quiet")
        assert seen == []
        assert recent_events()[-1]["kind"] == "quiet"

    def test_obs_facade_routes_log_sink(self):
        seen = []
        obs.configure(logging=True, log_sink=seen.append)
        log_event("via-facade")
        assert seen and seen[0]["kind"] == "via-facade"


class TestCursorReads:
    def test_events_since_delivers_exactly_once_in_order(self):
        configure_logging(enabled=True, sink=False)
        for i in range(5):
            log_event("tick.done", index=i)
        cursor = 0
        seen = []
        while True:
            batch = events_since(cursor, limit=2)
            if not batch:
                break
            seen.extend(batch)
            cursor = batch[-1][0]
        assert [record["index"] for _, record in seen] == [0, 1, 2, 3, 4]
        seqs = [seq for seq, _ in seen]
        assert seqs == sorted(seqs) and len(set(seqs)) == 5
        assert last_event_seq() == seqs[-1]

    def test_cursor_at_tail_returns_nothing(self):
        configure_logging(enabled=True, sink=False)
        log_event("a")
        assert events_since(last_event_seq()) == []

    def test_ring_overflow_drops_oldest_for_lagging_cursors(self):
        configure_logging(enabled=True, sink=False, ring_size=4)
        for i in range(10):
            log_event("tick.done", index=i)
        batch = events_since(0, limit=100)
        # Only the retained tail survives; the lagging reader silently skips.
        assert [record["index"] for _, record in batch] == [6, 7, 8, 9]

    def test_empty_ring_cursor_points_at_the_emitted_count(self):
        # With nothing retained, "now" is the process-lifetime counter, so
        # a tail started from last_event_seq() sees only *future* events.
        configure_logging(enabled=True, sink=False)
        assert last_event_seq() == events_emitted()
        cursor = last_event_seq()
        log_event("fresh")
        assert [r["kind"] for _, r in events_since(cursor)] == ["fresh"]
