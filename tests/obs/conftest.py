"""Fixtures for the observability suite.

The obs layer is process-global by design (one trace store, one profiler,
one event ring), so every test starts and ends from the disabled,
cleared state — a leaked-enabled obs layer would silently perturb every
other suite's timing-sensitive tests.
"""

import pytest

import repro.obs as obs


@pytest.fixture(autouse=True)
def _obs_clean():
    obs.reset()
    yield
    obs.reset()
