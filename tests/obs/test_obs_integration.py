"""Observability against the real stack: zero behavioural footprint + coverage.

The contract the whole layer stands on: instrumenting the serving/fleet hot
path must not change a single output bit — enabled or disabled.  These tests
run the same seeded fleet with obs off and fully on and compare forecasts
bitwise, then assert the enabled run actually produced the promised
telemetry (tick traces, phase timings, drift events).
"""

import numpy as np

import repro.obs as obs
from repro.data import StreamingTrafficFeed
from repro.fleet import StreamFleet
from repro.graph import grid_network
from repro.obs.profiler import profiler
from repro.obs.trace import trace_store
from repro.serving import InferenceServer
from repro.streaming import PersistenceForecaster

HISTORY, HORIZON = 8, 4
STEPS = 24
NUM_STREAMS = 4


def _run_fleet(num_streams=NUM_STREAMS, steps=STEPS):
    network = grid_network(2, 2)
    feeds = {
        f"c{i}": StreamingTrafficFeed(network, num_steps=steps, seed=i)
        for i in range(num_streams)
    }
    model = PersistenceForecaster(horizon=HORIZON, sigma=20.0)
    with InferenceServer(
        model.predict, model_version="base", max_batch_size=64, max_wait_ms=2.0
    ) as server:
        fleet = StreamFleet(server, HISTORY, HORIZON)
        for name in feeds:
            fleet.add_stream(name)
        results = fleet.run({name: iter(feed) for name, feed in feeds.items()})
    return results


def _forecast_arrays(results):
    arrays = []
    for tick in results:
        for name, step in sorted(tick):
            if step.prediction is not None:
                arrays.append(step.prediction.mean)
                arrays.append(step.lower)
                arrays.append(step.upper)
    return arrays


def test_fleet_tick_outputs_bit_identical_with_obs_disabled_and_enabled():
    obs.reset()
    baseline = _forecast_arrays(_run_fleet())
    assert baseline  # the run must actually have produced forecasts

    obs.configure(enabled=True, seed=0, log_sink=False)
    instrumented = _forecast_arrays(_run_fleet())

    assert len(baseline) == len(instrumented)
    for expected, actual in zip(baseline, instrumented):
        np.testing.assert_array_equal(expected, actual)


def test_enabled_fleet_run_produces_tick_traces_and_phase_timings():
    obs.configure(enabled=True, seed=0, log_sink=False)
    _run_fleet(steps=HISTORY + 4)

    store = trace_store()
    assert store.stats["spans_added"] > 0
    tick_roots = [
        tree
        for tree in store.traces(limit=100)
        if tree["spans"] and tree["spans"][0]["name"] == "fleet.tick"
    ]
    assert tick_roots, "every fleet tick should be the root of its own trace"
    # A warm tick's trace carries the batch spans the predict fan-out made.
    names = set()

    def walk(record):
        names.add(record["name"])
        for child in record["children"]:
            walk(child)

    for tree in tick_roots:
        for root in tree["spans"]:
            walk(root)
    assert "batch.execute" in names
    assert "model.forward" in names

    snapshot = profiler().snapshot()
    for name in ("window_build", "batch_wait", "model_forward", "unscale"):
        assert name in snapshot, name
        assert snapshot[name]["count"] > 0
    # The stream cores fed the calibration/monitoring phases too.
    assert "aci_update" in snapshot
    assert "monitor_update" in snapshot
