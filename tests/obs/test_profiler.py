"""Phase profiler: aggregation, quantile rings, orderings, no-op discipline."""

import math

from repro.obs.profiler import (
    PHASES,
    PhaseProfiler,
    configure_profiling,
    phase,
    profiler,
    profiling_enabled,
    record_phase,
)


class TestDisabled:
    def test_phase_and_record_are_noops_while_disabled(self):
        assert not profiling_enabled()
        with phase("model_forward"):
            pass
        record_phase("model_forward", 1.0)
        assert profiler().snapshot() == {}

    def test_shared_noop_timer_is_one_instance(self):
        assert phase("a") is phase("b")


class TestAggregation:
    def test_record_accumulates_exact_count_and_total(self):
        prof = PhaseProfiler()
        prof.record("model_forward", 0.25)
        prof.record("model_forward", 0.75)
        entry = prof.snapshot()["model_forward"]
        assert entry["count"] == 2
        assert entry["total_s"] == 1.0
        assert entry["mean_ms"] == 500.0

    def test_aggregate_record_pushes_one_mean_sample(self):
        """count>1 folds a whole batch in exactly: total is the batch's sum,

        but the quantile ring gets the mean occurrence — one aggregate must
        not flood p50/p99 with identical points.
        """
        prof = PhaseProfiler()
        prof.record("batch_wait", 0.8, count=8)
        entry = prof.snapshot()["batch_wait"]
        assert entry["count"] == 8
        assert entry["total_s"] == 0.8
        assert entry["p50_ms"] == 100.0  # the mean occurrence, 0.1 s
        assert entry["p99_ms"] == 100.0  # ...and it is the only ring sample

    def test_quantiles_come_from_a_bounded_ring(self):
        prof = PhaseProfiler(sample_window=4)
        for seconds in (1.0, 1.0, 1.0, 0.001, 0.001, 0.002, 0.004):
            prof.record("unscale", seconds)
        entry = prof.snapshot()["unscale"]
        # The three 1.0 s outliers fell off the 4-deep ring.
        assert entry["p99_ms"] <= 4.0
        assert entry["count"] == 7  # ...but exact totals never forget
        assert math.isclose(entry["total_s"], 3.008)

    def test_snapshot_orders_known_phases_first_then_custom_sorted(self):
        prof = PhaseProfiler()
        prof.record("zeta_custom", 0.1)
        prof.record("checkpoint", 0.1)
        prof.record("window_build", 0.1)
        prof.record("alpha_custom", 0.1)
        assert list(prof.snapshot()) == [
            "window_build",
            "checkpoint",
            "alpha_custom",
            "zeta_custom",
        ]

    def test_canonical_phase_list_is_stable(self):
        assert PHASES[0] == "window_build"
        assert "model_forward" in PHASES and "checkpoint" in PHASES

    def test_reset_clears_everything(self):
        prof = PhaseProfiler()
        prof.record("drift_detect", 0.5)
        prof.reset()
        assert prof.snapshot() == {}


class TestModuleSurface:
    def test_phase_context_manager_times_into_the_global_profiler(self):
        configure_profiling(enabled=True, sample_window=128)
        with phase("spatial_agg"):
            pass
        with phase("spatial_agg"):
            pass
        entry = profiler().snapshot()["spatial_agg"]
        assert entry["count"] == 2
        assert entry["total_s"] >= 0.0

    def test_summary_and_top_phases_rank_by_total_cost(self):
        configure_profiling(enabled=True, sample_window=128)
        record_phase("model_forward", 3.0)
        record_phase("window_build", 1.0)
        record_phase("aci_update", 2.0)
        assert profiler().top_phases(2) == ["model_forward", "aci_update"]
        summary = profiler().summary()
        lines = summary.splitlines()
        assert lines[0].startswith("phase")
        assert lines[1].startswith("model_forward")  # costliest row first
        assert "50.0%" in lines[1]

    def test_empty_summary_has_a_placeholder(self):
        assert PhaseProfiler().summary() == "(no phases recorded)"


class TestWindowedDeltas:
    def test_first_delta_covers_lifetime_second_only_the_interval(self):
        prof = PhaseProfiler()
        prof.record("model_forward", 2.0)
        prof.record("model_forward", 2.0)
        first = prof.delta(key="scraper")
        assert first["model_forward"]["count"] == 2
        assert first["model_forward"]["total_s"] == 4.0
        assert first["model_forward"]["mean_ms"] == 2000.0
        prof.record("model_forward", 6.0)
        second = prof.delta(key="scraper")
        assert second["model_forward"]["count"] == 1
        assert second["model_forward"]["total_s"] == 6.0

    def test_idle_phases_are_omitted_from_the_interval(self):
        prof = PhaseProfiler()
        prof.record("model_forward", 1.0)
        prof.record("aci_update", 1.0)
        prof.delta(key="k")
        prof.record("aci_update", 1.0)
        interval = prof.delta(key="k")
        assert list(interval) == ["aci_update"]

    def test_keys_hold_independent_baselines(self):
        prof = PhaseProfiler()
        prof.record("window_build", 1.0)
        assert prof.delta(key="a")["window_build"]["count"] == 1
        prof.record("window_build", 1.0)
        # "b" never read before: sees lifetime; "a" sees just the new sample.
        assert prof.delta(key="b")["window_build"]["count"] == 2
        assert prof.delta(key="a")["window_build"]["count"] == 1

    def test_least_recent_key_is_evicted_at_the_cap(self):
        prof = PhaseProfiler()
        prof.record("checkpoint", 1.0)
        prof.delta(key="victim")
        for i in range(PhaseProfiler.MAX_DELTA_KEYS):
            prof.delta(key=f"k{i}")
        # victim's baseline was forgotten -> next read starts over (lifetime).
        assert prof.delta(key="victim")["checkpoint"]["count"] == 1

    def test_reset_clears_baselines(self):
        prof = PhaseProfiler()
        prof.record("drift_detect", 1.0)
        prof.delta(key="k")
        prof.reset()
        prof.record("drift_detect", 1.0)
        assert prof.delta(key="k")["drift_detect"]["count"] == 1

    def test_slo_eval_is_a_canonical_phase(self):
        assert "slo_eval" in PHASES
