"""Tracing core: span trees, cross-thread handoff, ring wrap, sampling."""

import threading
import time

import repro.obs as obs
from repro.obs.trace import (
    NOOP_SPAN,
    TraceStore,
    configure_tracing,
    current_context,
    current_span,
    record_span,
    start_span,
    start_trace,
    trace_store,
)


class TestDisabled:
    def test_everything_is_noop_when_disabled(self):
        assert start_trace("t") is NOOP_SPAN
        assert start_span("s") is NOOP_SPAN
        assert current_span() is None
        assert current_context() is None
        assert record_span("r", None, 0.0, 1.0) is None
        with start_trace("t") as span:
            assert span is NOOP_SPAN
            assert span.trace_id is None
        assert len(trace_store()) == 0

    def test_noop_span_absorbs_the_full_span_api(self):
        span = start_trace("t", attrs={"k": 1})
        assert span.set_attr("x", 2) is span
        assert span.finish() is span
        assert span.context is None


class TestSpanTrees:
    def test_ids_are_deterministic_under_a_fixed_seed(self):
        for _ in range(2):
            configure_tracing(enabled=True, seed=0, capacity=64)
            with start_trace("root") as root:
                with start_span("child"):
                    pass
            assert root.trace_id == "t00000001"
            assert root.span_id == "s00000001"
            ids = [s.span_id for s in trace_store().spans("t00000001")]
            assert sorted(ids) == ["s00000001", "s00000002"]

    def test_nesting_builds_parentage_through_the_thread_stack(self):
        configure_tracing(enabled=True, seed=0, capacity=64)
        with start_trace("root") as root:
            assert current_span() is root
            with start_span("mid") as mid:
                assert current_span() is mid
                with start_span("leaf") as leaf:
                    pass
            assert current_span() is root
        assert current_span() is None
        assert mid.parent_id == root.span_id
        assert leaf.parent_id == mid.span_id
        [tree] = trace_store().traces()
        assert tree["trace_id"] == root.trace_id
        assert tree["num_spans"] == 3
        [rendered_root] = tree["spans"]
        assert rendered_root["name"] == "root"
        [rendered_mid] = rendered_root["children"]
        [rendered_leaf] = rendered_mid["children"]
        assert [rendered_mid["name"], rendered_leaf["name"]] == ["mid", "leaf"]

    def test_explicit_parent_overrides_the_stack(self):
        configure_tracing(enabled=True, seed=0, capacity=64)
        with start_trace("root") as root:
            ctx = root.context
        span = start_span("late", parent=ctx)
        span.finish()
        assert span.trace_id == root.trace_id
        assert span.parent_id == root.span_id

    def test_to_dict_carries_duration_and_attrs(self):
        configure_tracing(enabled=True, seed=0, capacity=64)
        with start_trace("root", attrs={"k": "v"}) as root:
            time.sleep(0.001)
        record = root.to_dict()
        assert record["name"] == "root"
        assert record["attrs"] == {"k": "v"}
        assert record["duration_ms"] > 0.0


class TestCrossThreadHandoff:
    def test_worker_records_spans_under_the_submitters_trace(self):
        """The serving-layer idiom: capture a context, hand it to a worker,

        and let the worker attribute its measured interval to the submitting
        trace retroactively — parentage must survive the thread hop.
        """
        configure_tracing(enabled=True, seed=0, capacity=64)
        handoff = {}

        def worker():
            # The worker thread has an empty span stack of its own...
            assert current_span() is None
            start = time.perf_counter()
            end = start + 0.005
            batch_ctx = record_span(
                "batch.execute", handoff["ctx"], start, end, attrs={"batch": 1}
            )
            record_span("model.forward", batch_ctx, start, end + 0.001)

        with start_trace("gateway.predict") as root:
            with start_span("router.submit") as submit:
                handoff["ctx"] = current_context()
                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        assert handoff["ctx"] == submit.context
        [tree] = trace_store().traces()
        assert tree["num_spans"] == 4
        chain = []
        node = tree["spans"][0]
        while True:
            chain.append(node["name"])
            if not node["children"]:
                break
            [node] = node["children"]
        assert chain == [
            "gateway.predict",
            "router.submit",
            "batch.execute",
            "model.forward",
        ]
        assert root.trace_id == tree["trace_id"]

    def test_record_span_under_missing_context_records_nothing(self):
        configure_tracing(enabled=True, seed=0, capacity=64)
        assert record_span("orphan", None, 0.0, 1.0) is None
        assert len(trace_store()) == 0


class TestRingWrap:
    def test_capacity_evicts_oldest_spans_first(self):
        store = TraceStore(capacity=4)
        configure_tracing(enabled=True, seed=0, capacity=64)
        spans = []
        for index in range(6):
            with start_trace(f"t{index}") as span:
                pass
            spans.append(span)
            store.add(span)
        assert len(store) == 4
        stats = store.stats
        assert stats["spans_added"] == 6
        assert stats["spans_evicted"] == 2
        assert stats["spans_stored"] == 4
        # The two oldest traces fell off; the four freshest survive.
        survivors = set(store.trace_ids())
        assert survivors == {span.trace_id for span in spans[2:]}

    def test_partially_evicted_trace_still_renders(self):
        store = TraceStore(capacity=2)
        configure_tracing(enabled=True, seed=0, capacity=64)
        with start_trace("root") as root:
            with start_span("a") as a:
                pass
            with start_span("b") as b:
                pass
        for span in (root, a, b):
            store.add(span)
        # Root was evicted: the two children surface as synthetic roots.
        [tree] = store.traces()
        assert tree["num_spans"] == 2
        assert {record["name"] for record in tree["spans"]} == {"a", "b"}

    def test_clear_empties_the_ring(self):
        store = TraceStore(capacity=4)
        configure_tracing(enabled=True, seed=0, capacity=64)
        with start_trace("t") as span:
            pass
        store.add(span)
        store.clear()
        assert len(store) == 0
        assert store.traces() == []


class TestSampling:
    def _sampled_flags(self, seed, n=32, rate=0.5):
        configure_tracing(enabled=True, sample_rate=rate, seed=seed, capacity=256)
        flags = []
        for index in range(n):
            with start_trace(f"t{index}") as span:
                flags.append(span is not NOOP_SPAN)
        return flags

    def test_same_seed_samples_the_same_traces(self):
        first = self._sampled_flags(seed=123)
        second = self._sampled_flags(seed=123)
        assert first == second
        assert any(first) and not all(first)  # rate 0.5 keeps some, drops some

    def test_different_seeds_diverge(self):
        first = self._sampled_flags(seed=123)
        second = self._sampled_flags(seed=321)
        assert first != second

    def test_unsampled_traces_store_nothing_and_children_follow(self):
        configure_tracing(enabled=True, sample_rate=0.0, seed=0, capacity=64)
        with start_trace("t") as span:
            assert span is NOOP_SPAN
            assert start_span("child") is NOOP_SPAN
            assert record_span("r", span.context, 0.0, 1.0) is None
        assert len(trace_store()) == 0

    def test_obs_configure_seed_reaches_the_sampler(self):
        obs.configure(tracing=True, sample_rate=0.5, seed=99)
        first = []
        for index in range(16):
            with start_trace(f"t{index}") as span:
                first.append(span is not NOOP_SPAN)
        obs.configure(tracing=True, sample_rate=0.5, seed=99)
        second = []
        for index in range(16):
            with start_trace(f"t{index}") as span:
                second.append(span is not NOOP_SPAN)
        assert first == second
