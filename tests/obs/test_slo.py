"""SLO engine: spec validation, burn-rate math, the alert state machine."""

import json

import pytest

import repro.obs as obs
from repro.obs.events import recent_events
from repro.obs.slo import SLOEngine, SLOSpec, default_slos
from repro.obs.timeseries import MetricsHistory


def _engine(*specs, **kwargs):
    return SLOEngine(specs=list(specs), **kwargs)


class TestSpecValidation:
    def test_ratio_needs_good_and_total(self):
        with pytest.raises(ValueError, match="good"):
            SLOSpec(name="avail", kind="ratio", total="t")

    def test_bound_kinds_need_metric_and_bound(self):
        with pytest.raises(ValueError, match="metric"):
            SLOSpec(name="lat", kind="upper", bound=1.0)
        with pytest.raises(ValueError, match="bound"):
            SLOSpec(name="lat", kind="upper", metric="m")

    def test_target_and_windows_are_validated(self):
        with pytest.raises(ValueError, match="target"):
            SLOSpec(name="x", kind="zero", metric="m", target=1.0)
        with pytest.raises(ValueError, match="windows"):
            SLOSpec(name="x", kind="zero", metric="m", long_window=4, short_window=9)
        with pytest.raises(ValueError, match="kind"):
            SLOSpec(name="x", kind="median", metric="m")
        with pytest.raises(ValueError, match="severity"):
            SLOSpec(name="x", kind="zero", metric="m", severity="sev1")

    def test_duplicate_spec_names_rejected(self):
        engine = _engine(SLOSpec(name="a", kind="zero", metric="m"))
        with pytest.raises(ValueError, match="already exists"):
            engine.add_spec(SLOSpec(name="a", kind="zero", metric="m"))

    def test_budget_is_one_minus_target(self):
        assert SLOSpec(name="a", kind="zero", metric="m", target=0.95).budget == pytest.approx(0.05)


class TestBadFraction:
    def test_ratio_uses_windowed_counter_deltas(self):
        spec = SLOSpec(name="avail", kind="ratio", good="ok", total="all", target=0.9)
        history = MetricsHistory()
        # 10 requests per tick, 2 of them bad from tick 2 on.
        ok = all_ = 0
        for tick in range(6):
            history.record(tick, {"ok": ok, "all": all_})
            bad = 2 if tick >= 2 else 0
            ok += 10 - bad
            all_ += 10
        assert spec.bad_fraction(history, "avail", 3) == pytest.approx(0.2)
        # No traffic in the window burns no budget.
        empty = MetricsHistory()
        empty.record(0, {"ok": 5, "all": 5})
        empty.record(1, {"ok": 5, "all": 5})
        assert spec.bad_fraction(empty, "avail", 2) == 0.0

    def test_upper_and_lower_count_violating_samples(self):
        history = MetricsHistory()
        for tick, value in enumerate([0.1, 0.9, 0.9, 0.1]):
            history.record(tick, {"lat": value})
        upper = SLOSpec(name="u", kind="upper", metric="lat", bound=0.5, target=0.9)
        lower = SLOSpec(name="l", kind="lower", metric="lat", bound=0.5, target=0.9)
        assert upper.bad_fraction(history, "lat", 4) == pytest.approx(0.5)
        assert lower.bad_fraction(history, "lat", 4) == pytest.approx(0.5)
        assert upper.bad_fraction(history, "missing", 4) == 0.0

    def test_zero_kind_is_binary_on_counter_increase(self):
        history = MetricsHistory()
        for tick, value in enumerate([0, 0, 1, 1]):
            history.record(tick, {"drops": value})
        spec = SLOSpec(name="z", kind="zero", metric="drops", long_window=4, short_window=2)
        assert spec.bad_fraction(history, "drops", 4) == 1.0
        assert spec.bad_fraction(history, "drops", 2) == 0.0  # flat recently

    def test_wildcard_expansion_tracks_recorded_series(self):
        history = MetricsHistory()
        history.record(0, {"s.a.cov": 1.0, "s.b.cov": 1.0, "s.a.mae": 0.1})
        spec = SLOSpec(name="cov", kind="lower", metric="s.*.cov", bound=0.5)
        assert spec.expand(history) == ["s.a.cov", "s.b.cov"]


class TestStateMachine:
    def _cov_engine(self, for_ticks=2):
        spec = SLOSpec(
            name="cov",
            kind="lower",
            metric="m.cov",
            bound=0.8,
            target=0.8,
            long_window=4,
            short_window=2,
            for_ticks=for_ticks,
            severity="page",
        )
        return _engine(spec)

    def _drive(self, engine, values):
        transitions = []
        for tick, value in enumerate(values):
            engine.history.record(tick, {"m.cov": value})
            transitions.extend(engine.evaluate(tick))
        return transitions

    def test_full_lifecycle_pending_firing_resolved(self):
        engine = self._cov_engine()
        good, bad = 0.95, 0.2
        transitions = self._drive(engine, [good] * 4 + [bad] * 8 + [good] * 6)
        states = [(t["tick"], t["state"]) for t in transitions]
        # Breach needs the short window fully bad; for_ticks=2 delays firing.
        assert states[0][1] == "pending"
        assert states[1][1] == "firing"
        assert states[1][0] - states[0][0] == 2
        assert states[2][1] == "resolved"
        (alert,) = engine.alerts()
        assert alert.state == "resolved"
        assert alert.fired_at is not None and alert.resolved_at is not None
        assert engine.page_firing() is False

    def test_for_ticks_zero_fires_in_one_evaluation(self):
        engine = self._cov_engine(for_ticks=0)
        transitions = self._drive(engine, [0.9] * 4 + [0.1] * 4)
        states = [t["state"] for t in transitions]
        assert states[:2] == ["pending", "firing"]
        assert transitions[0]["tick"] == transitions[1]["tick"]

    def test_short_breach_stands_down_without_firing(self):
        engine = self._cov_engine(for_ticks=5)
        self._drive(engine, [0.9] * 4 + [0.1] * 3 + [0.9] * 6)
        (alert,) = engine.alerts()
        assert alert.state == "inactive"  # never fired -> not "resolved"
        assert alert.fired_at is None
        assert "firing" not in [t["state"] for t in engine.transitions()]

    def test_rebreach_from_resolved_goes_pending_again(self):
        engine = self._cov_engine(for_ticks=0)
        transitions = self._drive(
            engine, [0.9] * 4 + [0.1] * 4 + [0.9] * 4 + [0.1] * 4
        )
        states = [t["state"] for t in transitions]
        assert states == ["pending", "firing", "resolved", "pending", "firing"]

    def test_firing_alert_degrades_and_transitions_emit_events(self):
        obs.configure(logging=True, log_sink=False)
        engine = self._cov_engine(for_ticks=0)
        self._drive(engine, [0.9] * 4 + [0.1] * 4)
        assert engine.page_firing() is True
        assert [a.series for a in engine.firing(severity="page")] == ["m.cov"]
        kinds = [record["kind"] for record in recent_events()]
        assert "slo.alert_pending" in kinds and "slo.alert_firing" in kinds

    def test_deterministic_given_identical_histories(self):
        runs = []
        for _ in range(2):
            engine = self._cov_engine()
            runs.append(self._drive(engine, [0.9] * 4 + [0.1] * 6 + [0.9] * 5))
        assert runs[0] == runs[1]


class TestEngineSurfaces:
    def test_step_samples_then_evaluates(self):
        engine = _engine(
            SLOSpec(name="z", kind="zero", metric="src.drops",
                    long_window=4, short_window=2)
        )
        state = {"drops": 0}
        engine.history.add_source("src", lambda: dict(state))
        for tick in range(4):
            engine.step(tick)
        state["drops"] = 1
        transitions = engine.step(4)
        assert [t["state"] for t in transitions] == ["pending", "firing"]
        assert engine.evaluations == 5

    def test_snapshot_is_strict_json(self):
        engine = _engine(*default_slos())
        engine.history.record(0, {"fleet.stream.s0.coverage": 0.1})
        engine.evaluate(0)
        text = json.dumps(engine.snapshot(), allow_nan=False)
        snapshot = json.loads(text)
        assert snapshot["evaluations"] == 1
        assert {spec["name"] for spec in snapshot["specs"]} == {
            "availability", "predict_p99_latency", "stream_coverage", "zero_drop",
        }

    def test_transition_counts_are_monotonic(self):
        engine = _engine(
            SLOSpec(name="z", kind="zero", metric="d", long_window=4,
                    short_window=2, for_ticks=0)
        )
        drops = 0
        for tick in range(12):
            if tick in (4, 8):
                drops += 1
            engine.history.record(tick, {"d": drops})
            engine.evaluate(tick)
        counts = engine.transition_counts()
        assert counts[("z", "firing")] == 2
        assert counts[("z", "resolved")] == 2
        history_len = len(engine.transitions(limit=100))
        assert history_len == sum(counts.values())

    def test_transition_history_is_bounded(self):
        engine = _engine(
            SLOSpec(name="z", kind="zero", metric="d", long_window=3,
                    short_window=2, for_ticks=0),
            transition_history=4,
        )
        drops = 0
        for tick in range(40):
            if tick % 3 == 0:
                drops += 1
            engine.history.record(tick, {"d": drops})
            engine.evaluate(tick)
        assert len(engine.transitions(limit=1000)) == 4


class TestZeroKindFirstAppearance:
    def test_first_event_of_a_kind_breaches_immediately(self):
        """The event counter doesn't exist until the first event lands; the
        0 -> N appearance must read as a breach on that very tick."""
        engine = _engine(
            SLOSpec(name="z", kind="zero", metric="fleet.events.failed",
                    long_window=8, short_window=2, for_ticks=0)
        )
        for tick in range(6):
            engine.history.record(tick, {"fleet.tick": float(tick)})
            assert engine.evaluate(tick) == []
        engine.history.record(6, {"fleet.tick": 6.0, "fleet.events.failed": 3.0})
        transitions = engine.evaluate(6)
        assert [t["state"] for t in transitions] == ["pending", "firing"]
        engine.history.record(7, {"fleet.tick": 7.0, "fleet.events.failed": 3.0})
        assert [t["state"] for t in engine.evaluate(7)] == ["resolved"]
