"""Baseline add/expire round-trip, CLI exit codes, JSON schema stability."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline, analyze_paths
from repro.analysis.baseline import BaselineEntry

REPO_ROOT = Path(__file__).resolve().parents[2]

DIRTY = textwrap.dedent(
    """
    import threading

    class Core:
        def __init__(self):
            self._lock = threading.Lock()
            self._drifted = {}
            self._step = 0

        def get_state(self):
            return {"step": self._step}

        def wait(self, future):
            with self._lock:
                return future.result()
    """
)

CLEAN = textwrap.dedent(
    """
    class Core:
        def __init__(self):
            self._step = 0

        def get_state(self):
            return {"step": self._step}
    """
)


@pytest.fixture
def dirty_tree(tmp_path):
    package = tmp_path / "src" / "repro" / "streaming"
    package.mkdir(parents=True)
    (package / "fixture.py").write_text(DIRTY)
    return tmp_path


def run_cli(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestAnalyzeAPI:
    def test_findings_without_baseline(self, dirty_tree):
        report = analyze_paths(["src"], root=dirty_tree)
        assert not report.ok
        assert sorted({f.rule for f in report.findings}) == [
            "checkpoint/missing-attr",
            "lock-order/blocking-call",
        ]

    def test_baseline_absorbs_and_round_trips(self, dirty_tree, tmp_path):
        report = analyze_paths(["src"], root=dirty_tree)
        baseline = Baseline.from_findings(report.findings, justification="accepted")
        baseline_path = tmp_path / "analysis_baseline.json"
        baseline.save(baseline_path)

        reloaded = Baseline.load(baseline_path)
        assert len(reloaded) == len(baseline)
        again = analyze_paths(["src"], root=dirty_tree, baseline=reloaded)
        assert again.ok
        assert len(again.baselined) == len(report.findings)
        assert again.findings == []
        assert again.stale_baseline == []

    def test_fixed_finding_expires_its_baseline_entry(self, dirty_tree):
        report = analyze_paths(["src"], root=dirty_tree)
        baseline = Baseline.from_findings(report.findings, justification="accepted")
        fixture = dirty_tree / "src" / "repro" / "streaming" / "fixture.py"
        fixture.write_text(CLEAN)

        after_fix = analyze_paths(["src"], root=dirty_tree, baseline=baseline)
        assert after_fix.findings == []
        stale_rules = sorted(entry["rule"] for entry in after_fix.stale_baseline)
        assert stale_rules == ["checkpoint/missing-attr", "lock-order/blocking-call"]
        assert not after_fix.ok  # stale entries fail the run until removed

    def test_unjustified_entries_are_reported(self):
        baseline = Baseline(
            [BaselineEntry(rule="x/y", path="a.py", symbol="S", justification="  ")]
        )
        assert len(baseline.unjustified()) == 1


class TestCLI:
    def test_exit_one_with_findings_zero_when_baselined(self, dirty_tree):
        dirty = run_cli(["src", "--no-baseline"], cwd=dirty_tree)
        assert dirty.returncode == 1
        assert "checkpoint/missing-attr" in dirty.stdout

        write = run_cli(["src", "--write-baseline"], cwd=dirty_tree)
        assert write.returncode == 0

        clean = run_cli(["src"], cwd=dirty_tree)
        assert clean.returncode == 0, clean.stdout
        assert "2 baselined" in clean.stdout

    def test_rule_subset_selection(self, dirty_tree):
        result = run_cli(["src", "--rules", "determinism"], cwd=dirty_tree)
        assert result.returncode == 0

    def test_list_rules(self, dirty_tree):
        result = run_cli(["--list-rules"], cwd=dirty_tree)
        assert result.returncode == 0
        for family in ("lock-order", "checkpoint", "determinism", "boundary"):
            assert family in result.stdout

    def test_json_schema_is_stable(self, dirty_tree):
        result = run_cli(["src", "--json", "--no-baseline"], cwd=dirty_tree)
        payload = json.loads(result.stdout)
        assert set(payload) == {
            "version",
            "ok",
            "files_scanned",
            "findings",
            "baselined",
            "suppressed",
            "stale_baseline",
            "errors",
        }
        assert payload["version"] == 1
        assert payload["ok"] is False
        assert payload["files_scanned"] == 1
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "path", "line", "symbol", "message"}
            assert finding["path"] == "src/repro/streaming/fixture.py"
            assert isinstance(finding["line"], int)

    def test_unknown_rule_is_a_usage_error(self, dirty_tree):
        result = run_cli(["src", "--rules", "nope"], cwd=dirty_tree)
        assert result.returncode == 2
