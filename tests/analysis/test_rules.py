"""Fixture snippets for every rule: positive, negative, and noqa-suppressed."""

import ast
import textwrap
from pathlib import Path

import pytest

from repro.analysis import ModuleContext, all_rules
from repro.analysis.framework import registered_rules


def run_rule(rule_name, source, relpath="src/repro/streaming/fixture.py"):
    """Run one rule family over an inline snippet; returns its findings."""
    source = textwrap.dedent(source)
    module = ModuleContext(
        path=Path(relpath),
        relpath=relpath,
        source=source,
        tree=ast.parse(source),
        lines=source.splitlines(),
    )
    (rule,) = all_rules([rule_name])
    findings = list(rule.check(module))
    return [f for f in findings if not module.is_suppressed(f)]


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestRegistry:
    def test_all_four_families_registered(self):
        assert set(registered_rules()) >= {
            "lock-order",
            "checkpoint",
            "determinism",
            "boundary",
        }

    def test_unknown_rule_name_raises(self):
        with pytest.raises(KeyError):
            all_rules(["no-such-rule"])


class TestLockOrder:
    def test_opposite_nesting_orders_flag_a_cycle(self):
        findings = run_rule(
            "lock-order",
            """
            import threading

            class Worker:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """,
        )
        assert "lock-order/cycle" in rules_of(findings)
        (cycle,) = [f for f in findings if f.rule == "lock-order/cycle"]
        assert "Worker._a" in cycle.symbol and "Worker._b" in cycle.symbol

    def test_consistent_order_is_clean(self):
        findings = run_rule(
            "lock-order",
            """
            import threading

            class Worker:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def also_forward(self):
                    with self._a:
                        with self._b:
                            pass
            """,
        )
        assert findings == []

    def test_cycle_through_intra_class_call_is_found(self):
        findings = run_rule(
            "lock-order",
            """
            import threading

            class Worker:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def outer(self):
                    with self._a:
                        self.helper()

                def helper(self):
                    with self._b:
                        pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """,
        )
        assert "lock-order/cycle" in rules_of(findings)

    def test_nonreentrant_reentry_is_a_self_deadlock(self):
        findings = run_rule(
            "lock-order",
            """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()

                def step(self):
                    with self._lock:
                        with self._lock:
                            pass
            """,
        )
        assert rules_of(findings) == ["lock-order/self-deadlock"]

    def test_rlock_reentry_is_fine(self):
        findings = run_rule(
            "lock-order",
            """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.RLock()

                def step(self):
                    with self._lock:
                        with self._lock:
                            pass
            """,
        )
        assert findings == []

    def test_untimed_result_under_lock_flagged_timed_allowed(self):
        findings = run_rule(
            "lock-order",
            """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()

                def bad(self, future):
                    with self._lock:
                        return future.result()

                def good(self, future):
                    with self._lock:
                        return future.result(timeout=5.0)
            """,
        )
        assert rules_of(findings) == ["lock-order/blocking-call"]
        (finding,) = findings
        assert "Worker.bad" in finding.message

    def test_str_join_is_not_a_blocking_call(self):
        findings = run_rule(
            "lock-order",
            """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()

                def render(self, parts):
                    with self._lock:
                        return ", ".join(parts)
            """,
        )
        assert findings == []

    def test_untimed_join_and_sleep_under_lock_flagged(self):
        findings = run_rule(
            "lock-order",
            """
            import threading
            import time

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()

                def stop(self, thread):
                    with self._lock:
                        thread.join()
                        time.sleep(0.1)
            """,
        )
        assert rules_of(findings) == ["lock-order/blocking-call"]
        assert len(findings) == 2

    def test_blocking_reachable_through_self_call_flagged(self):
        findings = run_rule(
            "lock-order",
            """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.drain()

                def drain(self):
                    for future in []:
                        future.result()
            """,
        )
        assert "lock-order/blocking-call" in rules_of(findings)

    def test_module_level_lock_cycle_with_class_lock(self):
        findings = run_rule(
            "lock-order",
            """
            import threading

            _GLOBAL = threading.Lock()

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()

                def one(self):
                    with self._lock:
                        with _GLOBAL:
                            pass

                def two(self):
                    with _GLOBAL:
                        with self._lock:
                            pass
            """,
        )
        assert "lock-order/cycle" in rules_of(findings)

    def test_noqa_suppresses_the_finding(self):
        findings = run_rule(
            "lock-order",
            """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()

                def bad(self, future):
                    with self._lock:
                        return future.result()  # repro: noqa[lock-order/blocking-call]
            """,
        )
        assert findings == []


class TestCheckpoint:
    def test_unsaved_attr_is_flagged(self):
        findings = run_rule(
            "checkpoint",
            """
            class Core:
                def __init__(self):
                    self._step = 0
                    self._drifted = {}

                def get_state(self):
                    return {"step": self._step}
            """,
        )
        assert rules_of(findings) == ["checkpoint/missing-attr"]
        (finding,) = findings
        assert finding.symbol == "Core._drifted"

    def test_saved_attrs_and_helper_reads_are_clean(self):
        findings = run_rule(
            "checkpoint",
            """
            class Core:
                def __init__(self):
                    self._step = 0
                    self._pending = []

                def get_state(self):
                    return {"step": self._step, **self._pack()}

                def _pack(self):
                    return {"pending": list(self._pending)}
            """,
        )
        assert findings == []

    def test_lock_and_thread_factories_are_auto_exempt(self):
        findings = run_rule(
            "checkpoint",
            """
            import threading

            class Core:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition()
                    self._step = 0

                def get_state(self):
                    return {"step": self._step}
            """,
        )
        assert findings == []

    def test_checkpoint_exempt_class_attr_opts_out(self):
        findings = run_rule(
            "checkpoint",
            """
            class Core:
                _CHECKPOINT_EXEMPT = ("_scratch",)

                def __init__(self):
                    self._scratch = []
                    self._step = 0

                def get_state(self):
                    return {"step": self._step}
            """,
        )
        assert findings == []

    def test_class_without_get_state_is_ignored(self):
        findings = run_rule(
            "checkpoint",
            """
            class Plain:
                def __init__(self):
                    self._anything = 1
            """,
        )
        assert findings == []

    def test_noqa_on_the_assignment_suppresses(self):
        findings = run_rule(
            "checkpoint",
            """
            class Core:
                def __init__(self):
                    self._scratch = []  # repro: noqa[checkpoint]
                    self._step = 0

                def get_state(self):
                    return {"step": self._step}
            """,
        )
        assert findings == []


class TestDeterminism:
    def test_global_np_random_sampler_flagged(self):
        findings = run_rule(
            "determinism",
            """
            import numpy as np

            def draw():
                return np.random.rand(3)
            """,
        )
        assert rules_of(findings) == ["determinism/unseeded-random"]

    def test_default_rng_and_seeded_seed_are_clean(self):
        findings = run_rule(
            "determinism",
            """
            import numpy as np
            import random

            def draw(seed):
                random.seed(seed)
                np.random.seed(seed)
                rng = np.random.default_rng(seed)
                local = random.Random(seed)
                return rng.uniform(), local.random()
            """,
        )
        assert findings == []

    def test_stdlib_global_random_flagged(self):
        findings = run_rule(
            "determinism",
            """
            import random

            def draw():
                return random.random()
            """,
        )
        assert rules_of(findings) == ["determinism/unseeded-random"]

    def test_from_import_of_sampler_flagged(self):
        findings = run_rule(
            "determinism",
            """
            from random import choice

            def pick(items):
                return choice(items)
            """,
        )
        assert rules_of(findings) == ["determinism/unseeded-random"]

    def test_wall_clock_flagged_only_on_numeric_paths(self):
        snippet = """
        import time

        def stamp():
            return time.time()
        """
        on_numeric = run_rule(
            "determinism", snippet, relpath="src/repro/fleet/fixture.py"
        )
        off_numeric = run_rule(
            "determinism", snippet, relpath="src/repro/obs/fixture.py"
        )
        assert rules_of(on_numeric) == ["determinism/wall-clock"]
        assert off_numeric == []

    def test_monotonic_is_allowed_on_numeric_paths(self):
        findings = run_rule(
            "determinism",
            """
            import time

            def deadline():
                return time.monotonic() + 5.0
            """,
            relpath="src/repro/fleet/fixture.py",
        )
        assert findings == []

    def test_noqa_suppresses(self):
        findings = run_rule(
            "determinism",
            """
            import numpy as np

            def draw():
                return np.random.rand(3)  # repro: noqa[determinism]
            """,
        )
        assert findings == []


class TestBoundary:
    def test_gateway_dumps_without_allow_nan_flagged(self):
        findings = run_rule(
            "boundary",
            """
            import json

            def respond(payload):
                return json.dumps(payload).encode()
            """,
            relpath="src/repro/gateway/fixture.py",
        )
        assert rules_of(findings) == ["boundary/json-nan"]

    def test_strict_dumps_is_clean_and_non_gateway_ignored(self):
        strict = run_rule(
            "boundary",
            """
            import json

            def respond(payload):
                return json.dumps(payload, allow_nan=False).encode()
            """,
            relpath="src/repro/gateway/fixture.py",
        )
        elsewhere = run_rule(
            "boundary",
            """
            import json

            def dump(payload):
                return json.dumps(payload)
            """,
            relpath="src/repro/utils/fixture.py",
        )
        assert strict == []
        assert elsewhere == []

    def test_illegal_metric_name_literal_flagged(self):
        findings = run_rule(
            "boundary",
            """
            def render(exp, value):
                exp.add("repro-bad-name", "gauge", "help", value)
            """,
            relpath="src/repro/gateway/metrics.py",
        )
        assert rules_of(findings) == ["boundary/metric-name"]

    def test_legal_names_and_fstring_fragments_clean(self):
        findings = run_rule(
            "boundary",
            """
            def render(exp, key, value):
                exp.add("repro_server_requests_total", "counter", "help", value)
                exp.add(f"repro_stream_{key}", "gauge", "help", value)
            """,
            relpath="src/repro/gateway/metrics.py",
        )
        assert findings == []

    def test_illegal_fstring_fragment_flagged(self):
        findings = run_rule(
            "boundary",
            """
            def render(exp, key, value):
                exp.add(f"repro stream {key}", "gauge", "help", value)
            """,
            relpath="src/repro/gateway/metrics.py",
        )
        assert rules_of(findings) == ["boundary/metric-name"]

    def test_illegal_label_name_in_dict_literal_flagged(self):
        findings = run_rule(
            "boundary",
            """
            def render(exp, value):
                exp.add("repro_x", "gauge", "help", value, {"bad-label": 1})
            """,
            relpath="src/repro/gateway/metrics.py",
        )
        assert rules_of(findings) == ["boundary/metric-name"]


class TestBoundaryScope:
    """The wire-facing surface is repro/gateway/ AND repro/obs/ — the SSE
    writer and structured-log sinks serialize to the network too."""

    def test_lax_dumps_in_obs_package_flagged(self):
        findings = run_rule(
            "boundary",
            """
            import json

            def frame(record):
                return json.dumps(record).encode("utf-8")
            """,
            relpath="src/repro/obs/events.py",
        )
        assert rules_of(findings) == ["boundary/json-nan"]

    def test_strict_obs_serializer_is_clean(self):
        findings = run_rule(
            "boundary",
            """
            import json

            def frame(record):
                return json.dumps(record, allow_nan=False).encode("utf-8")
            """,
            relpath="src/repro/obs/events.py",
        )
        assert findings == []

    def test_metric_name_sinks_checked_outside_metrics_module(self):
        # The sink check follows the call, not the filename: an exposition
        # builder fed a bad literal from sse.py (or any wire file) is caught.
        findings = run_rule(
            "boundary",
            """
            def render(exp, value):
                exp.add("bad metric name", "gauge", "help", value)
            """,
            relpath="src/repro/gateway/sse.py",
        )
        assert rules_of(findings) == ["boundary/metric-name"]

    def test_non_wire_packages_stay_out_of_scope(self):
        findings = run_rule(
            "boundary",
            """
            import json

            def dump(exp, payload):
                exp.add("bad metric name", "gauge", "help", 1.0)
                return json.dumps(payload)
            """,
            relpath="src/repro/utils/fixture.py",
        )
        assert findings == []
