"""Unit tests for the runtime lock-order sanitizer."""

import queue
import threading

import pytest

from repro.analysis import lockwatch
from repro.analysis.lockwatch import LockOrderError, LockWatcher


class TestCycleDetection:
    def test_opposite_orders_across_threads_record_a_cycle(self):
        with lockwatch.watching(raise_on_cycle=False) as watch:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            with lock_a:
                with lock_b:
                    pass

            def reversed_order():
                with lock_b:
                    with lock_a:
                        pass

            thread = threading.Thread(target=reversed_order)
            thread.start()
            thread.join(timeout=10.0)
        assert len(watch.violations) == 1
        assert "cycle" in str(watch.violations[0])
        with pytest.raises(LockOrderError):
            watch.assert_acyclic()

    def test_cycle_raises_before_blocking_by_default(self):
        with lockwatch.watching() as watch:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            with lock_a:
                with lock_b:
                    pass
            errors = []

            def reversed_order():
                try:
                    with lock_b:
                        with lock_a:  # never blocks: raises at edge insert
                            pass
                except LockOrderError as error:
                    errors.append(error)

            thread = threading.Thread(target=reversed_order)
            thread.start()
            thread.join(timeout=10.0)
            assert not thread.is_alive()
        assert len(errors) == 1
        assert len(errors[0].cycle) >= 2

    def test_three_lock_cycle_through_transitive_path(self):
        with lockwatch.watching(raise_on_cycle=False) as watch:
            locks = [threading.Lock() for _ in range(3)]
            for first, second in ((0, 1), (1, 2)):
                with locks[first]:
                    with locks[second]:
                        pass

            def closing_edge():
                with locks[2]:
                    with locks[0]:
                        pass

            thread = threading.Thread(target=closing_edge)
            thread.start()
            thread.join(timeout=10.0)
        assert len(watch.violations) == 1
        assert len(watch.violations[0].cycle) == 4  # a -> b -> c -> a

    def test_consistent_global_order_is_clean(self):
        with lockwatch.watching() as watch:
            lock_a = threading.Lock()
            lock_b = threading.Lock()

            def forward():
                with lock_a:
                    with lock_b:
                        pass

            threads = [threading.Thread(target=forward) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
            forward()
        watch.assert_acyclic()
        assert ((_name(watch, lock_a)), (_name(watch, lock_b))) in watch.edges()


def _name(watch, lock):
    return lock.name


class TestSelfDeadlock:
    def test_plain_lock_reentry_raises(self):
        with lockwatch.watching():
            lock = threading.Lock()
            with pytest.raises(LockOrderError, match="self-deadlock"):
                with lock:
                    with lock:
                        pass

    def test_rlock_reentry_is_allowed(self):
        with lockwatch.watching() as watch:
            lock = threading.RLock()
            with lock:
                with lock:
                    pass
        watch.assert_acyclic()

    def test_nonblocking_reentry_reports_failure_not_error(self):
        with lockwatch.watching():
            lock = threading.Lock()
            with lock:
                assert lock.acquire(blocking=False) is False


class TestIntegration:
    def test_queue_and_condition_work_under_patching(self):
        with lockwatch.watching() as watch:
            channel = queue.Queue()
            channel.put("x")
            assert channel.get(timeout=1.0) == "x"
            with pytest.raises(queue.Empty):
                channel.get(timeout=0.01)
            condition = threading.Condition()
            with condition:
                condition.notify_all()
        watch.assert_acyclic()

    def test_release_out_of_order_keeps_bookkeeping_sane(self):
        with lockwatch.watching() as watch:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            lock_a.acquire()
            lock_b.acquire()
            lock_a.release()  # out of acquisition order
            lock_c = threading.Lock()
            with lock_c:  # only b is held: edge b -> c, never a -> c
                pass
            lock_b.release()
        names = {pair for pair in watch.edges()}
        assert (lock_b.name, lock_c.name) in names or len(names) >= 1
        watch.assert_acyclic()

    def test_factories_are_restored_after_the_block(self):
        original_lock = threading.Lock
        original_rlock = threading.RLock
        with lockwatch.watching():
            assert threading.Lock is not original_lock
        assert threading.Lock is original_lock
        assert threading.RLock is original_rlock

    def test_stats_count_tracked_locks_and_edges(self):
        with lockwatch.watching() as watch:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            with lock_a:
                with lock_b:
                    pass
            stats = watch.stats()
        assert stats["locks_tracked"] >= 2
        assert stats["edges"] >= 1
        assert stats["max_held_by_one_thread"] >= 2
        assert stats["violations"] == 0

    def test_explicit_wrap_without_patching(self):
        watcher = LockWatcher()
        watcher.enable()
        lock_a = watcher.wrap(threading.Lock(), name="a")
        lock_b = watcher.wrap(threading.Lock(), name="b")
        with lock_a:
            with lock_b:
                pass
        assert ("a", "b") in watcher.edges()
        watcher.reset()
        assert watcher.edges() == []
