"""Tier-1 enforcement: the analyzer over ``src/`` must come back clean.

This is the test the ISSUE/CI contract hangs on: every rule family runs
over the real tree with the committed baseline, and any new finding —
or any baseline entry that stopped matching, or any entry without a
justification — fails tier-1.
"""

from pathlib import Path

from repro.analysis import Baseline, analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def _report():
    baseline_path = REPO_ROOT / "analysis_baseline.json"
    baseline = Baseline.load(baseline_path) if baseline_path.exists() else None
    return baseline, analyze_paths(["src"], root=REPO_ROOT, baseline=baseline)


def test_src_has_zero_non_baselined_findings():
    _, report = _report()
    assert report.files_scanned > 100  # the real tree, not a stub dir
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.findings == [], f"new analyzer findings:\n{rendered}"
    assert report.errors == []


def test_baseline_is_empty_or_fully_justified():
    baseline, report = _report()
    if baseline is None or len(baseline) == 0:
        return
    unjustified = [e.key for e in baseline.unjustified()]
    assert unjustified == [], f"baseline entries without justification: {unjustified}"
    assert report.stale_baseline == [], (
        f"baseline entries that no longer match anything: {report.stale_baseline}"
    )
