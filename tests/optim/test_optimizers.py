"""Tests for optimizers, schedulers and weight averaging."""

import math

import numpy as np
import pytest

from repro import nn, optim
from repro.tensor import Tensor
from repro.tensor import functional as F


def _quadratic_problem(seed=0):
    """A tiny convex problem: fit y = X w* with a Linear layer."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(64, 3))
    true_w = np.array([[1.5], [-2.0], [0.5]])
    y = x @ true_w
    layer = nn.Linear(3, 1, rng=rng)
    return layer, Tensor(x), Tensor(y), true_w


def _loss(layer, x, y):
    return F.mse_loss(layer(x), y)


class TestSGD:
    def test_decreases_loss(self):
        layer, x, y, _ = _quadratic_problem()
        opt = optim.SGD(layer.parameters(), lr=0.05)
        initial = _loss(layer, x, y).item()
        for _ in range(200):
            opt.zero_grad()
            loss = _loss(layer, x, y)
            loss.backward()
            opt.step()
        assert loss.item() < 0.05 * initial

    def test_momentum_accelerates(self):
        layer_a, x, y, _ = _quadratic_problem(1)
        layer_b, _, _, _ = _quadratic_problem(1)
        layer_b.load_state_dict(layer_a.state_dict())
        plain = optim.SGD(layer_a.parameters(), lr=0.01)
        momentum = optim.SGD(layer_b.parameters(), lr=0.01, momentum=0.9)
        for _ in range(50):
            for layer, opt in ((layer_a, plain), (layer_b, momentum)):
                opt.zero_grad()
                _loss(layer, x, y).backward()
                opt.step()
        assert _loss(layer_b, x, y).item() < _loss(layer_a, x, y).item()

    def test_weight_decay_shrinks_weights(self):
        layer = nn.Linear(4, 1, rng=np.random.default_rng(0))
        layer.weight.data[...] = 10.0
        opt = optim.SGD(layer.parameters(), lr=0.1, weight_decay=0.5)
        x = Tensor(np.zeros((4, 4)))
        y = Tensor(np.zeros((4, 1)))
        for _ in range(10):
            opt.zero_grad()
            _loss(layer, x, y).backward()
            opt.step()
        assert np.all(np.abs(layer.weight.numpy()) < 10.0)

    def test_invalid_momentum(self):
        layer = nn.Linear(2, 1)
        with pytest.raises(ValueError):
            optim.SGD(layer.parameters(), lr=0.1, momentum=1.5)

    def test_invalid_lr(self):
        layer = nn.Linear(2, 1)
        with pytest.raises(ValueError):
            optim.SGD(layer.parameters(), lr=0.0)

    def test_empty_parameters(self):
        with pytest.raises(ValueError):
            optim.SGD([], lr=0.1)

    def test_skips_parameters_without_grad(self):
        layer = nn.Linear(2, 1)
        opt = optim.SGD(layer.parameters(), lr=0.1)
        before = layer.weight.numpy().copy()
        opt.step()  # no backward performed
        assert np.allclose(before, layer.weight.numpy())

    def test_clip_grad_norm(self):
        layer = nn.Linear(2, 1)
        layer.weight.grad = np.full((2, 1), 100.0)
        layer.bias.grad = np.full((1,), 100.0)
        opt = optim.SGD(layer.parameters(), lr=0.1)
        norm = opt.clip_grad_norm(1.0)
        assert norm > 1.0
        total = sum(float(np.sum(p.grad ** 2)) for p in layer.parameters())
        assert math.isclose(math.sqrt(total), 1.0, rel_tol=1e-6)


class TestAdam:
    def test_converges_on_quadratic(self):
        layer, x, y, true_w = _quadratic_problem(2)
        opt = optim.Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            _loss(layer, x, y).backward()
            opt.step()
        assert np.allclose(layer.weight.numpy(), true_w, atol=0.05)

    def test_invalid_betas(self):
        layer = nn.Linear(2, 1)
        with pytest.raises(ValueError):
            optim.Adam(layer.parameters(), lr=0.1, betas=(1.0, 0.999))

    def test_bias_correction_first_step_magnitude(self):
        """First Adam step should be approximately lr in magnitude."""
        layer = nn.Linear(1, 1, bias=False)
        layer.weight.data[...] = 1.0
        opt = optim.Adam(layer.parameters(), lr=0.1)
        x = Tensor(np.ones((8, 1)))
        y = Tensor(np.zeros((8, 1)))
        opt.zero_grad()
        _loss(layer, x, y).backward()
        opt.step()
        assert math.isclose(abs(1.0 - layer.weight.item()), 0.1, rel_tol=1e-3)

    def test_handles_badly_scaled_problem(self):
        """Adam's per-parameter scaling should still converge when features differ by 1e4 in scale."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(64, 2)) * np.array([100.0, 0.01])
        y = x @ np.array([[1.0], [1.0]])
        layer = nn.Linear(2, 1, rng=np.random.default_rng(4))
        adam = optim.Adam(layer.parameters(), lr=0.05)
        for _ in range(400):
            adam.zero_grad()
            F.mse_loss(layer(Tensor(x)), Tensor(y)).backward()
            adam.step()
        assert F.mse_loss(layer(Tensor(x)), Tensor(y)).item() < 0.01


class TestLBFGS:
    def test_quadratic_convergence(self):
        layer, x, y, true_w = _quadratic_problem(5)
        opt = optim.LBFGS(layer.parameters(), lr=0.5, max_iter=50)

        def closure():
            opt.zero_grad()
            loss = _loss(layer, x, y)
            loss.backward()
            return loss

        final = opt.step(closure)
        assert final < 1e-3
        assert np.allclose(layer.weight.numpy(), true_w, atol=0.05)

    def test_invalid_args(self):
        layer = nn.Linear(2, 1)
        with pytest.raises(ValueError):
            optim.LBFGS(layer.parameters(), max_iter=0)

    def test_minimize_scalar_lbfgs(self):
        # minimize (x - 3)^2
        def objective(x):
            return (x - 3.0) ** 2, 2.0 * (x - 3.0)

        assert math.isclose(optim.minimize_scalar_lbfgs(objective, x0=0.0), 3.0, rel_tol=1e-5)


class TestSchedulers:
    def _opt(self):
        return optim.SGD(nn.Linear(2, 1).parameters(), lr=0.1)

    def test_constant(self):
        sched = optim.ConstantLR(self._opt())
        assert sched.trace(5) == [0.1] * 5

    def test_cosine_annealing_endpoints(self):
        opt = self._opt()
        sched = optim.CosineAnnealingLR(opt, total_steps=10, lr_min=0.01)
        trace = sched.trace(10)
        assert trace[0] < 0.1
        assert math.isclose(trace[-1], 0.01, rel_tol=1e-9)
        assert all(a >= b for a, b in zip(trace, trace[1:]))

    def test_cosine_invalid_steps(self):
        with pytest.raises(ValueError):
            optim.CosineAnnealingLR(self._opt(), total_steps=0)

    def test_cyclic_cosine_shape(self):
        """Even epochs decay from lr_max to lr_min; odd epochs hold lr_min (Fig. 5)."""
        opt = self._opt()
        sched = optim.CyclicCosineLR(opt, lr_max=3e-3, lr_min=3e-5, steps_per_epoch=100)
        trace = sched.trace(400)
        epoch0, epoch1 = trace[:100], trace[100:200]
        epoch2 = trace[200:300]
        assert math.isclose(epoch0[0], 3e-3, rel_tol=1e-9)
        assert math.isclose(epoch0[-1], 3e-5, rel_tol=1e-9)
        assert all(math.isclose(lr, 3e-5, rel_tol=1e-9) for lr in epoch1)
        assert math.isclose(epoch2[0], 3e-3, rel_tol=1e-9)

    def test_cyclic_cosine_applies_to_optimizer(self):
        opt = self._opt()
        sched = optim.CyclicCosineLR(opt, lr_max=0.1, lr_min=0.001, steps_per_epoch=4)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cyclic_invalid_lrs(self):
        with pytest.raises(ValueError):
            optim.CyclicCosineLR(self._opt(), lr_max=0.001, lr_min=0.1, steps_per_epoch=5)

    def test_epoch_of(self):
        sched = optim.CyclicCosineLR(self._opt(), lr_max=0.1, lr_min=0.01, steps_per_epoch=10)
        assert sched.epoch_of(1) == 0
        assert sched.epoch_of(10) == 0
        assert sched.epoch_of(11) == 1


class TestWeightAverager:
    def test_average_of_two_models(self):
        net_a = nn.Linear(2, 2, rng=np.random.default_rng(0))
        net_b = nn.Linear(2, 2, rng=np.random.default_rng(1))
        averager = optim.WeightAverager(net_a)
        averager.update(net_a)
        averager.update(net_b)
        expected = 0.5 * (net_a.weight.numpy() + net_b.weight.numpy())
        assert np.allclose(averager.state_dict()["weight"], expected)
        assert averager.num_models == 2

    def test_streaming_average_matches_batch_average(self):
        rng = np.random.default_rng(2)
        nets = [nn.Linear(3, 1, rng=np.random.default_rng(seed)) for seed in range(5)]
        averager = optim.WeightAverager(nets[0])
        for net in nets:
            averager.update(net)
        expected = np.mean([net.weight.numpy() for net in nets], axis=0)
        assert np.allclose(averager.state_dict()["weight"], expected)

    def test_apply_to(self):
        net = nn.Linear(2, 2, rng=np.random.default_rng(0))
        target = nn.Linear(2, 2, rng=np.random.default_rng(1))
        averager = optim.WeightAverager(net, include_initial=True)
        averager.apply_to(target)
        assert np.allclose(target.weight.numpy(), net.weight.numpy())

    def test_apply_before_update_raises(self):
        net = nn.Linear(2, 2)
        averager = optim.WeightAverager(net)
        with pytest.raises(RuntimeError):
            averager.apply_to(net)

    def test_include_initial(self):
        net = nn.Linear(2, 2)
        averager = optim.WeightAverager(net, include_initial=True)
        assert averager.num_models == 1
