"""Smoke tests: every example script runs end-to-end in --fast mode."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )


@pytest.mark.slow
class TestExamples:
    def test_examples_directory_contents(self):
        scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert {"quickstart.py", "compare_uq_methods.py", "emergency_routing.py",
                "custom_dataset.py", "serving_demo.py",
                "streaming_dashboard.py", "canary_promotion.py",
                "fleet_demo.py", "chaos_demo.py",
                "gateway_demo.py", "tracing_demo.py",
                "alerting_demo.py"}.issubset(scripts)

    def test_quickstart_fast(self):
        result = _run("quickstart.py", "--fast", "--epochs", "2")
        assert result.returncode == 0, result.stderr
        assert "PICP" in result.stdout
        assert "calibration temperature" in result.stdout

    def test_compare_uq_methods_fast(self):
        result = _run("compare_uq_methods.py", "--fast", "--methods", "Point", "MVE")
        assert result.returncode == 0, result.stderr
        assert "MVE" in result.stdout and "MPIW" in result.stdout

    def test_emergency_routing_fast(self):
        result = _run("emergency_routing.py", "--fast", "--num-sensors", "18")
        assert result.returncode == 0, result.stderr
        assert "Risk-aware" in result.stdout

    def test_serving_demo_fast(self):
        result = _run("serving_demo.py", "--fast")
        assert result.returncode == 0, result.stderr
        assert "Server statistics" in result.stdout
        assert "speedup" in result.stdout

    def test_custom_dataset_fast(self):
        result = _run("custom_dataset.py", "--fast", "--days", "3")
        assert result.returncode == 0, result.stderr
        assert "DeepSTUQ" in result.stdout

    def test_canary_promotion_fast(self):
        result = _run("canary_promotion.py", "--fast")
        assert result.returncode == 0, result.stderr
        assert "candidate_staged" in result.stdout
        assert "candidate_promoted" in result.stdout
        assert "candidate_rejected" in result.stdout
        assert "dropped: 0" in result.stdout

    def test_fleet_demo_fast(self):
        result = _run("fleet_demo.py", "--fast")
        assert result.returncode == 0, result.stderr
        assert "spatial_incident" in result.stdout
        assert "region_candidate_promoted" in result.stdout
        assert "region_candidate_rejected" in result.stdout
        assert "dropped: 0, route fallbacks: 0" in result.stdout
        # the tick's predicts coalesce into few batches (not one per stream);
        # exact coalescing is timing-dependent, so gate on the mean loosely
        mean_batch = float(result.stdout.split("mean batch ")[1].split(" ")[0])
        assert mean_batch >= 8.0

    def test_chaos_demo_fast(self):
        result = _run("chaos_demo.py", "--fast")
        assert result.returncode == 0, result.stderr
        assert "identical firing steps" in result.stdout
        assert "stream_predict_failed" in result.stdout
        assert "stranded: 0" in result.stdout

    def test_gateway_demo_fast(self):
        result = _run("gateway_demo.py", "--fast")
        assert result.returncode == 0, result.stderr
        assert "Gateway listening" in result.stdout
        assert "forecast_ready True" in result.stdout
        assert "candidate promoted" in result.stdout
        assert "rolled back" in result.stdout
        assert "dropped: 0" in result.stdout
        assert "gateway_requests_total" in result.stdout
        assert "gateway stopped cleanly" in result.stdout

    def test_tracing_demo_fast(self):
        result = _run("tracing_demo.py", "--fast")
        assert result.returncode == 0, result.stderr
        assert "X-Trace-Id: t00000001" in result.stdout
        assert "gateway.predict" in result.stdout
        assert "model.forward" in result.stdout
        assert "Phase profile" in result.stdout
        assert "top phases by total cost:" in result.stdout
        assert "obs_tracing_enabled" in result.stdout
        assert "gateway stopped cleanly" in result.stdout

    def test_alerting_demo_fast(self):
        result = _run("alerting_demo.py", "--fast")
        assert result.returncode == 0, result.stderr
        assert "zero_drop is firing" in result.stdout
        assert "/healthz -> 503 (degraded)" in result.stdout
        assert "ALERTS{alertname=zero_drop, alertstate=firing" in result.stdout
        assert "pending -> firing -> resolved" in result.stdout
        assert "event: slo.alert_resolved" in result.stdout
        assert result.stdout.strip().endswith("it resolved.")

    def test_streaming_dashboard_fast(self):
        result = _run("streaming_dashboard.py", "--fast")
        assert result.returncode == 0, result.stderr
        assert "Rolling coverage" in result.stdout
        assert "ACI coverage" in result.stdout
        assert "Event log" in result.stdout
        assert "model_swapped" in result.stdout
        assert "stream-recal" in result.stdout
