"""Tests for the utility helpers (seeding, checkpointing, table formatting)."""

import numpy as np
import pytest

from repro import nn
from repro.utils import format_table, load_model_weights, save_model_weights, seed_everything


class TestSeed:
    def test_seed_everything_reproducible(self):
        rng_a = seed_everything(123)
        rng_b = seed_everything(123)
        assert rng_a.standard_normal(5) == pytest.approx(rng_b.standard_normal(5))
        assert np.random.rand() == pytest.approx(
            (seed_everything(123), np.random.rand())[1]
        )


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        model = nn.Linear(4, 3, rng=np.random.default_rng(0))
        other = nn.Linear(4, 3, rng=np.random.default_rng(1))
        path = save_model_weights(model, tmp_path / "checkpoint")
        assert path.suffix == ".npz"
        load_model_weights(other, path)
        assert np.allclose(model.weight.numpy(), other.weight.numpy())
        assert np.allclose(model.bias.numpy(), other.bias.numpy())

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model_weights(nn.Linear(2, 2), tmp_path / "nope.npz")

    def test_creates_parent_directories(self, tmp_path):
        model = nn.Linear(2, 2)
        path = save_model_weights(model, tmp_path / "deep" / "nested" / "model.npz")
        assert path.exists()


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "b"], [[1, 2.3456], ["x", 7]], precision=2, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.35" in text
        assert "x" in text

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["long-method-name", 1.0], ["s", 22.0]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])
