"""Tests for the utility helpers (seeding, checkpointing, table formatting)."""

import numpy as np
import pytest

from repro import nn
from repro.utils import (
    format_table,
    load_checkpoint,
    load_model_weights,
    pack_state_arrays,
    save_checkpoint,
    save_model_weights,
    seed_everything,
    unpack_state_arrays,
)


class TestSeed:
    def test_seed_everything_reproducible(self):
        rng_a = seed_everything(123)
        rng_b = seed_everything(123)
        assert rng_a.standard_normal(5) == pytest.approx(rng_b.standard_normal(5))
        assert np.random.rand() == pytest.approx(
            (seed_everything(123), np.random.rand())[1]
        )


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        model = nn.Linear(4, 3, rng=np.random.default_rng(0))
        other = nn.Linear(4, 3, rng=np.random.default_rng(1))
        path = save_model_weights(model, tmp_path / "checkpoint")
        assert path.suffix == ".npz"
        load_model_weights(other, path)
        assert np.allclose(model.weight.numpy(), other.weight.numpy())
        assert np.allclose(model.bias.numpy(), other.bias.numpy())

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model_weights(nn.Linear(2, 2), tmp_path / "nope.npz")

    def test_creates_parent_directories(self, tmp_path):
        model = nn.Linear(2, 2)
        path = save_model_weights(model, tmp_path / "deep" / "nested" / "model.npz")
        assert path.exists()

    def test_mismatched_architecture_lists_parameter_names(self, tmp_path):
        """A wrong-architecture checkpoint names the offending parameters."""
        path = save_model_weights(nn.Linear(4, 3), tmp_path / "linear.npz")
        gru = nn.GRU(4, 3)
        with pytest.raises(ValueError) as excinfo:
            load_model_weights(gru, path)
        message = str(excinfo.value)
        assert "does not match the GRU architecture" in message
        assert "missing parameters" in message and "unexpected parameters" in message
        # The checkpoint's Linear parameters are reported as unexpected.
        assert "weight" in message and "bias" in message

    def test_shape_mismatch_rejected_before_any_write(self, tmp_path):
        """Same names, different widths: rejected up front, model untouched."""
        path = save_model_weights(nn.Linear(4, 3), tmp_path / "narrow.npz")
        wide = nn.Linear(4, 5)
        before = {k: v.copy() for k, v in wide.state_dict().items()}
        with pytest.raises(ValueError, match="shape mismatches"):
            load_model_weights(wide, path)
        after = wide.state_dict()
        assert all(np.array_equal(before[k], after[k]) for k in before)

    def test_mismatch_leaves_model_untouched(self, tmp_path):
        path = save_model_weights(nn.Linear(4, 3), tmp_path / "linear.npz")
        target = nn.GRU(4, 3)
        before = {k: v.copy() for k, v in target.state_dict().items()}
        with pytest.raises(ValueError):
            load_model_weights(target, path)
        after = target.state_dict()
        assert all(np.array_equal(before[k], after[k]) for k in before)


class TestStateArrays:
    def test_pack_unpack_round_trip(self):
        state = {"weight": np.ones((2, 2)), "bias": np.zeros(2)}
        packed = pack_state_arrays("model.", state)
        assert set(packed) == {"model.weight", "model.bias"}
        unpacked = unpack_state_arrays("model.", packed)
        assert all(np.array_equal(state[k], unpacked[k]) for k in state)

    def test_numbered_prefixes_do_not_collide(self):
        arrays = {}
        arrays.update(pack_state_arrays("members.1.", {"w": np.full(2, 1.0)}))
        arrays.update(pack_state_arrays("members.10.", {"w": np.full(2, 10.0)}))
        assert np.all(unpack_state_arrays("members.1.", arrays)["w"] == 1.0)
        assert np.all(unpack_state_arrays("members.10.", arrays)["w"] == 10.0)


class TestDirectoryCheckpoints:
    def test_round_trip(self, tmp_path):
        meta = {"format_version": 1, "spec": {"method": "MVE"}}
        arrays = {"model.weight": np.arange(6.0).reshape(2, 3)}
        save_checkpoint(tmp_path / "ckpt", meta, arrays)
        loaded_meta, loaded_arrays = load_checkpoint(tmp_path / "ckpt")
        assert loaded_meta == meta
        assert np.array_equal(loaded_arrays["model.weight"], arrays["model.weight"])

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="not a checkpoint directory"):
            load_checkpoint(tmp_path / "absent")


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "b"], [[1, 2.3456], ["x", 7]], precision=2, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.35" in text
        assert "x" in text

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["long-method-name", 1.0], ["s", 22.0]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])
