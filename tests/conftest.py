"""Shared pytest fixtures for the DeepSTUQ reproduction test-suite."""

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator shared by tests."""
    return np.random.default_rng(seed=1234)
