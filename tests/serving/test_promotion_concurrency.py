"""Promotion, rollback and shadow mirroring under concurrent load.

The contract under test: re-pointing the default route (promote/rollback,
swap) never drops a request and never mixes versions *within* one response;
shadow mirroring never leaks into client responses; and the shared cache
budget cannot be monopolized by one hot deployment.
"""

import threading

import numpy as np
import pytest

from repro.analysis import lockwatch
from repro.core.inference import PredictionResult
from repro.serving import (
    InferenceServer,
    ShadowRouter,
    SharedPredictionCache,
)

HISTORY, NODES, HORIZON = 4, 3, 2


def _constant(value):
    def predict(windows):
        mean = np.full((windows.shape[0], HORIZON, windows.shape[2]), float(value))
        return PredictionResult(
            mean=mean,
            aleatoric_var=np.ones_like(mean),
            epistemic_var=np.zeros_like(mean),
        )

    return predict


def _windows(count, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 100.0, size=(count, HISTORY, NODES))


class TestPromoteRollbackUnderLoad:
    def test_promotion_storm_drops_and_mixes_nothing(self):
        """Clients hammering the default route while promote/rollback cycle.

        Runs under the lock-order sanitizer: every lock the server stack
        constructs is tracked, and any promote-vs-dispatch ordering cycle
        fails the test even if this run's interleaving never deadlocked.
        """
        with lockwatch.watching(raise_on_cycle=False) as watch:
            server = InferenceServer(
                max_batch_size=4, max_wait_ms=1.0, cache_size=256, num_workers=4
            )
            generations = 5
            for generation in range(generations):
                server.deploy(f"gen-{generation}", _constant(generation))
            windows = _windows(32)
            client_values = []
            errors = []
            stop = threading.Event()

            def client():
                try:
                    while not stop.is_set():
                        for result in server.predict_many(windows[:8], timeout=30.0):
                            # One response must be internally consistent: a single
                            # generation, never a blend of two.
                            flat = result.mean.ravel()
                            assert np.all(flat == flat[0])
                            client_values.append(float(flat[0]))
                except Exception as error:  # pragma: no cover - failure reporting
                    errors.append(error)

            with server:
                threads = [threading.Thread(target=client, daemon=True) for _ in range(3)]
                for thread in threads:
                    thread.start()
                for generation in range(1, generations):
                    server.promote(f"gen-{generation}")
                for _ in range(generations - 1):
                    server.rollback()
                stop.set()
                for thread in threads:
                    thread.join(timeout=30.0)
                final = server.predict_many(windows, timeout=30.0)

        watch.assert_acyclic()
        assert errors == []
        # After the rollbacks the default route is back at gen-0.
        assert {float(result.mean.flat[0]) for result in final} == {0.0}
        # Concurrent clients only ever saw values a real generation produced.
        assert set(client_values) <= {float(g) for g in range(generations)}
        assert server.stats["promotions"] == generations - 1
        assert server.stats["rollbacks"] == generations - 1

    def test_in_flight_batches_survive_promotion(self):
        """Requests queued before a promote resolve on a consistent model."""
        server = InferenceServer(
            max_batch_size=4, max_wait_ms=20.0, cache_size=0
        )
        server.deploy("old", _constant(1))
        server.deploy("new", _constant(2))
        windows = _windows(24, seed=2)
        with server:
            futures = [server.submit(window) for window in windows[:12]]
            server.promote("new")
            futures += [server.submit(window) for window in windows[12:]]
            results = [future.result(timeout=30.0) for future in futures]
        assert len(results) == 24
        values = [float(result.mean.flat[0]) for result in results]
        assert set(values) <= {1.0, 2.0}
        # Post-promotion submissions can only have seen the new deployment.
        assert all(value == 2.0 for value in values[12:])


class TestShadowUnderLoad:
    def test_shadow_mirror_never_reaches_clients(self):
        # Shadow dispatch acquires pool/cache/stats locks on a second path;
        # the sanitizer proves that path agrees with the primary's order.
        with lockwatch.watching(raise_on_cycle=False) as watch:
            server = InferenceServer(
                router=ShadowRouter(shadows=["cand"]),
                max_batch_size=8, max_wait_ms=1.0, cache_size=512, num_workers=4,
            )
            server.deploy("main", _constant(1))
            server.deploy("cand", _constant(9))
            errors = []

            def client(seed):
                try:
                    for result in server.predict_many(_windows(40, seed=seed), timeout=30.0):
                        assert float(result.mean.flat[0]) == 1.0
                except Exception as error:  # pragma: no cover - failure reporting
                    errors.append(error)

            with server:
                threads = [
                    threading.Thread(target=client, args=(seed,), daemon=True)
                    for seed in range(4)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30.0)
        watch.assert_acyclic()
        assert errors == []
        assert server.stats["requests_served"] == 160
        stats = server.deployment_stats("cand")
        assert stats["requests_served"] == 0
        assert stats["shadow_windows"] > 0
        assert stats["shadow_divergence"] == pytest.approx(8.0)
        assert server.stats["shadow_errors"] == 0

    def test_one_broken_deployment_does_not_poison_the_batch(self):
        """Per-deployment failure domains: healthy routes resolve even when a
        co-batched deployment's model raises."""
        from repro.serving import KeyRouter

        def broken(windows):
            raise RuntimeError("bad checkpoint")

        server = InferenceServer(
            router=KeyRouter({"bad": "broken"}, default="healthy"),
            max_batch_size=16, max_wait_ms=20.0, cache_size=0,
        )
        server.deploy("healthy", _constant(1))
        server.deploy("broken", broken)
        windows = _windows(8, seed=9)
        with server:
            futures = [
                server.submit(window, key="bad" if index % 2 else None)
                for index, window in enumerate(windows)
            ]
            healthy = [f.result(timeout=30.0) for f in futures[::2]]
            for future in futures[1::2]:
                with pytest.raises(RuntimeError, match="bad checkpoint"):
                    future.result(timeout=30.0)
        assert {float(r.mean.flat[0]) for r in healthy} == {1.0}

    def test_failing_shadow_is_invisible_to_clients(self):
        def broken(windows):
            raise RuntimeError("shadow model exploded")

        server = InferenceServer(
            router=ShadowRouter(shadows=["cand"]), max_wait_ms=1.0, cache_size=0
        )
        server.deploy("main", _constant(1))
        server.deploy("cand", broken)
        with server:
            results = server.predict_many(_windows(8), timeout=30.0)
        assert {float(result.mean.flat[0]) for result in results} == {1.0}
        assert server.stats["shadow_errors"] >= 1


class TestCacheBudgetFairness:
    def test_hot_namespace_cannot_evict_quiet_one(self):
        cache = SharedPredictionCache(capacity=8)
        for index in range(4):
            cache.put("quiet@v0", f"q{index}", index)
        # A hot deployment floods far past the global budget.
        for index in range(100):
            cache.put("hot@v0", f"h{index}", index)
        sizes = cache.namespace_sizes()
        # Fair-share eviction: the quiet namespace keeps its working set; the
        # hot one is capped at the remaining budget.
        assert sizes["quiet@v0"] == 4
        assert sizes["hot@v0"] == 4
        assert len(cache) == 8
        assert cache.stats["evictions"] == 96

    def test_eviction_balances_equal_competitors(self):
        cache = SharedPredictionCache(capacity=9)
        for namespace in ("a", "b", "c"):
            for index in range(50):
                cache.put(namespace, f"{namespace}{index}", index)
        assert set(cache.namespace_sizes().values()) == {3}

    def test_server_budget_shared_across_deployments(self):
        from repro.serving import KeyRouter

        server = InferenceServer(
            router=KeyRouter({"a": "a", "b": "b"}),
            max_batch_size=8, max_wait_ms=1.0, cache_size=16,
        )
        server.deploy("a", _constant(1))
        server.deploy("b", _constant(2))
        windows = list(_windows(24, seed=5))
        with server:
            server.predict_many(windows, keys=["a"] * 24)
            server.predict_many(windows, keys=["b"] * 24)
        sizes = server.cache.namespace_sizes()
        assert sum(sizes.values()) <= 16
        # Both deployments hold a share of the budget; neither was flushed.
        assert set(sizes) == {"a@v0", "b@v0"}
        assert all(size > 0 for size in sizes.values())

    def test_dropped_namespace_frees_budget_immediately(self):
        cache = SharedPredictionCache(capacity=8)
        for index in range(8):
            cache.put("old@v0", f"k{index}", index)
        assert cache.drop_namespace("old@v0") == 8
        assert len(cache) == 0
        for index in range(8):
            cache.put("new@v1", f"k{index}", index)
        assert cache.stats["evictions"] == 0
