"""InferenceServer: correctness, caching, concurrency, lifecycle."""

import threading

import numpy as np
import pytest

from repro.core.inference import PredictionResult
from repro.serving import InferenceServer

HISTORY, NODES, HORIZON = 4, 3, 2


def _double_predict(windows: np.ndarray) -> PredictionResult:
    """Deterministic toy model: mean = 2 * last observation, tiled over horizon."""
    mean = np.repeat(2.0 * windows[:, -1:, :], HORIZON, axis=1)
    return PredictionResult(
        mean=mean,
        aleatoric_var=np.full_like(mean, 0.25),
        epistemic_var=np.zeros_like(mean),
    )


class _CountingPredict:
    def __init__(self):
        self.calls = 0
        self.windows_seen = 0
        self.lock = threading.Lock()

    def __call__(self, windows):
        with self.lock:
            self.calls += 1
            self.windows_seen += windows.shape[0]
        return _double_predict(windows)


def _windows(count, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 10.0, size=(count, HISTORY, NODES))


class TestInferenceServer:
    def test_predict_many_matches_direct_call(self):
        windows = _windows(8)
        direct = _double_predict(windows)
        with InferenceServer(_double_predict, model_version="t1") as server:
            results = server.predict_many(windows)
        assert len(results) == 8
        for i, result in enumerate(results):
            np.testing.assert_allclose(result.mean, direct[i].mean, rtol=0, atol=0)
            assert result.mean.shape == (1, HORIZON, NODES)

    def test_repeated_windows_hit_cache(self):
        predict = _CountingPredict()
        windows = _windows(5)
        with InferenceServer(predict, model_version="t2", max_wait_ms=5.0) as server:
            server.predict_many(windows)
            server.predict_many(windows)  # second round: all cached
            stats = server.stats
        assert predict.windows_seen == 5
        assert stats["requests_served"] == 10
        assert stats["cache_hits"] >= 5

    def test_duplicates_within_a_batch_run_model_once(self):
        predict = _CountingPredict()
        window = _windows(1)[0]
        batch = [window, window, window, window]
        # A single worker serializes batches, so even if the duplicates split
        # across micro-batches the later ones are answered from the cache.
        with InferenceServer(predict, model_version="t3", max_wait_ms=20.0, num_workers=1) as server:
            results = server.predict_many(batch)
        assert predict.windows_seen == 1
        assert len(results) == 4
        for result in results:
            np.testing.assert_allclose(result.mean, results[0].mean)

    def test_cache_disabled(self):
        predict = _CountingPredict()
        windows = _windows(3)
        with InferenceServer(predict, model_version="t4", cache_size=0) as server:
            server.predict_many(windows)
            server.predict_many(windows)
        assert predict.windows_seen == 6
        assert "cache_hits" not in InferenceServer(predict, cache_size=0).stats

    def test_concurrent_submitters(self):
        predict = _CountingPredict()
        errors = []

        def client(seed):
            try:
                windows = _windows(4, seed=seed)
                expected = _double_predict(windows)
                results = server.predict_many(windows)
                for i, result in enumerate(results):
                    np.testing.assert_allclose(result.mean, expected[i].mean)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        with InferenceServer(predict, model_version="t5", num_workers=3) as server:
            threads = [threading.Thread(target=client, args=(s,)) for s in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors

    def test_submit_requires_running_server(self):
        server = InferenceServer(_double_predict)
        with pytest.raises(RuntimeError):
            server.submit(_windows(1)[0])

    def test_submit_rejects_batched_input(self):
        with InferenceServer(_double_predict) as server:
            with pytest.raises(ValueError):
                server.submit(_windows(2))  # 3-D: a batch, not a window

    def test_stop_is_idempotent(self):
        server = InferenceServer(_double_predict).start()
        server.stop()
        server.stop()

    def test_stats_mean_batch_size(self):
        with InferenceServer(_double_predict, max_wait_ms=20.0) as server:
            server.predict_many(_windows(6))
            stats = server.stats
        assert stats["requests_served"] == 6
        assert stats["mean_batch_size"] >= 1.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            InferenceServer(_double_predict, num_workers=0)


class TestServeMethodIntegration:
    """End-to-end: a fitted UQ method served through UQMethod.serve()."""

    @pytest.fixture(scope="class")
    def fitted_mve(self):
        from repro.core import TrainingConfig
        from repro.data import TrafficData, generate_traffic, train_val_test_split
        from repro.graph import grid_network
        from repro.uq import create_method

        network = grid_network(2, 2)
        values = generate_traffic(network, 260, seed=2)
        traffic = TrafficData(name="serve-test", values=values, network=network)
        train, val, test = train_val_test_split(traffic)
        config = TrainingConfig(
            history=HISTORY, horizon=HORIZON, hidden_dim=4, embed_dim=2,
            epochs=2, batch_size=64, seed=0,
        )
        method = create_method("MVE", 4, config=config).fit(train, val)
        return method, test

    def test_served_results_match_direct_predict(self, fitted_mve):
        from repro.data import SlidingWindowDataset

        method, test = fitted_mve
        windows, _ = SlidingWindowDataset(
            test.slice_steps(0, 30), history=HISTORY, horizon=HORIZON
        ).arrays()
        direct = method.predict(windows)
        with method.serve(max_batch_size=16, max_wait_ms=10.0) as server:
            served = server.predict_many(windows)
        rebuilt = PredictionResult.concatenate(served)
        np.testing.assert_allclose(rebuilt.mean, direct.mean, rtol=0, atol=1e-10)
        np.testing.assert_allclose(rebuilt.aleatoric_var, direct.aleatoric_var, rtol=0, atol=1e-10)

    def test_serve_requires_fitted_method(self):
        from repro.core import TrainingConfig
        from repro.uq import create_method

        method = create_method("MVE", 4, config=TrainingConfig(history=HISTORY, horizon=HORIZON))
        with pytest.raises(RuntimeError):
            method.serve()
