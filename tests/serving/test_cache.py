"""LRU prediction cache: eviction order, statistics, key construction."""

import numpy as np
import pytest

from repro.serving import PredictionCache, prediction_cache_key


class TestPredictionCache:
    def test_put_get_roundtrip(self):
        cache = PredictionCache(capacity=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache and len(cache) == 1

    def test_miss_returns_none_and_counts(self):
        cache = PredictionCache(capacity=4)
        assert cache.get("missing") is None
        assert cache.stats["misses"] == 1 and cache.stats["hits"] == 0

    def test_lru_eviction_order(self):
        cache = PredictionCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a" -> "b" is now least recent
        cache.put("c", 3)       # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats["evictions"] == 1

    def test_overwrite_does_not_evict(self):
        cache = PredictionCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.stats["evictions"] == 0

    def test_clear(self):
        cache = PredictionCache(capacity=2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PredictionCache(capacity=0)


class TestCacheKey:
    WINDOW = np.arange(12.0).reshape(3, 4)

    def test_deterministic(self):
        assert prediction_cache_key(self.WINDOW, "v1") == prediction_cache_key(
            self.WINDOW.copy(), "v1"
        )

    def test_sensitive_to_data(self):
        other = self.WINDOW.copy()
        other[0, 0] += 1e-9
        assert prediction_cache_key(self.WINDOW, "v1") != prediction_cache_key(other, "v1")

    def test_sensitive_to_shape(self):
        assert prediction_cache_key(self.WINDOW, "v1") != prediction_cache_key(
            self.WINDOW.reshape(4, 3), "v1"
        )

    def test_sensitive_to_version_and_params(self):
        base = prediction_cache_key(self.WINDOW, "v1", num_samples=10)
        assert base != prediction_cache_key(self.WINDOW, "v2", num_samples=10)
        assert base != prediction_cache_key(self.WINDOW, "v1", num_samples=20)

    def test_param_order_irrelevant(self):
        assert prediction_cache_key(self.WINDOW, "v1", a=1, b=2) == prediction_cache_key(
            self.WINDOW, "v1", b=2, a=1
        )
