"""Bounded shutdown: a hung model pass must not hang ``stop()``.

Before the fix, ``InferenceServer.stop()`` joined the dispatcher with a
timeout and then silently returned — a predict_fn stuck in a worker left
the pending future unresolved forever and the caller none the wiser.  Now
``stop(timeout=...)`` fails every stranded future with
:class:`~repro.serving.ServerStopped` and counts it in
``stats["stranded_requests"]``.
"""

import time

import numpy as np
import pytest

from repro.scenarios import PredictFault
from repro.serving import InferenceServer, ServerStopped
from repro.streaming import PersistenceForecaster

HISTORY, HORIZON, NODES = 6, 2, 4


def _server(**kwargs):
    model = PersistenceForecaster(horizon=HORIZON, sigma=1.0)
    return InferenceServer(
        model.predict, model_version="v1", max_batch_size=8, **kwargs
    ).start()


def _wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.01)


class TestBoundedStop:
    def test_hung_predict_strands_future_with_server_stopped(self):
        fault = PredictFault(hang=True)
        server = _server()
        try:
            server.fault_injector = fault
            future = server.submit(np.ones((HISTORY, NODES)))
            # The batch must reach the worker (and hang there) before the
            # stop, otherwise cancel_futures would simply drop it.
            _wait_for(lambda: fault.fired >= 1)
            server.stop(timeout=0.3)
            with pytest.raises(ServerStopped):
                future.result(timeout=1.0)
            assert server.stats["stranded_requests"] == 1
        finally:
            # Unblock the worker so the abandoned pool thread exits.
            fault.release()

    def test_worker_completing_after_stop_does_not_explode(self):
        """The late set_result on an already-failed future is swallowed."""
        fault = PredictFault(hang=True)
        server = _server()
        server.fault_injector = fault
        future = server.submit(np.ones((HISTORY, NODES)))
        _wait_for(lambda: fault.fired >= 1)
        server.stop(timeout=0.2)
        fault.release()
        # Give the worker time to run its (now ignored) completion path.
        time.sleep(0.2)
        with pytest.raises(ServerStopped):
            future.result(timeout=1.0)

    def test_clean_stop_strands_nothing(self):
        server = _server()
        future = server.submit(np.full((HISTORY, NODES), 3.0))
        np.testing.assert_allclose(
            future.result(timeout=10.0).mean[0], np.full((HORIZON, NODES), 3.0)
        )
        server.stop()
        assert server.stats["stranded_requests"] == 0

    def test_stop_is_idempotent_after_strand(self):
        fault = PredictFault(hang=True)
        server = _server()
        try:
            server.fault_injector = fault
            server.submit(np.ones((HISTORY, NODES)))
            _wait_for(lambda: fault.fired >= 1)
            server.stop(timeout=0.2)
            server.stop(timeout=0.2)
            assert server.stats["stranded_requests"] == 1
        finally:
            fault.release()
