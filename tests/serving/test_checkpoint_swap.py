"""Serving from checkpoints and versioned hot-swapping of served models."""

import numpy as np
import pytest

from repro.api import Forecaster
from repro.core.inference import PredictionResult
from repro.data import SlidingWindowDataset, TrafficData, generate_traffic, train_val_test_split
from repro.graph import grid_network
from repro.serving import InferenceServer

NUM_NODES = 9
HISTORY = 4
HORIZON = 2

TRAINING = {
    "history": HISTORY, "horizon": HORIZON, "hidden_dim": 6, "embed_dim": 2,
    "epochs": 1, "batch_size": 64, "mc_samples": 2, "seed": 0,
}


@pytest.fixture(scope="module")
def fitted_and_windows():
    network = grid_network(3, 3)
    values = generate_traffic(network, 260, seed=3)
    traffic = TrafficData(name="serve-test", values=values, network=network)
    train, val, test = train_val_test_split(traffic)
    forecaster = Forecaster.from_spec({"method": "MVE", "training": TRAINING})
    forecaster.fit(train, val)
    windows = SlidingWindowDataset(
        test.slice_steps(0, 30), history=HISTORY, horizon=HORIZON
    ).arrays()[0]
    return forecaster, windows


@pytest.fixture(scope="module")
def checkpoint(fitted_and_windows, tmp_path_factory):
    forecaster, _ = fitted_and_windows
    directory = tmp_path_factory.mktemp("ckpt") / "mve"
    forecaster.save(directory)
    return directory


class TestFromCheckpoint:
    def test_serves_checkpointed_model(self, fitted_and_windows, checkpoint):
        forecaster, windows = fitted_and_windows
        direct = forecaster.predict(windows)
        with InferenceServer.from_checkpoint(checkpoint, cache_size=0) as server:
            results = server.predict_many(list(windows))
        served = PredictionResult.concatenate(results)
        assert np.array_equal(direct.mean, served.mean)
        assert np.array_equal(direct.aleatoric_var, served.aleatoric_var)

    def test_default_version_names_spec_and_directory(self, checkpoint):
        server = InferenceServer.from_checkpoint(checkpoint)
        assert server.model_version == "MVE-AGCRN@mve"

    def test_explicit_version_wins(self, checkpoint):
        server = InferenceServer.from_checkpoint(checkpoint, model_version="prod-7")
        assert server.model_version == "prod-7"

    def test_missing_checkpoint(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            InferenceServer.from_checkpoint(tmp_path / "missing")

    def test_forecaster_deploys_onto_a_pool(self, fitted_and_windows, checkpoint):
        """Facade deploy + checkpoint-path deploy serve identical predictions."""
        forecaster, windows = fitted_and_windows
        server = InferenceServer(cache_size=0)
        deployment = forecaster.deploy(server, "live")
        assert deployment.version == "MVE-AGCRN"  # spec-derived default
        server.deploy("from-disk", checkpoint)     # checkpoint directory path
        with server:
            live = server.predict_many(list(windows[:4]))
            server.promote("from-disk")
            disk = server.predict_many(list(windows[:4]))
        for a, b in zip(live, disk):
            np.testing.assert_array_equal(a.mean, b.mean)


class TestHotSwap:
    def _constant_predictor(self, value):
        def predict(windows):
            shape = (windows.shape[0], HORIZON, NUM_NODES)
            return PredictionResult(
                mean=np.full(shape, float(value)),
                aleatoric_var=np.zeros(shape),
                epistemic_var=np.zeros(shape),
            )

        return predict

    def test_swap_changes_served_model_and_version(self, fitted_and_windows):
        _, windows = fitted_and_windows
        server = InferenceServer(self._constant_predictor(1.0), model_version="v1", cache_size=0)
        with server:
            before = server.predict_many(list(windows[:4]))
            previous = server.swap_model(self._constant_predictor(2.0), version="v2")
            after = server.predict_many(list(windows[:4]))
        assert previous == "v1"
        assert server.model_version == "v2"
        assert all(np.all(r.mean == 1.0) for r in before)
        assert all(np.all(r.mean == 2.0) for r in after)
        assert server.stats["models_swapped"] == 1

    def test_swap_accepts_forecaster_objects(self, fitted_and_windows):
        forecaster, windows = fitted_and_windows
        server = InferenceServer(self._constant_predictor(0.0), model_version="v1", cache_size=0)
        with server:
            server.swap_model(forecaster, version="v2")
            served = server.predict_many(list(windows[:3]))
        direct = forecaster.predict(windows[:3])
        assert np.array_equal(direct.mean, PredictionResult.concatenate(served).mean)

    def test_swap_rejects_non_predictors(self):
        server = InferenceServer(self._constant_predictor(0.0))
        with pytest.raises(TypeError, match="predict"):
            server.swap_model(object(), version="v2")

    def test_queued_requests_survive_a_swap(self, fitted_and_windows):
        """Requests submitted before a swap all resolve; none are dropped."""
        _, windows = fitted_and_windows
        server = InferenceServer(
            self._constant_predictor(1.0), model_version="v1",
            max_batch_size=4, max_wait_ms=20.0, cache_size=0,
        )
        with server:
            futures = [server.submit(window) for window in windows[:12]]
            server.swap_model(self._constant_predictor(2.0), version="v2")
            futures += [server.submit(window) for window in windows[12:24]]
            results = [future.result(timeout=30.0) for future in futures]
        assert len(results) == 24
        # Every request was answered by exactly one of the two versions.
        for result in results:
            value = result.mean.flat[0]
            assert value in (1.0, 2.0)
            assert np.all(result.mean == value)
        # The late submissions can only have seen the new model.
        assert all(np.all(r.mean == 2.0) for r in results[12:])

    def test_cache_is_version_namespaced(self, fitted_and_windows):
        """After a swap, cached v1 answers are never served for v2 requests."""
        _, windows = fitted_and_windows
        server = InferenceServer(
            self._constant_predictor(1.0), model_version="v1", cache_size=64
        )
        with server:
            first = server.predict_many(list(windows[:3]))
            server.swap_model(self._constant_predictor(2.0), version="v2")
            second = server.predict_many(list(windows[:3]))  # same inputs
        assert all(np.all(r.mean == 1.0) for r in first)
        assert all(np.all(r.mean == 2.0) for r in second)
