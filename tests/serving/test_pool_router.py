"""ModelPool / Deployment semantics and the routing policies."""

import numpy as np
import pytest

from repro.core.inference import PredictionResult
from repro.serving import (
    InferenceServer,
    KeyRouter,
    ModelPool,
    RouteDecision,
    Router,
    ShadowRouter,
    SharedPredictionCache,
    TrafficSplitRouter,
)

HISTORY, NODES, HORIZON = 4, 3, 2


def _constant(value):
    def predict(windows):
        mean = np.full((windows.shape[0], HORIZON, windows.shape[2]), float(value))
        return PredictionResult(
            mean=mean,
            aleatoric_var=np.ones_like(mean),
            epistemic_var=np.zeros_like(mean),
        )

    return predict


def _windows(count, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 10.0, size=(count, HISTORY, NODES))


class TestModelPool:
    def test_first_deployment_becomes_default(self):
        pool = ModelPool()
        pool.deploy("a", _constant(1))
        pool.deploy("b", _constant(2))
        assert pool.default_name == "a"
        assert pool.resolve(None).name == "a"
        assert pool.resolve("b").name == "b"

    def test_auto_versions_count_up_per_name(self):
        pool = ModelPool()
        assert pool.deploy("a", _constant(1)).version == "v0"
        assert pool.deploy("a", _constant(2)).version == "v1"
        assert pool.deploy("b", _constant(3)).version == "v0"

    def test_redeploy_drops_old_cache_namespace(self):
        cache = SharedPredictionCache(capacity=16)
        pool = ModelPool(cache=cache)
        deployment = pool.deploy("a", _constant(1), version="v1")
        cache.put(deployment.namespace, "k", "value")
        assert cache.namespace_sizes() == {"a@v1": 1}
        pool.deploy("a", _constant(2), version="v2")
        assert cache.namespace_sizes() == {}

    def test_promote_and_rollback_repoint_default(self):
        pool = ModelPool()
        pool.deploy("a", _constant(1))
        pool.deploy("b", _constant(2))
        assert pool.promote("b") == "a"
        assert pool.default_name == "b"
        assert pool.rollback() == "a"
        assert pool.default_name == "a"

    def test_rollback_with_name_retires_the_deployment(self):
        pool = ModelPool()
        pool.deploy("a", _constant(1))
        pool.deploy("cand", _constant(2))
        pool.promote("cand")
        assert pool.rollback("cand") == "a"
        assert "cand" not in pool

    def test_rollback_name_must_match_default(self):
        pool = ModelPool()
        pool.deploy("a", _constant(1))
        pool.deploy("b", _constant(2))
        pool.promote("b")
        with pytest.raises(ValueError, match="does not match"):
            pool.rollback("a")

    def test_rollback_without_history_raises(self):
        pool = ModelPool()
        pool.deploy("a", _constant(1))
        with pytest.raises(RuntimeError, match="no previous route"):
            pool.rollback()

    def test_cannot_undeploy_the_default(self):
        pool = ModelPool()
        pool.deploy("a", _constant(1))
        with pytest.raises(ValueError, match="default route"):
            pool.undeploy("a")

    def test_promote_unknown_name_raises(self):
        pool = ModelPool()
        pool.deploy("a", _constant(1))
        with pytest.raises(KeyError):
            pool.promote("missing")

    def test_deploy_rejects_non_predictors(self):
        pool = ModelPool()
        with pytest.raises(TypeError, match="predict"):
            pool.deploy("a", object())


class TestRouters:
    def test_base_router_goes_to_default(self):
        decision = Router().route(np.zeros((HISTORY, NODES)))
        assert decision == RouteDecision(primary=None, shadows=())

    def test_key_router_maps_keys(self):
        router = KeyRouter({"north": "regional"}, default="global")
        window = np.zeros((HISTORY, NODES))
        assert router.route(window, key="north").primary == "regional"
        assert router.route(window, key="south").primary == "global"
        assert router.route(window).primary == "global"

    def test_key_router_unhashable_key_falls_through(self):
        router = KeyRouter({"north": "regional"}, default=None)
        assert router.route(np.zeros((HISTORY, NODES)), key=["north"]).primary is None

    def test_traffic_split_tracks_weights_exactly(self):
        router = TrafficSplitRouter({"a": 0.75, "b": 0.25})
        window = np.zeros((HISTORY, NODES))
        picks = [router.route(window).primary for _ in range(400)]
        assert picks.count("a") == 300
        assert picks.count("b") == 100
        assert router.realized_shares == {"a": 0.75, "b": 0.25}

    def test_traffic_split_validates_weights(self):
        with pytest.raises(ValueError):
            TrafficSplitRouter({})
        with pytest.raises(ValueError):
            TrafficSplitRouter({"a": -1.0, "b": 2.0})
        with pytest.raises(ValueError):
            TrafficSplitRouter({"a": 0.0})

    def test_traffic_split_inner_router_keeps_keyed_routes(self):
        """The non-canary share delegates to the wrapped router instead of
        flattening everything onto the pool default."""
        router = TrafficSplitRouter(
            {None: 0.75, "cand": 0.25}, inner=KeyRouter({"n": "regional"})
        )
        window = np.zeros((HISTORY, NODES))
        picks = [router.route(window, key="n").primary for _ in range(100)]
        assert picks.count("cand") == 25
        assert picks.count("regional") == 75  # keyed routing survives the split

    def test_shadow_router_mirrors_without_changing_primary(self):
        router = ShadowRouter(shadows=["cand"], inner=KeyRouter({"n": "regional"}))
        window = np.zeros((HISTORY, NODES))
        decision = router.route(window, key="n")
        assert decision.primary == "regional"
        assert decision.shadows == ("cand",)

    def test_shadow_router_skips_self_mirror(self):
        router = ShadowRouter(shadows=["regional"], inner=KeyRouter({"n": "regional"}))
        assert router.route(np.zeros((HISTORY, NODES)), key="n").shadows == ()


class TestServerRouting:
    def test_key_routed_multi_model_serving(self):
        server = InferenceServer(router=KeyRouter({"n": "north", "s": "south"}), cache_size=0)
        server.deploy("north", _constant(1))
        server.deploy("south", _constant(2))
        windows = _windows(6)
        with server:
            results = server.predict_many(windows, keys=["n", "s", "n", "s", None, "n"])
        values = [float(result.mean.flat[0]) for result in results]
        # Unkeyed request (None) follows the default route = first deployment.
        assert values == [1.0, 2.0, 1.0, 2.0, 1.0, 1.0]

    def test_unrouted_requests_follow_promotions(self):
        server = InferenceServer(cache_size=0)
        server.deploy("blue", _constant(1))
        server.deploy("green", _constant(2))
        windows = _windows(4)
        with server:
            before = server.predict_many(windows)
            assert server.promote("green") == "blue"
            after = server.predict_many(windows)
            assert server.rollback() == "blue"
            rolled = server.predict_many(windows)
        assert {float(r.mean.flat[0]) for r in before} == {1.0}
        assert {float(r.mean.flat[0]) for r in after} == {2.0}
        assert {float(r.mean.flat[0]) for r in rolled} == {1.0}
        assert server.stats["promotions"] == 1
        assert server.stats["rollbacks"] == 1

    def test_requests_to_retired_deployment_fall_back_to_default(self):
        server = InferenceServer(router=KeyRouter({"x": "gone"}, default=None), cache_size=0)
        server.deploy("main", _constant(7))
        windows = _windows(3)
        with server:
            results = server.predict_many(windows, keys=["x", "x", "x"])
        assert {float(r.mean.flat[0]) for r in results} == {7.0}
        assert server.stats["route_fallbacks"] >= 1

    def test_shadow_deployment_sees_traffic_but_not_clients(self):
        server = InferenceServer(router=ShadowRouter(shadows=["cand"]), cache_size=64)
        server.deploy("main", _constant(1))
        server.deploy("cand", _constant(5))
        windows = _windows(8)
        with server:
            results = server.predict_many(windows)
        assert {float(r.mean.flat[0]) for r in results} == {1.0}
        stats = server.deployment_stats("cand")
        assert stats["requests_served"] == 0
        assert stats["shadow_windows"] == 8
        assert stats["shadow_divergence"] == pytest.approx(4.0)

    def test_serve_method_versions_are_stable_counters(self):
        from repro.serving.server import serve_method

        class _Method:
            name = "MCDO"

            def predict(self, windows):
                return _constant(0)(windows)

        first = serve_method(_Method()).model_version
        second = serve_method(_Method()).model_version
        assert first.startswith("MCDO-")
        int(first.split("-", 1)[1])  # numeric counter, not an id() hex
        assert first != second
