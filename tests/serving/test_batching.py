"""Micro-batching queue: grouping, deadlines, shutdown."""

import threading
import time

import numpy as np
import pytest

from repro.serving import MicroBatcher


def _window(value=0.0):
    return np.full((3, 2), value)


class TestMicroBatcher:
    def test_collects_queued_requests_into_one_batch(self):
        batcher = MicroBatcher(max_batch_size=8, max_wait_ms=20.0)
        for i in range(5):
            batcher.submit(_window(i))
        batch = batcher.next_batch()
        assert len(batch) == 5
        assert [int(r.window[0, 0]) for r in batch] == [0, 1, 2, 3, 4]

    def test_respects_max_batch_size(self):
        batcher = MicroBatcher(max_batch_size=3, max_wait_ms=50.0)
        for i in range(7):
            batcher.submit(_window(i))
        assert len(batcher.next_batch()) == 3
        assert len(batcher.next_batch()) == 3
        assert len(batcher.next_batch()) == 1

    def test_deadline_flushes_partial_batch(self):
        batcher = MicroBatcher(max_batch_size=100, max_wait_ms=10.0)
        batcher.submit(_window())
        start = time.perf_counter()
        batch = batcher.next_batch()
        elapsed = time.perf_counter() - start
        assert len(batch) == 1
        assert elapsed < 1.0  # flushed by the deadline, not the poll timeout

    def test_empty_queue_returns_empty_list(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_ms=1.0)
        assert batcher.next_batch(poll_timeout=0.01) == []

    def test_close_returns_none_and_rejects_submissions(self):
        batcher = MicroBatcher()
        batcher.close()
        assert batcher.next_batch() is None
        with pytest.raises(RuntimeError):
            batcher.submit(_window())

    def test_late_submitter_joins_open_batch(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_ms=200.0)
        batcher.submit(_window(1))

        def late():
            time.sleep(0.02)
            batcher.submit(_window(2))

        thread = threading.Thread(target=late)
        thread.start()
        batch = batcher.next_batch()
        thread.join()
        assert len(batch) == 2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_wait_ms=-1.0)
