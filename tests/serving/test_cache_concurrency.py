"""PredictionCache and InferenceServer under concurrent swap_model storms.

The invariants being hammered:

* version-namespaced keys mean a request processed after a swap can never be
  answered from a previous version's cache entry;
* the cache's hit/miss/eviction counters stay mutually consistent no matter
  how many threads interleave.
"""

import threading

import numpy as np
import pytest

from repro.core.inference import PredictionResult
from repro.serving import InferenceServer, PredictionCache, prediction_cache_key

SHAPE = (1, 2, 3)


def _constant(value):
    def predict(windows):
        shape = (windows.shape[0],) + SHAPE[1:]
        return PredictionResult(
            mean=np.full(shape, float(value)),
            aleatoric_var=np.zeros(shape),
            epistemic_var=np.zeros(shape),
        )

    return predict


class TestPredictionCacheThreaded:
    def test_stats_stay_consistent_across_threads(self):
        cache = PredictionCache(capacity=64)
        num_threads, per_thread = 8, 500
        gets = [0] * num_threads
        puts = [0] * num_threads
        errors = []

        def worker(tid):
            rng = np.random.default_rng(tid)
            try:
                for i in range(per_thread):
                    key = f"v{rng.integers(4)}:{rng.integers(100)}"
                    gets[tid] += 1
                    if cache.get(key) is None:
                        cache.put(key, tid * per_thread + i)
                        puts[tid] += 1
            except Exception as error:  # surfaced at the end
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        stats = cache.stats
        assert stats["hits"] + stats["misses"] == sum(gets)
        assert stats["size"] <= stats["capacity"] == 64
        assert len(cache) == stats["size"]
        # Evictions can never exceed insertions beyond the retained entries.
        assert stats["evictions"] <= sum(puts) - stats["size"] + num_threads
        assert stats["evictions"] >= 0

    def test_version_namespacing_in_key(self):
        window = np.arange(6.0).reshape(2, 3)
        assert prediction_cache_key(window, "v1") != prediction_cache_key(window, "v2")
        assert prediction_cache_key(window, "v1") == prediction_cache_key(window.copy(), "v1")


class TestServerCacheUnderSwap:
    def _windows(self, count, seed=0):
        rng = np.random.default_rng(seed)
        # A small pool of distinct windows so the cache sees heavy re-use.
        pool = rng.uniform(0.0, 100.0, size=(8, 4, 3))
        return [pool[i % len(pool)] for i in range(count)]

    def test_no_stale_results_after_concurrent_swaps(self):
        server = InferenceServer(
            _constant(0), model_version="gen-0", max_batch_size=4,
            max_wait_ms=1.0, cache_size=256, num_workers=4,
        )
        generations = 6
        windows = self._windows(64)
        client_results = []
        errors = []
        stop = threading.Event()

        def client():
            try:
                while not stop.is_set():
                    for result in server.predict_many(windows[:16], timeout=30.0):
                        client_results.append(float(result.mean.flat[0]))
            except Exception as error:
                errors.append(error)

        with server:
            threads = [threading.Thread(target=client, daemon=True) for _ in range(3)]
            for thread in threads:
                thread.start()
            for generation in range(1, generations):
                server.swap_model(_constant(generation), version=f"gen-{generation}")
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)

            # After the last swap every *new* request must see the newest
            # model: a version-namespaced cache cannot serve gen<N entries.
            final = server.predict_many(windows, timeout=30.0)

        assert errors == []
        final_values = {float(result.mean.flat[0]) for result in final}
        assert final_values == {float(generations - 1)}
        # Concurrent clients only ever saw values some generation produced.
        assert set(client_results) <= {float(g) for g in range(generations)}
        assert server.stats["models_swapped"] == generations - 1

    def test_eviction_stats_consistent_with_tiny_cache_during_swaps(self):
        server = InferenceServer(
            _constant(1), model_version="a", max_batch_size=4,
            max_wait_ms=1.0, cache_size=4, num_workers=2,
        )
        windows = self._windows(40, seed=3)
        with server:
            server.predict_many(windows, timeout=30.0)
            server.swap_model(_constant(2), version="b")
            server.predict_many(windows, timeout=30.0)
            stats = server.stats
        cache_stats = server.cache.stats
        assert cache_stats["size"] <= 4
        assert cache_stats["hits"] + cache_stats["misses"] > 0
        assert cache_stats["evictions"] >= 0
        assert stats["requests_served"] == 80
