"""MicroBatcher close/submit races.

``submit`` checks the closed flag and then enqueues; a request that loses
that race lands *behind* the shutdown sentinel.  Two mechanisms keep it
from being dropped: ``next_batch`` re-queues a sentinel it meets mid-batch
(pushing it behind whatever the race left after it), and the server's
dispatcher runs a final drain pass (``poll_timeout=0.0``) after seeing the
shutdown.  These tests pin both paths by staging the queue exactly as the
race would leave it.
"""

import numpy as np

from repro.serving.batching import InferenceRequest, MicroBatcher


def _window(tag):
    return np.full((4, 3), float(tag))


def _race_request(tag):
    # A submit that passed the closed check before close() set the flag
    # enqueues the raw request after the sentinel; stage that directly.
    return InferenceRequest(window=_window(tag))


def _tags(batch):
    return [request.window[0, 0] for request in batch]


class TestMidBatchSentinel:
    def test_sentinel_met_mid_batch_is_requeued_not_swallowed(self):
        batcher = MicroBatcher(max_batch_size=8, max_wait_ms=50.0)
        batcher.submit(_window(1))
        batcher.submit(_window(2))
        batcher.close()
        # Queue: [w1, w2, Shutdown].  One batch returns both requests, the
        # sentinel is re-queued, and the next call reports closed.
        assert _tags(batcher.next_batch(poll_timeout=0.1)) == [1.0, 2.0]
        assert batcher.next_batch(poll_timeout=0.1) is None

    def test_request_behind_the_sentinel_survives_the_requeue(self):
        batcher = MicroBatcher(max_batch_size=8, max_wait_ms=50.0)
        batcher.submit(_window(1))
        batcher.close()
        batcher._queue.put(_race_request(2))
        # Queue: [w1, Shutdown, w2].  The first batch stops at the sentinel
        # and re-queues it at the tail — behind the late request — so the
        # second batch still delivers w2 before shutdown is reported.
        assert _tags(batcher.next_batch(poll_timeout=0.1)) == [1.0]
        assert _tags(batcher.next_batch(poll_timeout=0.1)) == [2.0]
        assert batcher.next_batch(poll_timeout=0.1) is None


class TestShutdownDrain:
    def test_drain_pass_recovers_request_behind_the_sentinel(self):
        batcher = MicroBatcher(max_batch_size=8, max_wait_ms=50.0)
        batcher.close()
        batcher._queue.put(_race_request(5))
        # Queue: [Shutdown, w].  The dispatcher sees None (shutdown), then
        # its drain pass (poll_timeout=0.0) recovers the late request.
        assert batcher.next_batch(poll_timeout=0.1) is None
        assert _tags(batcher.next_batch(poll_timeout=0.0)) == [5.0]
        # Nothing else: the drain ends on an empty, still-closed queue.
        assert batcher.next_batch(poll_timeout=0.0) is None

    def test_closed_empty_queue_reports_none_forever(self):
        batcher = MicroBatcher(max_batch_size=8, max_wait_ms=1.0)
        batcher.close()
        assert batcher.next_batch(poll_timeout=0.05) is None
        assert batcher.next_batch(poll_timeout=0.0) is None
        assert batcher.closed

    def test_submit_after_close_is_refused(self):
        batcher = MicroBatcher(max_batch_size=8, max_wait_ms=1.0)
        batcher.close()
        try:
            batcher.submit(_window(1))
        except RuntimeError as error:
            assert "closed" in str(error)
        else:
            raise AssertionError("submit after close must raise")
