"""Batch submission and pinned-deployment routing on the server."""

import numpy as np
import pytest

from repro.core.inference import PredictionResult
from repro.serving import InferenceServer, KeyRouter

HISTORY, NODES, HORIZON = 4, 3, 2


def _predictor(offset):
    def predict(windows):
        mean = np.repeat(windows[:, -1:, :], HORIZON, axis=1) + offset
        return PredictionResult(
            mean=mean,
            aleatoric_var=np.ones_like(mean),
            epistemic_var=np.zeros_like(mean),
        )

    return predict


def _windows(n, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.uniform(size=(HISTORY, NODES)) for _ in range(n)]


class TestSubmitMany:
    def test_results_align_with_inputs(self):
        with InferenceServer(_predictor(0.0), max_batch_size=16) as server:
            windows = _windows(10)
            futures = server.submit_many(windows)
            for window, future in zip(windows, futures):
                result = future.result(timeout=10.0)
                np.testing.assert_allclose(
                    result.mean[0], np.repeat(window[-1:], HORIZON, axis=0)
                )

    def test_batch_submit_coalesces_into_few_model_calls(self):
        calls = []

        def predict(windows):
            calls.append(windows.shape[0])
            return _predictor(0.0)(windows)

        with InferenceServer(predict, max_batch_size=64, cache_size=0) as server:
            futures = server.submit_many(_windows(32))
            for future in futures:
                future.result(timeout=10.0)
        assert sum(calls) == 32
        assert len(calls) <= 4  # far fewer forwards than windows

    def test_keys_route_through_a_key_router(self):
        router = KeyRouter({"north": "n", "south": "s"})
        with InferenceServer(router=router, cache_size=0) as server:
            server.deploy("n", _predictor(100.0))
            server.deploy("s", _predictor(-100.0))
            windows = _windows(4)
            futures = server.submit_many(
                windows, keys=["north", "south", "north", "south"]
            )
            results = [future.result(timeout=10.0) for future in futures]
        assert results[0].mean.mean() > 50 and results[2].mean.mean() > 50
        assert results[1].mean.mean() < -50 and results[3].mean.mean() < -50

    def test_pinned_deployments_bypass_the_router(self):
        router = KeyRouter({"north": "n"})
        with InferenceServer(router=router, cache_size=0) as server:
            server.deploy("n", _predictor(100.0))
            server.deploy("candidate", _predictor(-100.0))
            futures = server.submit_many(
                _windows(2),
                keys=["north", "north"],
                deployments=[None, "candidate"],
            )
            routed, pinned = [future.result(timeout=10.0) for future in futures]
        assert routed.mean.mean() > 50
        assert pinned.mean.mean() < -50

    def test_single_submit_supports_deployment_pin(self):
        with InferenceServer(_predictor(0.0), cache_size=0) as server:
            server.deploy("alt", _predictor(7.0))
            window = _windows(1)[0]
            result = server.submit(window, deployment="alt").result(timeout=10.0)
        np.testing.assert_allclose(
            result.mean[0] - np.repeat(window[-1:], HORIZON, axis=0), 7.0
        )

    def test_misaligned_keys_or_deployments_rejected(self):
        with InferenceServer(_predictor(0.0)) as server:
            with pytest.raises(ValueError, match="keys must align"):
                server.submit_many(_windows(2), keys=["a"])
            with pytest.raises(ValueError, match="deployments must align"):
                server.submit_many(_windows(2), deployments=["a"])

    def test_bad_window_shape_rejected(self):
        with InferenceServer(_predictor(0.0)) as server:
            with pytest.raises(ValueError, match="submit_many expects"):
                server.submit_many([np.zeros((2, HISTORY, NODES))])

    def test_submit_many_on_stopped_server_raises(self):
        server = InferenceServer(_predictor(0.0))
        with pytest.raises(RuntimeError, match="not running"):
            server.submit_many(_windows(1))


class TestKeyRouterSetRoute:
    def test_set_route_re_points_only_that_key(self):
        router = KeyRouter({"a": "m1", "b": "m2"})
        router.set_route("a", "m3")
        assert router.route(None, key="a").primary == "m3"
        assert router.route(None, key="b").primary == "m2"

    def test_set_routes_bulk_update(self):
        router = KeyRouter({})
        router.set_routes({"a": "m1", "b": "m1"})
        assert router.route(None, key="a").primary == "m1"
        assert router.route(None, key="b").primary == "m1"
        assert router.route(None, key="c").primary is None
