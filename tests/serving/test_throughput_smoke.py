"""Serving throughput smoke tests (run with ``pytest -m slow``).

Tier-1 stays fast because these are deselected by the default ``-m "not
slow"``; the CI job that exercises serving performance opts back in.
"""

import time

import numpy as np
import pytest

from repro.core.inference import BatchedPredictor
from repro.data.scalers import StandardScaler
from repro.models.agcrn import AGCRN

NODES, HISTORY, HORIZON = 8, 8, 4


def _predictor():
    rng = np.random.default_rng(0)
    model = AGCRN(
        num_nodes=NODES, history=HISTORY, horizon=HORIZON, hidden_dim=8, embed_dim=3,
        encoder_dropout=0.1, decoder_dropout=0.2, heads=("mean", "log_var"), rng=rng,
    )
    scaler = StandardScaler().fit(np.array([0.0, 100.0]))
    return model, scaler, BatchedPredictor(model, scaler)


@pytest.mark.slow
class TestThroughputSmoke:
    def test_batched_mc_beats_looped_at_32_samples(self):
        # 4 windows is a representative micro-batch from the serving queue;
        # the folded pass amortizes the per-timestep Python dispatch that the
        # looped path pays 32 times.
        _, scaler, predictor = _predictor()
        inputs = np.random.default_rng(1).uniform(-1, 1, size=(4, HISTORY, NODES))

        def run(vectorized):
            start = time.perf_counter()
            predictor.monte_carlo(
                inputs, num_samples=32, rng=np.random.default_rng(2), vectorized=vectorized
            )
            return time.perf_counter() - start

        run(True)  # warm-up
        batched = min(run(True) for _ in range(5))
        looped = min(run(False) for _ in range(5))
        assert looped / batched >= 3.0, f"speedup only {looped / batched:.2f}x"

    def test_server_sustains_many_requests(self):
        model, scaler, predictor = _predictor()
        from repro.serving import InferenceServer

        def predict_fn(windows):
            return predictor.monte_carlo(
                scaler.transform(windows), num_samples=8, rng=np.random.default_rng(3)
            )

        windows = np.random.default_rng(4).uniform(0, 100, size=(64, HISTORY, NODES))
        start = time.perf_counter()
        with InferenceServer(predict_fn, model_version="smoke", max_batch_size=32) as server:
            results = server.predict_many(windows)
        elapsed = time.perf_counter() - start
        assert len(results) == 64
        throughput = len(results) / elapsed
        assert throughput > 10.0, f"served only {throughput:.1f} windows/s"
