"""ACI quantile maintenance — sorted ring vs per-step ``np.quantile`` re-sort.

``AdaptiveConformalCalibrator.quantiles()`` used to re-sort the whole score
window on every read (``np.quantile`` is O(n log n)), which dominates the
streaming loop at large windows.  The sorted-ring rewrite keeps a bisect-
maintained mirror of each ring buffer, so a quantile read is an O(1) index
and each score insert is a bisect insert/remove — identical outputs (the
equivalence is asserted bit-exactly in ``tests/streaming/test_aci.py``),
different asymptotics.  The gate: >= 3x per-step speedup at the largest
window.
"""

import time

import numpy as np

from repro.evaluation import format_rows
from repro.metrics.uncertainty import conformal_quantile_level
from repro.streaming import ACIConfig, AdaptiveConformalCalibrator

HORIZON = 4
SCORES_PER_STEP = 8     # observed sensors contributing per update
STEPS = 300             # timed steps per configuration
GATE_WINDOW = 16000     # the >= 3x gate applies at the largest window
GATE_SPEEDUP = 3.0


class _LegacyQuantiles:
    """The pre-sorted-ring read: ``np.quantile`` over the raw ring each step."""

    def __init__(self, calibrator):
        self.calibrator = calibrator

    def quantiles(self):
        calibrator = self.calibrator
        cfg = calibrator.config
        out = np.empty(calibrator.horizon)
        for h in range(calibrator.horizon):
            n = int(calibrator._count[h])
            corrected = conformal_quantile_level(max(n, 1), calibrator.alpha_t[h])
            out[h] = np.quantile(calibrator._scores[h, :n], corrected)
        return out


def _prefill(window, rng):
    calibrator = AdaptiveConformalCalibrator(
        HORIZON, config=ACIConfig(window=window, min_scores=5, mode="aci")
    )
    for _ in range(window // SCORES_PER_STEP + 1):
        for h in range(HORIZON):
            calibrator.update(h, rng.gamma(2.0, 1.0, size=SCORES_PER_STEP), miscoverage=0.05)
    return calibrator


def _time_loop(calibrator, reader, rng):
    """One streaming step = fold in fresh scores, then read the quantiles."""
    start = time.perf_counter()
    for _ in range(STEPS):
        for h in range(HORIZON):
            calibrator.update(h, rng.gamma(2.0, 1.0, size=SCORES_PER_STEP), miscoverage=0.05)
        reader.quantiles()
    return (time.perf_counter() - start) / STEPS


def run_aci_quantiles():
    rows = []
    for window in (1000, 4000, GATE_WINDOW):
        rng = np.random.default_rng(window)
        calibrator = _prefill(window, rng)
        legacy = _time_loop(calibrator, _LegacyQuantiles(calibrator), rng)
        ring = _time_loop(calibrator, calibrator, rng)
        rows.append(
            {
                "window": window,
                "legacy np.quantile (us/step)": round(legacy * 1e6, 1),
                "sorted ring (us/step)": round(ring * 1e6, 1),
                "speedup": round(legacy / ring, 2),
                "ring steps/s": round(1.0 / ring, 0),
            }
        )
    return rows


def test_aci_quantile_maintenance(benchmark, save_result):
    rows = benchmark.pedantic(run_aci_quantiles, rounds=1, iterations=1)
    save_result(
        "aci_quantiles",
        format_rows(
            rows,
            title=(
                f"ACI per-step quantiles (horizon={HORIZON}, "
                f"{SCORES_PER_STEP} scores/step, {STEPS} timed steps)"
            ),
        ),
    )
    by_window = {row["window"]: row for row in rows}
    # The win must grow with the window and clear the gate at the largest.
    assert by_window[GATE_WINDOW]["speedup"] >= GATE_SPEEDUP, by_window
    # The sorted ring must never lose at streaming-realistic windows.
    assert all(row["speedup"] > 0.8 for row in rows), rows
