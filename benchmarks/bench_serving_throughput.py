"""Serving throughput — batched (sample-folded) vs. looped MC inference.

Times ``N_MC = 32`` Monte-Carlo dropout forecasts through the vectorized
:class:`~repro.core.inference.BatchedPredictor` fold and through the
sequential per-sample loop, across request micro-batch sizes, plus the
end-to-end :class:`~repro.serving.InferenceServer` throughput with and
without cache re-use.

Expected shape: the folded pass amortizes the per-timestep Python dispatch
the loop pays ``N_MC`` times, so the speedup is largest for the small
micro-batches a serving queue produces and decays as raw array math starts
to dominate.  The acceptance gate is >= 3x at the representative micro-batch
size of 4 windows.
"""

import time

import numpy as np

from repro.core.inference import BatchedPredictor
from repro.data.scalers import StandardScaler
from repro.models.agcrn import AGCRN
from repro.serving import InferenceServer
from repro.evaluation import format_rows

NODES, HISTORY, HORIZON = 8, 8, 4
N_MC = 32
GATE_BATCH = 4  # micro-batch size the >= 3x acceptance criterion applies to


def _build_predictor():
    rng = np.random.default_rng(0)
    model = AGCRN(
        num_nodes=NODES, history=HISTORY, horizon=HORIZON, hidden_dim=8, embed_dim=3,
        encoder_dropout=0.1, decoder_dropout=0.2, heads=("mean", "log_var"), rng=rng,
    )
    scaler = StandardScaler().fit(np.array([0.0, 100.0]))
    return scaler, BatchedPredictor(model, scaler)


def _time_mc(predictor, inputs, vectorized, repeats=5):
    def once():
        start = time.perf_counter()
        predictor.monte_carlo(
            inputs, num_samples=N_MC, rng=np.random.default_rng(2), vectorized=vectorized
        )
        return time.perf_counter() - start

    once()  # warm-up
    return min(once() for _ in range(repeats))


def run_serving_throughput():
    scaler, predictor = _build_predictor()
    rng = np.random.default_rng(1)
    rows = []
    for batch in (1, 2, 4, 8, 16):
        inputs = rng.uniform(-1.0, 1.0, size=(batch, HISTORY, NODES))
        looped = _time_mc(predictor, inputs, vectorized=False)
        batched = _time_mc(predictor, inputs, vectorized=True)
        rows.append(
            {
                "micro-batch": batch,
                "looped (ms)": round(looped * 1000.0, 2),
                "batched (ms)": round(batched * 1000.0, 2),
                "speedup": round(looped / batched, 2),
                "batched win/s": round(batch / batched, 1),
            }
        )

    # End-to-end server throughput: cold (all model) vs warm (all cache).
    def predict_fn(windows):
        return predictor.monte_carlo(
            scaler.transform(windows), num_samples=N_MC, rng=np.random.default_rng(3)
        )

    windows = rng.uniform(0.0, 100.0, size=(64, HISTORY, NODES))
    server_stats = {}
    with InferenceServer(predict_fn, model_version="bench", max_batch_size=GATE_BATCH) as server:
        start = time.perf_counter()
        server.predict_many(windows)
        server_stats["cold win/s"] = round(64.0 / (time.perf_counter() - start), 1)
        start = time.perf_counter()
        server.predict_many(windows)
        server_stats["warm win/s"] = round(64.0 / (time.perf_counter() - start), 1)
        server_stats["cache hits"] = server.stats["cache_hits"]
    return rows, server_stats


def test_serving_throughput(benchmark, save_result):
    rows, server_stats = benchmark.pedantic(run_serving_throughput, rounds=1, iterations=1)
    lines = [
        format_rows(rows, title=f"Serving: looped vs batched MC inference (N_MC={N_MC})"),
        "",
        "InferenceServer end-to-end (64 windows, micro-batch "
        f"{GATE_BATCH}): cold {server_stats['cold win/s']} windows/s, "
        f"warm {server_stats['warm win/s']} windows/s "
        f"({server_stats['cache hits']} cache hits)",
    ]
    save_result("serving_throughput", "\n".join(lines))

    by_batch = {row["micro-batch"]: row for row in rows}
    # Acceptance gate: >= 3x at the representative serving micro-batch size.
    assert by_batch[GATE_BATCH]["speedup"] >= 3.0, by_batch[GATE_BATCH]
    # The folded path should never lose badly anywhere on the sweep.
    assert all(row["speedup"] > 0.8 for row in rows), rows
    # Cache re-use must make the warm pass much faster than the cold one.
    assert server_stats["warm win/s"] > server_stats["cold win/s"], server_stats
    assert server_stats["cache hits"] >= 64
