"""Figure 9 — decomposition of the predictive uncertainty on one segment.

Regenerates the total / aleatoric / epistemic uncertainty traces for a short
stretch of a randomly selected PEMS08 sensor.  The paper's observation is
that the aleatoric component accounts for most of the total uncertainty.
"""

from repro.evaluation import run_uncertainty_decomposition
from repro.utils.tables import format_table


def test_fig9_uncertainty_decomposition(benchmark, save_result, scale):
    record = benchmark.pedantic(
        lambda: run_uncertainty_decomposition(scale, dataset_name="PEMS08", max_points=60, seed=0),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            step,
            record["ground_truth"][step],
            record["prediction"][step],
            record["total_std"][step],
            record["aleatoric_std"][step],
            record["epistemic_std"][step],
        )
        for step in range(0, len(record["ground_truth"]), 5)
    ]
    text = format_table(
        ["t", "ground truth", "prediction", "total std", "aleatoric std", "epistemic std"],
        rows,
        precision=1,
        title=(
            f"Fig. 9 (PEMS08): node {record['node']}, "
            f"aleatoric share of total variance {record['mean_aleatoric_share']:.2f}"
        ),
    )
    save_result("fig9_decomposition", text)

    # The aleatoric component should be a substantial part of the total
    # uncertainty (the paper finds it dominates).
    assert record["mean_aleatoric_share"] > 0.3
    assert all(t >= a - 1e-9 for t, a in zip(record["total_std"], record["aleatoric_std"]))
