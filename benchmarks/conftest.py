"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Because the
interesting output is the regenerated rows/series (not only the timing), each
benchmark calls :func:`save_result` which writes the formatted text to
``benchmarks/results/<name>.txt`` and echoes it to stdout (visible with
``pytest -s`` and referenced from EXPERIMENTS.md).

Select the run size with the ``REPRO_SCALE`` environment variable
(``unit`` for a smoke run, ``bench`` — the default — for the CPU-sized
reproduction, ``paper`` for the full-size recipe).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scale():
    from repro.evaluation import scale_from_env

    return scale_from_env(default="bench")


@pytest.fixture
def save_result(results_dir):
    """Persist a benchmark's regenerated table/series and echo it."""

    def _save(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save
