"""Figure 11 — effect of the number of Monte-Carlo samples.

Regenerates the MAE / RMSE / MAPE of DeepSTUQ as the number of test-time MC
dropout samples varies over {1, 3, 5, 10, 15}.  Expected shape: performance
improves (or at least does not degrade) with more samples and saturates
around 10-15, motivating the paper's choice of 10.
"""

import numpy as np

from repro.evaluation import format_rows, run_mc_sample_ablation


def test_fig11_mc_sample_ablation(benchmark, save_result, scale):
    counts = (1, 3, 5, 10, 15)
    rows = benchmark.pedantic(
        lambda: run_mc_sample_ablation(scale, dataset_name="PEMS08", sample_counts=counts),
        rounds=1,
        iterations=1,
    )
    text = format_rows(rows, title="Fig. 11: point metrics vs number of Monte-Carlo samples (PEMS08)")
    save_result("fig11_mc_samples", text)

    assert [row["MC samples"] for row in rows] == list(counts)
    maes = np.array([row["MAE"] for row in rows])
    assert np.all(np.isfinite(maes))
    # Many samples should not be worse than a single sample by a large margin,
    # and the curve should flatten: the 10->15 change is small relative to 1->10.
    assert maes[-1] <= maes[0] * 1.05
    assert abs(maes[-1] - maes[-2]) <= abs(maes[0] - maes[-2]) + 1e-6
