"""Observability overhead — the obs layer must be near-free on the hot path.

The obs layer's contract: disabled it costs one flag check per call site,
and *enabled* (tracing + profiling + event logging + per-tick SLO
evaluation all on) it may not tax the fleet tick measurably — the ISSUE
gate is **< 3 % tick-throughput overhead on a 256-stream fleet tick**.  This benchmark measures exactly
that, end to end, with the same realistic MC-dropout AGCRN workload as
``bench_fleet_throughput``:

* run ``ROUNDS`` alternating measurement rounds of ``MEASURED_TICKS``
  ticks each with obs fully disabled and fully enabled (alternation keeps
  thermal/allocator drift from biasing one side);
* score each mode by its *fastest* round (the classic low-noise
  estimator) and gate ``enabled / disabled - 1`` under 3 %.

The enabled run's phase profile is the second deliverable: the per-phase
cost breakdown of a 256-stream tick
(``benchmarks/results/obs_tick_profile.txt``), naming the top-3 phases —
the direct input to the hot-path optimisation PR.
"""

import time

import numpy as np

import repro.obs as obs
from repro.core.inference import BatchedPredictor
from repro.data import StreamingTrafficFeed
from repro.data.scalers import StandardScaler
from repro.graph import grid_network
from repro.fleet import StreamFleet
from repro.models.agcrn import AGCRN
from repro.obs.profiler import profiler
from repro.obs.slo import SLOEngine, default_slos
from repro.serving import InferenceServer

NODES_GRID = (2, 2)
HISTORY, HORIZON = 12, 4
N_MC = 16
NUM_STREAMS = 256             # the gate applies at fleet scale
WARMUP_TICKS = HISTORY
MEASURED_TICKS = 8
ROUNDS = 3                    # alternating disabled/enabled rounds per mode
GATE_OVERHEAD = 0.03


def _predict_fn():
    rng = np.random.default_rng(0)
    num_nodes = NODES_GRID[0] * NODES_GRID[1]
    model = AGCRN(
        num_nodes=num_nodes, history=HISTORY, horizon=HORIZON,
        hidden_dim=8, embed_dim=3, encoder_dropout=0.1, decoder_dropout=0.2,
        heads=("mean", "log_var"), rng=rng,
    )
    scaler = StandardScaler().fit(np.array([0.0, 400.0]))
    predictor = BatchedPredictor(model, scaler)

    def predict(windows):
        return predictor.monte_carlo(
            scaler.transform(windows), num_samples=N_MC, rng=np.random.default_rng(3)
        )

    return predict


def _rows():
    network = grid_network(*NODES_GRID)
    steps = WARMUP_TICKS + MEASURED_TICKS * ROUNDS
    return {
        f"c{i}": list(StreamingTrafficFeed(network, num_steps=steps, seed=i))
        for i in range(NUM_STREAMS)
    }


def _build_fleet(predict, rows):
    server = InferenceServer(
        predict, model_version="bench", max_batch_size=64,
        max_wait_ms=2.0, cache_size=0,
    )
    server.start()
    fleet = StreamFleet(server, HISTORY, HORIZON, detector_factory=list)
    for name in rows:
        fleet.add_stream(name)
    return server, fleet


def run_obs_overhead():
    """Returns ``(disabled_s, enabled_s, overhead, profile_text, top3)``.

    One fleet per mode, both fed identical rows; the measured rounds
    alternate disabled-fleet / enabled-fleet so slow drift hits both.
    """
    rows = _rows()
    obs.reset()
    servers = {}
    fleets = {}
    for mode in ("disabled", "enabled"):
        servers[mode], fleets[mode] = _build_fleet(_predict_fn(), rows)
        if mode == "enabled":
            # "Fully enabled" includes the SLO layer: every measured tick
            # samples all sources and burn-rate-evaluates the default specs
            # (the per-stream coverage wildcard fans out to 256 alerts).
            fleets[mode].attach_slo(SLOEngine(specs=default_slos()), every=1)
        for t in range(WARMUP_TICKS):
            fleets[mode].tick({name: r[t] for name, r in rows.items()})

    best = {"disabled": float("inf"), "enabled": float("inf")}
    try:
        for round_index in range(ROUNDS):
            lo = WARMUP_TICKS + round_index * MEASURED_TICKS
            for mode in ("disabled", "enabled"):
                if mode == "enabled":
                    obs.configure(enabled=True, seed=0, log_sink=False)
                else:
                    obs.configure(enabled=False)
                fleet = fleets[mode]
                start = time.perf_counter()
                for t in range(lo, lo + MEASURED_TICKS):
                    fleet.tick({name: r[t] for name, r in rows.items()})
                best[mode] = min(best[mode], time.perf_counter() - start)
        profile_text = profiler().summary()
        top3 = profiler().top_phases(3)
    finally:
        obs.reset()
        for server in servers.values():
            server.stop()
    overhead = best["enabled"] / best["disabled"] - 1.0
    return best["disabled"], best["enabled"], overhead, profile_text, top3


def test_obs_overhead(benchmark, save_result):
    disabled_s, enabled_s, overhead, profile_text, top3 = benchmark.pedantic(
        run_obs_overhead, rounds=1, iterations=1
    )
    per_tick = lambda seconds: seconds / MEASURED_TICKS * 1e3  # noqa: E731
    header = (
        f"Obs overhead on a {NUM_STREAMS}-stream fleet tick "
        f"(MC-dropout AGCRN, N_MC={N_MC}, horizon {HORIZON}, "
        f"best of {ROUNDS} alternating rounds x {MEASURED_TICKS} ticks)"
    )
    text = "\n".join(
        [
            header,
            f"obs disabled: {per_tick(disabled_s):9.1f} ms/tick",
            f"obs enabled:  {per_tick(enabled_s):9.1f} ms/tick",
            f"overhead:     {overhead * 100.0:+9.2f}%   (gate < "
            f"{GATE_OVERHEAD * 100.0:.0f}%)",
        ]
    )
    save_result("obs_overhead", text)
    profile = "\n".join(
        [
            f"Per-phase breakdown of a {NUM_STREAMS}-stream fleet tick "
            f"(obs enabled, {ROUNDS * MEASURED_TICKS} measured ticks)",
            "",
            profile_text,
            "",
            f"top-3 phases by total cost: {', '.join(top3)}",
        ]
    )
    save_result("obs_tick_profile", profile)
    # Acceptance gate: fully-enabled obs must stay under 3% tick overhead.
    assert overhead < GATE_OVERHEAD, (
        f"obs overhead {overhead * 100.0:.2f}% exceeds the "
        f"{GATE_OVERHEAD * 100.0:.0f}% gate"
    )
