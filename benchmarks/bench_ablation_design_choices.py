"""Extension ablations for the design choices called out in DESIGN.md.

* combined-loss weight lambda (Eq. 9): pure-NLL vs L1-dominated training;
* Adam vs SGD inside the AWA re-training stage (the paper asserts Adam works
  better than the SGD of the original SWA recipe).

These go beyond the paper's own ablation tables and run on PEMS08 only to
keep the benchmark suite fast.
"""

import numpy as np

from repro.core.awa import AWAConfig, AWATrainer
from repro.core.pipeline import DeepSTUQConfig, DeepSTUQPipeline
from repro.evaluation import format_rows, make_training_config, run_lambda_ablation
from repro.evaluation.datasets import evaluation_windows, load_benchmark_splits
from repro.metrics import point_metrics


def test_ablation_lambda_weight(benchmark, save_result, scale):
    rows = benchmark.pedantic(
        lambda: run_lambda_ablation(scale, dataset_name="PEMS08", lambda_values=(0.01, 0.1, 1.0)),
        rounds=1,
        iterations=1,
    )
    text = format_rows(rows, title="Ablation: combined-loss weight lambda (PEMS08)")
    save_result("ablation_lambda", text)
    assert len(rows) == 3
    assert all(np.isfinite(row["MAE"]) and np.isfinite(row["MNLL"]) for row in rows)


def test_ablation_awa_optimizer(benchmark, save_result, scale):
    """Compare Adam vs SGD as the AWA re-training optimizer (paper Section IV-C2)."""

    def run():
        results = []
        for optimizer_name in ("adam", "sgd"):
            train, val, test = load_benchmark_splits("PEMS08", scale)
            config = make_training_config(scale, "PEMS08")
            pipeline = DeepSTUQPipeline(
                train.num_nodes,
                DeepSTUQConfig(
                    training=config,
                    awa=AWAConfig(epochs=scale.awa_epochs, optimizer=optimizer_name),
                    use_awa=False,
                    use_calibration=False,
                ),
            )
            pipeline.fit(train, val)
            awa = AWATrainer(pipeline.trainer, AWAConfig(epochs=scale.awa_epochs, optimizer=optimizer_name))
            awa.retrain(train)
            inputs, targets = evaluation_windows(test, scale)
            metrics = point_metrics(pipeline.predict(inputs).mean, targets)
            results.append({"AWA optimizer": optimizer_name, **metrics})
        return results

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_rows(rows, title="Ablation: Adam vs SGD inside AWA re-training (PEMS08)")
    save_result("ablation_awa_optimizer", text)
    assert {row["AWA optimizer"] for row in rows} == {"adam", "sgd"}
    assert all(np.isfinite(row["MAE"]) for row in rows)
