"""Table III — point-prediction comparison.

Trains every baseline of the paper's Table III (DCRNN, ST-GCN, GraphWaveNet,
ASTGCN, STSGCN, STFGNN, AGCRN) plus DeepSTUQ/S and DeepSTUQ on every dataset
at the selected scale and reports MAE / RMSE / MAPE on the test split.

The absolute numbers differ from the paper (synthetic data, NumPy substrate,
reduced epochs); the comparison of interest is the ordering — the adaptive-
graph models (AGCRN, DeepSTUQ) should lead the older fixed-graph baselines,
and DeepSTUQ should be at least as good as its AGCRN backbone.
"""

import numpy as np

from repro.evaluation import (
    POINT_MODEL_NAMES,
    format_method_table,
    make_awa_config,
    make_training_config,
    run_point_prediction,
)
from repro.evaluation.datasets import evaluation_windows, load_benchmark_splits
from repro.metrics import point_metrics
from repro.uq import DeepSTUQ


def _deepstuq_rows(scale):
    """DeepSTUQ and DeepSTUQ/S columns of Table III."""
    rows = []
    for dataset_name in scale.datasets:
        train, val, test = load_benchmark_splits(dataset_name, scale)
        config = make_training_config(scale, dataset_name)
        method = DeepSTUQ(train.num_nodes, config=config, awa_config=make_awa_config(scale))
        method.fit(train, val)
        inputs, targets = evaluation_windows(test, scale)
        single = point_metrics(method.predict_single_pass(inputs).mean, targets)
        sampled = point_metrics(method.predict(inputs).mean, targets)
        rows.append({"Dataset": dataset_name, "Model": "DeepSTUQ/S", **single})
        rows.append({"Dataset": dataset_name, "Model": "DeepSTUQ", **sampled})
    return rows


def test_table3_point_prediction(benchmark, save_result, scale):
    def run():
        rows = run_point_prediction(scale)
        rows.extend(_deepstuq_rows(scale))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_method_table(
        rows,
        metrics=("MAE", "RMSE", "MAPE"),
        row_key="Model",
        title="Table III: point prediction results",
    )
    save_result("table3_point_prediction", text)

    models = {row["Model"] for row in rows}
    assert set(POINT_MODEL_NAMES).issubset(models)
    assert {"DeepSTUQ", "DeepSTUQ/S"}.issubset(models)
    assert all(np.isfinite(row["MAE"]) for row in rows)
    # Shape check: on average over datasets, DeepSTUQ should not lose to the
    # weakest fixed-graph baseline.
    mean_mae = lambda name: np.mean([r["MAE"] for r in rows if r["Model"] == name])  # noqa: E731
    worst_baseline = max(mean_mae(name) for name in POINT_MODEL_NAMES)
    assert mean_mae("DeepSTUQ") <= worst_baseline * 1.1
