"""Streaming-loop throughput: predict + observe steps/second.

Times the full online loop — pending-forecast resolution, per-horizon ACI
updates, rolling monitors, drift detectors, forecast + interval emission —
over a persistence predictor whose own cost is negligible, so the number is
the overhead ceiling the ``repro.streaming`` runner imposes on any model.

Swept over calibration modes (static / rolling / aci) and a detector-laden
configuration; results land in ``benchmarks/results/streaming_throughput.txt``
so regressions are visible in review.
"""

import time

import numpy as np

from repro.data import StreamingTrafficFeed
from repro.evaluation import format_rows
from repro.graph import grid_network
from repro.streaming import (
    CoverageBreachDetector,
    ErrorCusumDetector,
    PersistenceForecaster,
    StreamingForecaster,
)

HISTORY, HORIZON = 12, 12
STEPS = 600
#: Regression gate: the runner must sustain at least this many steps/sec.
MIN_STEPS_PER_SEC = 100.0


def _feed(num_steps=STEPS):
    return StreamingTrafficFeed(grid_network(3, 3), num_steps=num_steps, seed=0)


def _time_runner(**runner_kwargs):
    feed = _feed()
    runner = StreamingForecaster(
        PersistenceForecaster(horizon=HORIZON, sigma=20.0),
        history=HISTORY,
        horizon=HORIZON,
        **runner_kwargs,
    )
    rows = list(feed)
    start = time.perf_counter()
    for row in rows:
        runner.observe(row)
    elapsed = time.perf_counter() - start
    return STEPS / elapsed


def run_streaming_throughput():
    results = []
    for mode in ("static", "rolling", "aci"):
        rate = _time_runner(aci={"mode": mode, "window": 2000}, detectors=[])
        results.append({"configuration": f"{mode}, no detectors", "steps/s": round(rate, 1)})
    rate = _time_runner(
        aci={"mode": "aci", "window": 2000},
        detectors=[
            CoverageBreachDetector(nominal=0.95, tolerance=0.05),
            ErrorCusumDetector(),
        ],
    )
    results.append({"configuration": "aci + both detectors", "steps/s": round(rate, 1)})

    # NaN-heavy partial observations exercise the masking path.
    feed = _feed()
    values = feed.values.copy()
    rng = np.random.default_rng(1)
    values[rng.random(values.shape) < 0.3] = np.nan
    runner = StreamingForecaster(
        PersistenceForecaster(horizon=HORIZON, sigma=20.0),
        history=HISTORY, horizon=HORIZON,
        aci={"mode": "aci", "window": 2000}, detectors=[],
    )
    start = time.perf_counter()
    for row in values:
        runner.observe(row)
    results.append(
        {
            "configuration": "aci, 30% sensors NaN",
            "steps/s": round(STEPS / (time.perf_counter() - start), 1),
        }
    )
    return results


def test_streaming_throughput(benchmark, save_result):
    rows = benchmark.pedantic(run_streaming_throughput, rounds=1, iterations=1)
    text = format_rows(
        rows,
        title=(
            f"Streaming loop throughput (predict+observe, horizon {HORIZON}, "
            f"9 nodes, {STEPS} steps)"
        ),
    )
    save_result("streaming_throughput", text)
    # Regression gate: the online loop must stay comfortably real-time
    # (5-minute traffic data needs ~0.003 steps/s; we demand 100).
    for row in rows:
        assert row["steps/s"] >= MIN_STEPS_PER_SEC, row
