"""Table VI — ablation of temperature-scaling calibration.

The same trained model is evaluated before and after fitting the calibration
temperature on the validation split; calibration should move PICP toward the
nominal 95% level (and not hurt MNLL).
"""

import numpy as np

from repro.evaluation import format_rows, run_calibration_ablation


def test_table6_calibration_ablation(benchmark, save_result, scale):
    rows = benchmark.pedantic(lambda: run_calibration_ablation(scale), rounds=1, iterations=1)
    text = format_rows(rows, title="Table VI: ablation study on model calibration")
    save_result("table6_calibration_ablation", text)

    assert len(rows) == 3 * len(scale.datasets)
    picp_rows = [row for row in rows if row["Metric"] == "PICP"]
    # Calibration should, on average, bring coverage closer to the 95% target.
    before_gap = np.mean([abs(row["No Calibration"] - 95.0) for row in picp_rows])
    after_gap = np.mean([abs(row["Calibration"] - 95.0) for row in picp_rows])
    assert after_gap <= before_gap + 2.0
    assert all(row["Temperature"] > 0 for row in rows)
