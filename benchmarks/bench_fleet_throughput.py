"""Fleet throughput — batched fleet ticks vs. N independent streaming loops.

The fleet's claim: funneling every stream's per-tick predict through one
shared micro-batched :class:`~repro.serving.InferenceServer` turns a tick
over N streams into ``O(ceil(N / batch))`` model calls instead of N.  This
benchmark measures exactly that, end to end, with a realistic model cost —
an MC-dropout AGCRN (the same untrained-forward setup as
``bench_serving_throughput``) whose per-call dispatch overhead is what the
batching amortizes:

* **per-stream loop** — N independent :class:`StreamingForecaster` runners,
  each calling ``predict`` on its own batch-of-1 window every tick;
* **fleet tick** — one :class:`~repro.fleet.StreamFleet` over the same N
  streams and the same model behind a shared server.

Both sides pay the identical per-stream ACI/monitor cost, so the measured
gap is the serving-path win.  The acceptance gate is **>= 3x at 64
streams**; results land in ``benchmarks/results/fleet_throughput.txt``.
"""

import time

import numpy as np

from repro.core.inference import BatchedPredictor
from repro.data import StreamingTrafficFeed
from repro.data.scalers import StandardScaler
from repro.evaluation import format_rows
from repro.fleet import StreamFleet
from repro.graph import grid_network
from repro.models.agcrn import AGCRN
from repro.serving import InferenceServer
from repro.streaming import StreamingForecaster

NODES_GRID = (2, 2)           # 4 sensors per corridor window
HISTORY, HORIZON = 12, 4
N_MC = 32
WARMUP_TICKS = HISTORY        # ticks before predictions start
MEASURED_TICKS = 24
GATE_STREAMS = 64             # the >= 3x acceptance criterion applies here
GATE_SPEEDUP = 3.0
ACI = {"window": 500, "min_scores": 20}


def _predict_fn():
    """One shared MC-dropout model; per-call cost dominated by dispatch."""
    rng = np.random.default_rng(0)
    num_nodes = NODES_GRID[0] * NODES_GRID[1]
    model = AGCRN(
        num_nodes=num_nodes, history=HISTORY, horizon=HORIZON,
        hidden_dim=8, embed_dim=3, encoder_dropout=0.1, decoder_dropout=0.2,
        heads=("mean", "log_var"), rng=rng,
    )
    scaler = StandardScaler().fit(np.array([0.0, 400.0]))
    predictor = BatchedPredictor(model, scaler)

    def predict(windows):
        return predictor.monte_carlo(
            scaler.transform(windows), num_samples=N_MC, rng=np.random.default_rng(3)
        )

    return predict


def _rows(num_streams):
    network = grid_network(*NODES_GRID)
    steps = WARMUP_TICKS + MEASURED_TICKS
    return {
        f"c{i}": list(StreamingTrafficFeed(network, num_steps=steps, seed=i))
        for i in range(num_streams)
    }


def _time_per_stream_loop(predict, rows):
    class _Model:
        pass

    model = _Model()
    model.predict = predict
    runners = {
        name: StreamingForecaster(
            model, history=HISTORY, horizon=HORIZON, aci=dict(ACI), detectors=[]
        )
        for name in rows
    }
    for t in range(WARMUP_TICKS):
        for name, runner in runners.items():
            runner.observe(rows[name][t])
    start = time.perf_counter()
    for t in range(WARMUP_TICKS, WARMUP_TICKS + MEASURED_TICKS):
        for name, runner in runners.items():
            runner.observe(rows[name][t])
    return time.perf_counter() - start


def _time_fleet(predict, rows):
    server = InferenceServer(
        predict, model_version="bench", max_batch_size=GATE_STREAMS,
        max_wait_ms=2.0, cache_size=0,
    )
    with server:
        fleet = StreamFleet(server, HISTORY, HORIZON, aci=dict(ACI), detector_factory=list)
        for name in rows:
            fleet.add_stream(name)
        for t in range(WARMUP_TICKS):
            fleet.tick({name: stream_rows[t] for name, stream_rows in rows.items()})
        start = time.perf_counter()
        for t in range(WARMUP_TICKS, WARMUP_TICKS + MEASURED_TICKS):
            fleet.tick({name: stream_rows[t] for name, stream_rows in rows.items()})
        elapsed = time.perf_counter() - start
        stats = server.stats
    return elapsed, stats


def run_fleet_throughput():
    results = []
    gate_speedup = None
    for num_streams in (8, 32, GATE_STREAMS):
        predict = _predict_fn()
        rows = _rows(num_streams)
        loop_elapsed = _time_per_stream_loop(predict, rows)
        fleet_elapsed, stats = _time_fleet(predict, rows)
        speedup = loop_elapsed / fleet_elapsed
        if num_streams == GATE_STREAMS:
            gate_speedup = speedup
        results.append(
            {
                "streams": num_streams,
                "per-stream (ms/tick)": round(loop_elapsed / MEASURED_TICKS * 1000.0, 1),
                "fleet (ms/tick)": round(fleet_elapsed / MEASURED_TICKS * 1000.0, 1),
                "speedup": round(speedup, 2),
                "mean batch": round(stats["mean_batch_size"], 1),
                "stream-steps/s": round(
                    num_streams * MEASURED_TICKS / fleet_elapsed, 1
                ),
            }
        )
    return results, gate_speedup


def test_fleet_throughput(benchmark, save_result):
    (rows, gate_speedup) = benchmark.pedantic(
        run_fleet_throughput, rounds=1, iterations=1
    )
    text = format_rows(
        rows,
        title=(
            f"Fleet tick vs {GATE_STREAMS} independent streaming loops "
            f"(MC-dropout AGCRN, N_MC={N_MC}, horizon {HORIZON}, "
            f"{MEASURED_TICKS} measured ticks)"
        ),
    )
    save_result("fleet_throughput", text)
    # Acceptance gate: batched fleet ticks must beat the per-stream loop by
    # >= 3x at 64 streams (the ISSUE criterion).
    assert gate_speedup >= GATE_SPEEDUP, (
        f"fleet speedup {gate_speedup:.2f}x at {GATE_STREAMS} streams is "
        f"below the {GATE_SPEEDUP}x gate"
    )
