"""Figure 5 — learning-rate schedule of the AWA re-training.

Regenerates the cyclic cosine trace of Eq. 16 exactly as plotted in the
paper: lr decays from 3e-3 to 3e-5 during even epochs and is held constant
at 3e-5 during odd epochs.
"""

import numpy as np

from repro import nn, optim
from repro.utils.tables import format_table


def test_fig5_awa_learning_rate_schedule(benchmark, save_result):
    lr_max, lr_min, steps_per_epoch, epochs = 3e-3, 3e-5, 100, 4

    def run():
        optimizer = optim.SGD(nn.Linear(2, 1).parameters(), lr=lr_max)
        scheduler = optim.CyclicCosineLR(
            optimizer, lr_max=lr_max, lr_min=lr_min, steps_per_epoch=steps_per_epoch
        )
        return scheduler.trace(steps_per_epoch * epochs)

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    sampled = [(i, trace[i]) for i in range(0, len(trace), 25)]
    text = format_table(
        ["iteration", "learning rate"],
        sampled,
        precision=6,
        title="Fig. 5: AWA re-training learning-rate schedule (sampled every 25 iterations)",
    )
    save_result("fig5_lr_schedule", text)

    trace = np.asarray(trace)
    assert trace[0] == lr_max
    assert np.isclose(trace[steps_per_epoch - 1], lr_min)
    assert np.allclose(trace[steps_per_epoch : 2 * steps_per_epoch], lr_min)
    assert np.isclose(trace[2 * steps_per_epoch], lr_max)
    assert np.all(np.diff(trace[:steps_per_epoch]) <= 1e-12)
