"""Figure 8 — forecasts with 95% prediction intervals on sample road segments.

Regenerates the (ground truth, prediction, lower, upper) series for a
randomly selected sensor of each dataset and checks that the interval covers
a large fraction of the plotted stretch, as in the paper's qualitative plots.
"""

from repro.evaluation import run_interval_trajectory
from repro.utils.tables import format_table


def test_fig8_interval_trajectories(benchmark, save_result, scale):
    def run():
        # One segment per dataset, like the paper's four panels.
        return [
            run_interval_trajectory(scale, dataset_name=name, max_points=60, seed=0)
            for name in scale.datasets
        ]

    panels = benchmark.pedantic(run, rounds=1, iterations=1)
    blocks = []
    for panel in panels:
        rows = [
            (step, panel["ground_truth"][step], panel["prediction"][step],
             panel["lower"][step], panel["upper"][step])
            for step in range(0, len(panel["ground_truth"]), 5)
        ]
        blocks.append(
            format_table(
                ["t", "ground truth", "prediction", "lower", "upper"],
                rows,
                precision=1,
                title=(
                    f"Fig. 8 ({panel['Dataset']}): node {panel['node']}, "
                    f"segment PICP {panel['segment_picp']:.1f}%"
                ),
            )
        )
    save_result("fig8_interval_trajectories", "\n\n".join(blocks))

    assert len(panels) == len(scale.datasets)
    for panel in panels:
        assert panel["segment_picp"] >= 60.0
        assert all(lo <= up for lo, up in zip(panel["lower"], panel["upper"]))
