"""Table I — dataset statistics.

Regenerates the paper's dataset table (nodes / edges / steps per PEMS
dataset) and, for the synthetic stand-ins actually generated at the current
scale, their summary statistics.  The timed body is the synthetic dataset
generation itself.
"""

from repro.evaluation import dataset_statistics, format_rows, scale_from_env


def test_table1_dataset_statistics(benchmark, save_result, scale):
    def run():
        return dataset_statistics(include_synthetic_summary=True, size=scale.dataset_size)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_rows(rows, title="Table I: dataset statistics (paper values + synthetic stand-ins)")
    save_result("table1_datasets", text)
    assert len(rows) == 4
    assert {row["Dataset"] for row in rows} == {"PEMS03", "PEMS04", "PEMS07", "PEMS08"}
