"""Table II — taxonomy of the uncertainty-quantification methods.

Regenerated directly from the method registry so the table can never drift
from the implementation.
"""

from repro.evaluation import format_rows
from repro.uq import METHOD_INFO, available_methods


def test_table2_method_taxonomy(benchmark, save_result):
    def run():
        return [
            {
                "Method": name,
                "Paradigm": METHOD_INFO[name].paradigm,
                "Uncertainty Type": METHOD_INFO[name].uncertainty_type,
            }
            for name in available_methods(paper_only=True)
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_rows(rows, title="Table II: uncertainty quantification methods")
    save_result("table2_methods", text)
    assert len(rows) == 10
    deepstuq = next(row for row in rows if row["Method"] == "DeepSTUQ")
    assert deepstuq["Paradigm"] == "Bayesian + ensembling"
    assert deepstuq["Uncertainty Type"] == "aleatoric + epistemic"
