"""Table V — ablation of AWA re-training.

The same pre-trained model is evaluated before and after AWA re-training on
every dataset; the paper reports a consistent (small) improvement of the
point metrics after AWA.
"""

import numpy as np

from repro.evaluation import format_rows, run_awa_ablation


def test_table5_awa_ablation(benchmark, save_result, scale):
    rows = benchmark.pedantic(lambda: run_awa_ablation(scale), rounds=1, iterations=1)
    text = format_rows(rows, title="Table V: ablation study on AWA re-training")
    save_result("table5_awa_ablation", text)

    assert len(rows) == 3 * len(scale.datasets)
    assert all(np.isfinite(row["No AWA"]) and np.isfinite(row["AWA"]) for row in rows)
    # Shape check: averaged over datasets, AWA should not degrade MAE by more
    # than a small margin (the paper reports improvements).
    mae_rows = [row for row in rows if row["Metric"] == "MAE"]
    before = np.mean([row["No AWA"] for row in mae_rows])
    after = np.mean([row["AWA"] for row in mae_rows])
    assert after <= before * 1.15
