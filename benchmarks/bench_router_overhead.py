"""Routing overhead — multi-deployment pool vs the single-model fast path.

The ModelPool/Router redesign must be free when it is not used and nearly
free when it is.  Two separable costs:

* **routing machinery** — the router decision per request, the per-batch
  route-table snapshot, deployment-namespaced cache keys, per-deployment
  stats.  Measured by routing every request through a :class:`KeyRouter` /
  :class:`TrafficSplitRouter` onto a *single* deployment, so the model work
  is identical to the legacy path.  Acceptance gate: <10% end-to-end
  throughput overhead.
* **multi-model serving** — routes resolving to *different* deployments
  split each micro-batch into one model pass per deployment, and a shadow
  mirror runs the candidate on every window.  Both are the point of the
  feature, not overhead; they are reported for context and bounded loosely.
"""

import time

import numpy as np

from repro.core.inference import PredictionResult
from repro.evaluation import format_rows
from repro.serving import InferenceServer, KeyRouter, ShadowRouter, TrafficSplitRouter

HISTORY, NODES, HORIZON = 12, 64, 4
NUM_WINDOWS = 256
REPEATS = 7
GATE_OVERHEAD = 0.10  # routed-to-one-deployment paths vs single-model


def _predict_fn(weight):
    """A model pass heavy enough to resemble real serving (GIL-releasing math)."""

    def predict(windows):
        hidden = windows
        for _ in range(6):
            hidden = np.tanh(hidden @ weight)       # (B, H, N)
        mean = np.repeat(hidden[:, -1:, :], HORIZON, axis=1)
        return PredictionResult(
            mean=mean,
            aleatoric_var=np.abs(mean) * 0.1 + 0.01,
            epistemic_var=np.zeros_like(mean),
        )

    return predict


def _time_serving(server, windows, keys=None):
    def once():
        start = time.perf_counter()
        server.predict_many(windows, timeout=60.0, keys=keys)
        return time.perf_counter() - start

    with server:
        once()  # warm-up
        return min(once() for _ in range(REPEATS))


def run_router_overhead():
    rng = np.random.default_rng(0)
    weight = rng.normal(size=(NODES, NODES)) * 0.1
    windows = list(rng.uniform(0.0, 1.0, size=(NUM_WINDOWS, HISTORY, NODES)))
    regions = ["north", "south", "east"]
    keys = [regions[index % 3] for index in range(NUM_WINDOWS)]
    server_kwargs = dict(max_batch_size=32, max_wait_ms=1.0, cache_size=0)

    def single():
        return InferenceServer(_predict_fn(weight), model_version="bench", **server_kwargs)

    def keyed_one_deployment():
        # Every key resolves to the same deployment: identical model work,
        # full routing machinery — the pure-overhead measurement.
        server = InferenceServer(
            router=KeyRouter({region: "main" for region in regions}), **server_kwargs
        )
        server.deploy("main", _predict_fn(weight))
        return server

    def split_one_deployment():
        server = InferenceServer(
            router=TrafficSplitRouter({"main": 0.9, None: 0.1}), **server_kwargs
        )
        server.deploy("main", _predict_fn(weight))
        return server

    def keyed_three_deployments():
        server = InferenceServer(
            router=KeyRouter({region: region for region in regions}), **server_kwargs
        )
        for region in regions:
            server.deploy(region, _predict_fn(weight))
        return server

    def shadow():
        server = InferenceServer(router=ShadowRouter(shadows=["cand"]), **server_kwargs)
        server.deploy("main", _predict_fn(weight))
        server.deploy("cand", _predict_fn(weight))
        return server

    cases = [
        ("single-model (legacy path)", single, None, True),
        ("key-routed, one deployment", keyed_one_deployment, keys, True),
        ("split-routed, one deployment", split_one_deployment, None, True),
        ("key-routed, three deployments", keyed_three_deployments, keys, False),
        ("shadow-mirrored candidate", shadow, None, False),
    ]
    base = None
    rows, timings = [], {}
    for label, build, route_keys, gated in cases:
        elapsed = _time_serving(build(), windows, keys=route_keys)
        timings[label] = elapsed
        if base is None:
            base = elapsed
        rows.append(
            {
                "serving path": label,
                "gated": "yes" if gated else "context",
                "time (ms)": round(elapsed * 1000.0, 2),
                "windows/s": round(NUM_WINDOWS / elapsed, 1),
                "overhead vs single": f"{(elapsed / base - 1.0) * 100.0:+.1f}%",
            }
        )
    return rows, timings


def _gates_pass(timings):
    base = timings["single-model (legacy path)"]
    return (
        timings["key-routed, one deployment"] <= base * (1.0 + GATE_OVERHEAD)
        and timings["split-routed, one deployment"] <= base * (1.0 + GATE_OVERHEAD)
    )


def test_router_overhead(benchmark, save_result):
    rows, timings = benchmark.pedantic(run_router_overhead, rounds=1, iterations=1)
    if not _gates_pass(timings):
        # Sub-15ms wall timings occasionally eat a scheduler hiccup; one
        # clean re-measurement separates real regressions from noise.
        rows, timings = run_router_overhead()
    save_result(
        "router_overhead",
        format_rows(
            rows,
            title=(
                f"Routing overhead ({NUM_WINDOWS} windows, micro-batch 32, "
                f"min of {REPEATS} runs)"
            ),
        ),
    )
    base = timings["single-model (legacy path)"]
    # Acceptance gate: routing machinery costs <10% end-to-end.
    assert timings["key-routed, one deployment"] <= base * (1.0 + GATE_OVERHEAD), timings
    assert timings["split-routed, one deployment"] <= base * (1.0 + GATE_OVERHEAD), timings
    # Multi-model work is the feature, not overhead; bound it loosely so a
    # pathological regression (e.g. per-window model passes) still fails.
    assert timings["key-routed, three deployments"] <= base * 2.0, timings
    assert timings["shadow-mirrored candidate"] <= base * 3.0, timings
