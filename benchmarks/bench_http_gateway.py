"""HTTP gateway throughput — closed-loop load over the full wire path.

The gateway's claim: putting a stdlib ``ThreadingHTTPServer`` front end on
the micro-batched :class:`~repro.serving.InferenceServer` costs little enough
that a single process sustains real serving traffic — concurrent HTTP clients
coalesce into batched model calls exactly like in-process ``submit_many``
traffic.  This benchmark measures exactly that, end to end: seeded
closed-loop workers (:class:`~repro.gateway.LoadGenerator`) POST random
``/predict`` windows over real loopback sockets and block for each JSON
response, so offered load tracks service capacity.

Acceptance gates (the ISSUE criteria):

* sustained throughput **>= 500 req/s** at the gate worker count;
* **zero dropped** requests and **zero error** responses across every run;
* p99 latency reported (and sanity-bounded) for every worker count.

A ``/metrics`` scrape cross-checks the server-side request count against the
client-side report, and the parsed scrape doubles as a formatting regression
test.  Results land in ``benchmarks/results/http_gateway.txt``.
"""

import urllib.request

import numpy as np

from repro.core.inference import PredictionResult
from repro.evaluation import format_rows
from repro.gateway import Gateway, LoadGenerator, parse_prometheus_text
from repro.serving import InferenceServer

HISTORY, NODES, HORIZON = 12, 4, 4
WORKER_COUNTS = (1, 4, 8)
GATE_WORKERS = 4              # the >= 500 req/s criterion applies here
GATE_REQ_S = 500.0
GATE_P99_MS = 250.0           # sanity bound; loopback p99 runs ~10-30 ms
REQUESTS_PER_WORKER = 150


def _predict_fn():
    """A cheap deterministic model: measures the HTTP + batching path itself."""

    def predict(windows: np.ndarray) -> PredictionResult:
        mean = np.repeat(
            windows.mean(axis=1, keepdims=True), HORIZON, axis=1
        )
        return PredictionResult(
            mean=mean,
            aleatoric_var=np.ones_like(mean),
            epistemic_var=np.zeros_like(mean),
        )

    return predict


def run_http_gateway():
    server = InferenceServer(
        max_batch_size=32, max_wait_ms=0.5, cache_size=0, num_workers=4
    )
    server.deploy("bench", _predict_fn(), version="v0")
    gateway = Gateway(server)
    rows, gate_report, scrape_total = [], None, None
    with gateway:
        for workers in WORKER_COUNTS:
            loadgen = LoadGenerator(
                gateway.url,
                num_workers=workers,
                seed=workers,
                history=HISTORY,
                nodes=NODES,
            )
            report = loadgen.run(total_requests=workers * REQUESTS_PER_WORKER)
            if workers == GATE_WORKERS:
                gate_report = report
            rows.append(
                {
                    "workers": workers,
                    "requests": report.requests,
                    "req/s": round(report.throughput, 1),
                    "p50 (ms)": round(report.p50_ms, 2),
                    "p99 (ms)": round(report.p99_ms, 2),
                    "ok": report.ok,
                    "errors": report.http_errors,
                    "dropped": report.dropped,
                }
            )
        with urllib.request.urlopen(gateway.url + "/metrics", timeout=10) as scrape:
            series = parse_prometheus_text(scrape.read().decode("utf-8"))
        scrape_total = series["gateway_requests_total"][
            (("code", "200"), ("route", "/predict"))
        ]
    return rows, gate_report, scrape_total


def test_http_gateway_throughput(benchmark, save_result):
    rows, gate_report, scrape_total = benchmark.pedantic(
        run_http_gateway, rounds=1, iterations=1
    )
    text = format_rows(
        rows,
        title=(
            "HTTP gateway closed-loop throughput "
            f"(ThreadingHTTPServer + micro-batching, {REQUESTS_PER_WORKER} "
            "req/worker, loopback)"
        ),
    )
    save_result("http_gateway", text)

    # Zero-drop / zero-error gates hold at every worker count.
    for row in rows:
        assert row["dropped"] == 0, f"{row['workers']} workers dropped requests"
        assert row["errors"] == 0, f"{row['workers']} workers saw error responses"
        assert row["ok"] == row["requests"]
        assert np.isfinite(row["p99 (ms)"]) and row["p99 (ms)"] < GATE_P99_MS

    # Throughput gate at the gate worker count.
    assert gate_report.throughput >= GATE_REQ_S, (
        f"{gate_report.throughput:.1f} req/s at {GATE_WORKERS} workers is "
        f"below the {GATE_REQ_S:.0f} req/s gate"
    )

    # The server-side scrape agrees with the client-side report: every sent
    # request was counted exactly once as a 200 on /predict.
    total_requests = sum(row["requests"] for row in rows)
    assert scrape_total == float(total_requests)
