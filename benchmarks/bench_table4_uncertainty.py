"""Table IV — uncertainty-quantification comparison.

Trains every UQ method of the paper's Table II on every dataset and reports
MAE / RMSE / MAPE / MNLL / PICP / MPIW on the test split.

Shape expectations checked against the paper's findings:

* epistemic-only methods (MCDO, FGE) drastically under-cover;
* methods modelling aleatoric uncertainty (MVE, TS, Combined, Conformal,
  CFRNN, DeepSTUQ) reach far higher coverage;
* DeepSTUQ's coverage is at or near the best.
"""

import numpy as np

from repro.evaluation import format_method_table, run_uncertainty_quantification


def test_table4_uncertainty_quantification(benchmark, save_result, scale):
    rows = benchmark.pedantic(
        lambda: run_uncertainty_quantification(scale), rounds=1, iterations=1
    )
    text = format_method_table(
        rows,
        metrics=("MAE", "RMSE", "MAPE", "MNLL", "PICP", "MPIW"),
        row_key="Method",
        title="Table IV: uncertainty quantification results",
    )
    save_result("table4_uncertainty", text)

    methods = {row["Method"] for row in rows}
    assert {"Point", "Quantile", "MVE", "MCDO", "Combined", "TS", "FGE", "Conformal",
            "CFRNN", "DeepSTUQ"}.issubset(methods)

    def mean_metric(method, metric):
        values = [row[metric] for row in rows if row["Method"] == method]
        return float(np.mean(values))

    # Epistemic-only methods under-cover; aleatoric-aware methods cover well.
    for epistemic_only in ("MCDO", "FGE"):
        assert mean_metric(epistemic_only, "PICP") < 90.0
    for aleatoric_aware in ("MVE", "Combined", "DeepSTUQ"):
        assert mean_metric(aleatoric_aware, "PICP") > mean_metric("MCDO", "PICP")
    # DeepSTUQ should be within a few points of the best coverage.
    best_picp = max(
        mean_metric(method, "PICP")
        for method in methods
        if np.isfinite(mean_metric(method, "PICP"))
    )
    assert mean_metric("DeepSTUQ", "PICP") >= best_picp - 10.0
