"""Figure 10 — aleatoric and epistemic uncertainty per forecast horizon.

Regenerates the mean aleatoric / epistemic standard deviation at each
forecast step for every dataset.  Expected shape (paper Fig. 10): both
components grow (weakly) as the horizon extends — long-term forecasts are
less reliable than short-term ones.
"""

import numpy as np

from repro.evaluation import format_figure_series, run_horizon_uncertainty_analysis


def test_fig10_uncertainty_per_horizon(benchmark, save_result, scale):
    records = benchmark.pedantic(
        lambda: run_horizon_uncertainty_analysis(scale), rounds=1, iterations=1
    )
    text = format_figure_series(
        records,
        x_key="horizon_minutes",
        series_keys=("aleatoric", "epistemic"),
        label_keys=("Dataset",),
        title="Fig. 10: uncertainty vs forecast horizon",
    )
    save_result("fig10_horizon_uncertainty", text)

    assert len(records) == len(scale.datasets)
    for record in records:
        aleatoric = np.asarray(record["aleatoric"])
        assert len(aleatoric) == scale.horizon
        assert np.all(aleatoric > 0.0)
        # Weak growth check: the last third should not be smaller than the
        # first third by more than ~15% (at bench scale the variance head is
        # only lightly trained, so the growth trend is noisy).
        third = max(1, len(aleatoric) // 3)
        assert aleatoric[-third:].mean() >= aleatoric[:third].mean() * 0.85
