"""Figure 7 — point-prediction metrics per forecast horizon.

Regenerates the MAE / RMSE / MAPE curves over the 5-60 minute horizons for
DeepSTUQ (solid lines in the paper) and the AGCRN baseline (dashed lines).
The expected shape: errors grow with the horizon, and DeepSTUQ tracks or
improves on AGCRN at each step.
"""

import numpy as np

from repro.evaluation import format_figure_series, run_horizon_point_analysis


def test_fig7_point_metrics_per_horizon(benchmark, save_result, scale):
    records = benchmark.pedantic(
        lambda: run_horizon_point_analysis(scale), rounds=1, iterations=1
    )
    text = format_figure_series(
        records,
        x_key="horizon_minutes",
        series_keys=("MAE", "RMSE", "MAPE"),
        label_keys=("Dataset", "Model"),
        title="Fig. 7: point prediction vs forecast horizon (DeepSTUQ vs AGCRN)",
    )
    save_result("fig7_horizon_point", text)

    assert len(records) == 2 * len(scale.datasets)
    for record in records:
        mae_curve = np.asarray(record["MAE"])
        assert len(mae_curve) == scale.horizon
        # Errors should grow (weakly) with the horizon: compare last vs first thirds.
        third = max(1, len(mae_curve) // 3)
        assert mae_curve[-third:].mean() >= mae_curve[:third].mean() * 0.9
