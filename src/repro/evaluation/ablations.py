"""Ablation runners: Tables V / VI and Fig. 11, plus extra design-choice ablations.

* :func:`run_awa_ablation` — point metrics of the same pre-trained model
  before vs after AWA re-training (Table V).
* :func:`run_calibration_ablation` — uncertainty metrics of the same model
  before vs after temperature-scaling calibration (Table VI).
* :func:`run_mc_sample_ablation` — point metrics as a function of the number
  of Monte-Carlo samples (Fig. 11).
* :func:`run_lambda_ablation` — sensitivity to the combined-loss weight
  (extension ablation listed in DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.awa import AWAConfig, AWATrainer
from repro.core.pipeline import DeepSTUQConfig, DeepSTUQPipeline
from repro.evaluation.config import ExperimentScale, make_awa_config, make_training_config
from repro.evaluation.datasets import evaluation_windows, load_benchmark_splits
from repro.metrics import point_metrics, uncertainty_metrics


def _fit_pipeline(
    dataset_name: str,
    scale: ExperimentScale,
    use_awa: bool,
    use_calibration: bool,
    lambda_weight: Optional[float] = None,
):
    """Train a DeepSTUQ pipeline variant and return (pipeline, test windows)."""
    train, val, test = load_benchmark_splits(dataset_name, scale)
    config = make_training_config(scale, dataset_name)
    if lambda_weight is not None:
        config.lambda_weight = lambda_weight
    pipeline_config = DeepSTUQConfig(
        training=config,
        awa=make_awa_config(scale),
        use_awa=use_awa,
        use_calibration=use_calibration,
    )
    pipeline = DeepSTUQPipeline(train.num_nodes, pipeline_config)
    pipeline.fit(train, val)
    inputs, targets = evaluation_windows(test, scale)
    return pipeline, inputs, targets


def run_awa_ablation(scale: ExperimentScale, datasets: Optional[Sequence[str]] = None) -> List[Dict]:
    """Table V: point metrics of the pre-trained model before and after AWA.

    A single pipeline is pre-trained; its weights are snapshotted, evaluated,
    then AWA re-training runs and the same model is evaluated again, exactly
    mirroring the paper's "No AWA" vs "AWA" comparison.
    """
    datasets = datasets if datasets is not None else scale.datasets
    rows: List[Dict] = []
    for dataset_name in datasets:
        train, val, test = load_benchmark_splits(dataset_name, scale)
        config = make_training_config(scale, dataset_name)
        pipeline_config = DeepSTUQConfig(
            training=config, awa=make_awa_config(scale), use_awa=False, use_calibration=False
        )
        pipeline = DeepSTUQPipeline(train.num_nodes, pipeline_config)
        pipeline.fit(train, val)
        inputs, targets = evaluation_windows(test, scale)

        before = point_metrics(pipeline.predict(inputs).mean, targets)
        awa = AWATrainer(pipeline.trainer, make_awa_config(scale))
        awa.retrain(train)
        after = point_metrics(pipeline.predict(inputs).mean, targets)

        for metric in ("MAE", "RMSE", "MAPE"):
            rows.append(
                {
                    "Dataset": dataset_name,
                    "Metric": metric,
                    "No AWA": before[metric],
                    "AWA": after[metric],
                }
            )
    return rows


def run_calibration_ablation(
    scale: ExperimentScale, datasets: Optional[Sequence[str]] = None
) -> List[Dict]:
    """Table VI: MNLL / PICP / MPIW before and after temperature calibration."""
    datasets = datasets if datasets is not None else scale.datasets
    rows: List[Dict] = []
    for dataset_name in datasets:
        train, val, test = load_benchmark_splits(dataset_name, scale)
        config = make_training_config(scale, dataset_name)
        pipeline_config = DeepSTUQConfig(
            training=config, awa=make_awa_config(scale), use_awa=True, use_calibration=False
        )
        pipeline = DeepSTUQPipeline(train.num_nodes, pipeline_config)
        pipeline.fit(train, val)
        inputs, targets = evaluation_windows(test, scale)

        uncalibrated = pipeline.predict(inputs)
        before = uncertainty_metrics(targets, uncalibrated.mean, uncalibrated.std)
        pipeline.calibrate(val)
        calibrated = pipeline.predict(inputs)
        after = uncertainty_metrics(targets, calibrated.mean, calibrated.std)

        for metric in ("MNLL", "PICP", "MPIW"):
            rows.append(
                {
                    "Dataset": dataset_name,
                    "Metric": metric,
                    "No Calibration": before[metric],
                    "Calibration": after[metric],
                    "Temperature": pipeline.calibrator.temperature,
                }
            )
    return rows


def run_mc_sample_ablation(
    scale: ExperimentScale,
    dataset_name: str = "PEMS08",
    sample_counts: Sequence[int] = (1, 3, 5, 10, 15),
) -> List[Dict]:
    """Fig. 11: point metrics of DeepSTUQ vs the number of MC samples."""
    pipeline, inputs, targets = _fit_pipeline(dataset_name, scale, use_awa=True, use_calibration=True)
    rows: List[Dict] = []
    for count in sample_counts:
        result = pipeline.predict(inputs, num_samples=count, rng=np.random.default_rng(1234))
        metrics = point_metrics(result.mean, targets)
        rows.append(
            {
                "Dataset": dataset_name,
                "MC samples": count,
                "MAE": metrics["MAE"],
                "RMSE": metrics["RMSE"],
                "MAPE": metrics["MAPE"],
            }
        )
    return rows


def run_lambda_ablation(
    scale: ExperimentScale,
    dataset_name: str = "PEMS08",
    lambda_values: Sequence[float] = (0.01, 0.1, 0.5, 1.0),
) -> List[Dict]:
    """Extension ablation: sensitivity of DeepSTUQ to the combined-loss weight."""
    rows: List[Dict] = []
    for lambda_weight in lambda_values:
        pipeline, inputs, targets = _fit_pipeline(
            dataset_name, scale, use_awa=False, use_calibration=True, lambda_weight=lambda_weight
        )
        result = pipeline.predict(inputs)
        point = point_metrics(result.mean, targets)
        interval = uncertainty_metrics(targets, result.mean, result.std)
        rows.append(
            {
                "Dataset": dataset_name,
                "lambda": lambda_weight,
                "MAE": point["MAE"],
                "MNLL": interval["MNLL"],
                "PICP": interval["PICP"],
            }
        )
    return rows
