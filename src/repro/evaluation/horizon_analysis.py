"""Per-horizon analyses: Fig. 7 (point metrics) and Fig. 10 (uncertainty)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.losses import point_l1_loss
from repro.core.pipeline import DeepSTUQConfig, DeepSTUQPipeline
from repro.core.trainer import Trainer
from repro.evaluation.config import ExperimentScale, make_awa_config, make_training_config
from repro.evaluation.datasets import evaluation_windows, load_benchmark_splits
from repro.metrics import per_horizon_metrics, per_horizon_uncertainty
from repro.models import AGCRN


def run_horizon_point_analysis(
    scale: ExperimentScale, datasets: Optional[Sequence[str]] = None
) -> List[Dict]:
    """Fig. 7: MAE / RMSE / MAPE per forecast horizon, DeepSTUQ vs AGCRN.

    Returns one record per (dataset, model) holding the metric curves.
    """
    datasets = datasets if datasets is not None else scale.datasets
    records: List[Dict] = []
    for dataset_name in datasets:
        train, val, test = load_benchmark_splits(dataset_name, scale)
        config = make_training_config(scale, dataset_name)
        inputs, targets = evaluation_windows(test, scale)

        # AGCRN point baseline (dashed lines in Fig. 7).
        agcrn = AGCRN(
            train.num_nodes,
            history=config.history,
            horizon=config.horizon,
            hidden_dim=config.hidden_dim,
            embed_dim=config.embed_dim,
            encoder_dropout=config.encoder_dropout,
            decoder_dropout=config.decoder_dropout,
            heads=("mean",),
            rng=np.random.default_rng(config.seed),
        )
        trainer = Trainer(agcrn, config, lambda output, target: point_l1_loss(output, target))
        trainer.fit(train)
        agcrn_prediction = trainer.scaler.inverse_transform(
            agcrn.predict(trainer.scaler.transform(inputs))
        )
        records.append(
            {
                "Dataset": dataset_name,
                "Model": "AGCRN",
                **per_horizon_metrics(agcrn_prediction, targets, interval_minutes=5),
            }
        )

        # DeepSTUQ (solid lines in Fig. 7).
        pipeline_config = DeepSTUQConfig(training=config, awa=make_awa_config(scale))
        pipeline = DeepSTUQPipeline(train.num_nodes, pipeline_config)
        pipeline.fit(train, val)
        result = pipeline.predict(inputs)
        records.append(
            {
                "Dataset": dataset_name,
                "Model": "DeepSTUQ",
                **per_horizon_metrics(result.mean, targets, interval_minutes=5),
            }
        )
    return records


def run_horizon_uncertainty_analysis(
    scale: ExperimentScale, datasets: Optional[Sequence[str]] = None
) -> List[Dict]:
    """Fig. 10: mean aleatoric / epistemic uncertainty per forecast horizon."""
    datasets = datasets if datasets is not None else scale.datasets
    records: List[Dict] = []
    for dataset_name in datasets:
        train, val, test = load_benchmark_splits(dataset_name, scale)
        config = make_training_config(scale, dataset_name)
        pipeline_config = DeepSTUQConfig(training=config, awa=make_awa_config(scale))
        pipeline = DeepSTUQPipeline(train.num_nodes, pipeline_config)
        pipeline.fit(train, val)
        inputs, _ = evaluation_windows(test, scale)
        result = pipeline.predict(inputs)
        curves = per_horizon_uncertainty(
            result.aleatoric_std, result.epistemic_std, interval_minutes=5
        )
        records.append({"Dataset": dataset_name, **curves})
    return records
