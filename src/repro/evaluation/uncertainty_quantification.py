"""Table IV runner: uncertainty-quantification comparison.

Every registered UQ method (Table II) is trained on the training split,
calibrated on the validation split where applicable, and scored on the test
split with the six Table IV metrics: MAE, RMSE, MAPE, MNLL, PICP, MPIW.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.awa import AWAConfig
from repro.evaluation.config import ExperimentScale, make_awa_config, make_training_config
from repro.evaluation.datasets import evaluation_windows, load_benchmark_splits
from repro.metrics import point_metrics, uncertainty_metrics
from repro.uq import available_methods, create_method
from repro.uq.base import UQMethod


def evaluate_uq_method(
    method: UQMethod, inputs: np.ndarray, targets: np.ndarray
) -> Dict[str, float]:
    """Score a fitted UQ method on test windows with the Table IV metrics."""
    result = method.predict(inputs)
    metrics = point_metrics(result.mean, targets)
    if method.uncertainty_type == "no":
        metrics.update({"MNLL": float("nan"), "PICP": float("nan"), "MPIW": float("nan")})
        return metrics
    lower, upper = result.interval()
    bundle = uncertainty_metrics(targets, result.mean, result.std, lower=lower, upper=upper)
    if not method.gaussian_likelihood:
        bundle["MNLL"] = float("nan")
    metrics.update(bundle)
    return metrics


def _method_kwargs(name: str, scale: ExperimentScale) -> Dict:
    """Per-method constructor arguments derived from the experiment scale."""
    if name == "DeepSTUQ":
        return {"awa_config": make_awa_config(scale)}
    if name == "FGE":
        return {"num_snapshots": max(2, scale.awa_epochs // 2), "cycle_epochs": 1}
    if name == "DeepEnsemble":
        return {"num_members": 3}
    return {}


def run_uncertainty_quantification(
    scale: ExperimentScale,
    datasets: Optional[Sequence[str]] = None,
    method_names: Optional[Sequence[str]] = None,
    include_extensions: bool = False,
) -> List[Dict]:
    """Regenerate the rows of Table IV.

    Returns one row dict per (dataset, method) pair with all six metrics.
    """
    datasets = datasets if datasets is not None else scale.datasets
    if method_names is None:
        method_names = available_methods(paper_only=not include_extensions)
    rows: List[Dict] = []
    for dataset_name in datasets:
        train, val, test = load_benchmark_splits(dataset_name, scale)
        config = make_training_config(scale, dataset_name)
        inputs, targets = evaluation_windows(test, scale)
        for method_name in method_names:
            method = create_method(
                method_name,
                train.num_nodes,
                config=config,
                **_method_kwargs(method_name, scale),
            )
            method.fit(train, val)
            metrics = evaluate_uq_method(method, inputs, targets)
            row = {"Dataset": dataset_name, "Method": method_name}
            row.update(metrics)
            rows.append(row)
    return rows


def best_method_per_dataset(rows: Sequence[Dict], metric: str = "MAE", minimize: bool = True) -> Dict[str, str]:
    """Identify the winning method per dataset for a given metric (ignoring NaNs)."""
    winners: Dict[str, str] = {}
    for dataset in {row["Dataset"] for row in rows}:
        candidates = [
            row for row in rows if row["Dataset"] == dataset and np.isfinite(row.get(metric, float("nan")))
        ]
        if not candidates:
            continue
        chosen = min(candidates, key=lambda r: r[metric]) if minimize else max(candidates, key=lambda r: r[metric])
        winners[dataset] = chosen["Method"]
    return winners
