"""Table III runner: point-prediction comparison of the baseline models.

For every (dataset, model) pair a model is trained with the shared training
configuration and evaluated with MAE / RMSE / MAPE on the test split.  The
model zoo matches the columns of paper Table III; ``DeepSTUQ/S`` and
``DeepSTUQ`` are handled by the uncertainty harness and merged by the
benchmark script.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.losses import point_l1_loss
from repro.core.trainer import Trainer, TrainingConfig
from repro.data.datasets import TrafficData
from repro.evaluation.config import ExperimentScale, make_training_config
from repro.evaluation.datasets import evaluation_windows, load_benchmark_splits
from repro.metrics import point_metrics
from repro.models import AGCRN, ASTGCN, DCRNN, STFGNN, STGCN, STSGCN, GraphWaveNet
from repro.models.base import ForecastModel

#: Columns of paper Table III handled by this runner (in paper order).
POINT_MODEL_NAMES = ("DCRNN", "ST-GCN", "GWN", "ASTGCN", "STSGCN", "STFGNN", "AGCRN")


def build_point_model(
    name: str,
    num_nodes: int,
    adjacency: np.ndarray,
    config: TrainingConfig,
    rng: Optional[np.random.Generator] = None,
) -> ForecastModel:
    """Instantiate one of the Table III baselines with shared dimensions."""
    rng = rng if rng is not None else np.random.default_rng(config.seed)
    common = dict(history=config.history, horizon=config.horizon, rng=rng)
    if name == "DCRNN":
        return DCRNN(num_nodes, adjacency, hidden_dim=config.hidden_dim, **common)
    if name == "ST-GCN":
        return STGCN(num_nodes, adjacency, hidden_channels=config.hidden_dim, **common)
    if name == "GWN":
        return GraphWaveNet(
            num_nodes, adjacency, channels=config.hidden_dim, embed_dim=config.embed_dim, **common
        )
    if name == "ASTGCN":
        return ASTGCN(num_nodes, adjacency, hidden_channels=config.hidden_dim, **common)
    if name == "STSGCN":
        return STSGCN(num_nodes, adjacency, hidden_channels=config.hidden_dim, **common)
    if name == "STFGNN":
        return STFGNN(num_nodes, adjacency, hidden_channels=config.hidden_dim, **common)
    if name == "AGCRN":
        return AGCRN(
            num_nodes,
            history=config.history,
            horizon=config.horizon,
            hidden_dim=config.hidden_dim,
            embed_dim=config.embed_dim,
            encoder_dropout=config.encoder_dropout,
            decoder_dropout=config.decoder_dropout,
            heads=("mean",),
            rng=rng,
        )
    raise KeyError(f"unknown point model {name!r}; available: {POINT_MODEL_NAMES}")


def train_and_evaluate_point_model(
    name: str,
    train_data: TrafficData,
    val_data: TrafficData,
    test_data: TrafficData,
    config: TrainingConfig,
    scale: ExperimentScale,
) -> Dict[str, float]:
    """Train one baseline and return its test MAE / RMSE / MAPE."""
    adjacency = train_data.network.adjacency_matrix()
    model = build_point_model(name, train_data.num_nodes, adjacency, config)
    trainer = Trainer(model, config, lambda output, target: point_l1_loss(output, target))
    trainer.fit(train_data)
    inputs, targets = evaluation_windows(test_data, scale)
    prediction = trainer.scaler.inverse_transform(model.predict(trainer.scaler.transform(inputs)))
    return point_metrics(prediction, targets)


def run_point_prediction(
    scale: ExperimentScale,
    datasets: Optional[Sequence[str]] = None,
    model_names: Sequence[str] = POINT_MODEL_NAMES,
) -> List[Dict]:
    """Regenerate the rows of Table III (one row per dataset/model/metric bundle)."""
    datasets = datasets if datasets is not None else scale.datasets
    rows: List[Dict] = []
    for dataset_name in datasets:
        train, val, test = load_benchmark_splits(dataset_name, scale)
        config = make_training_config(scale, dataset_name)
        for model_name in model_names:
            metrics = train_and_evaluate_point_model(model_name, train, val, test, config, scale)
            rows.append(
                {
                    "Dataset": dataset_name,
                    "Model": model_name,
                    "MAE": metrics["MAE"],
                    "RMSE": metrics["RMSE"],
                    "MAPE": metrics["MAPE"],
                }
            )
    return rows
