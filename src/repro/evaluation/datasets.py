"""Dataset helpers for the experiment harness (Table I + shared splits)."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.data import SlidingWindowDataset, TrafficData, load_pems, train_val_test_split
from repro.data.pems import DATASET_SPECS
from repro.evaluation.config import ExperimentScale


def dataset_statistics(include_synthetic_summary: bool = False, size: str = "tiny") -> List[Dict]:
    """Rows of paper Table I: nodes / edges / steps per dataset.

    With ``include_synthetic_summary=True`` each row also carries the
    statistics of the synthetic stand-in actually generated at ``size``.
    """
    rows = []
    for name, spec in DATASET_SPECS.items():
        row = {
            "Dataset": name,
            "# of Nodes": spec.num_nodes,
            "# of Edges": spec.num_edges,
            "# of Steps": spec.num_steps,
        }
        if include_synthetic_summary:
            traffic = load_pems(name, size=size)
            summary = traffic.summary()
            row.update(
                {
                    "synthetic nodes": summary["num_nodes"],
                    "synthetic edges": summary["num_edges"],
                    "synthetic steps": summary["num_steps"],
                    "mean flow": round(summary["mean_flow"], 1),
                }
            )
        rows.append(row)
    return rows


def load_benchmark_splits(
    dataset_name: str, scale: ExperimentScale
) -> Tuple[TrafficData, TrafficData, TrafficData]:
    """Load a dataset at the scale's size preset and split it 6:2:2."""
    traffic = load_pems(dataset_name, size=scale.dataset_size)
    return train_val_test_split(traffic)


def evaluation_windows(
    data: TrafficData, scale: ExperimentScale
) -> Tuple[np.ndarray, np.ndarray]:
    """Test windows (inputs, targets), capped at ``scale.max_eval_windows``."""
    dataset = SlidingWindowDataset(data, history=scale.history, horizon=scale.horizon)
    count = min(len(dataset), scale.max_eval_windows)
    inputs = np.stack([dataset[i][0] for i in range(count)])
    targets = np.stack([dataset[i][1] for i in range(count)])
    return inputs, targets
