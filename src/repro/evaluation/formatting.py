"""Text formatting of experiment results (what the benchmarks print)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.utils.tables import format_table


def format_rows(rows: Sequence[Dict], title: str = "", precision: int = 2) -> str:
    """Render a list of homogeneous row dicts as a fixed-width text table."""
    if not rows:
        return title or "(no rows)"
    headers = list(rows[0].keys())
    body = [[row.get(header, "") for header in headers] for row in rows]
    return format_table(headers, body, precision=precision, title=title)


def format_method_table(
    rows: Sequence[Dict],
    metrics: Sequence[str],
    row_key: str = "Method",
    group_key: str = "Dataset",
    title: str = "",
    precision: int = 2,
) -> str:
    """Pivot (dataset, method, metrics...) rows into the paper's table layout.

    One block per dataset; one column per method; one line per metric —
    matching the structure of Tables III and IV.
    """
    if not rows:
        return title or "(no rows)"
    datasets = sorted({row[group_key] for row in rows})
    methods = list(dict.fromkeys(row[row_key] for row in rows))
    blocks: List[str] = [title] if title else []
    for dataset in datasets:
        subset = {row[row_key]: row for row in rows if row[group_key] == dataset}
        table_rows = []
        for metric in metrics:
            table_rows.append([metric] + [subset.get(m, {}).get(metric, float("nan")) for m in methods])
        blocks.append(
            format_table(["Metric"] + methods, table_rows, precision=precision, title=str(dataset))
        )
    return "\n\n".join(blocks)


def format_figure_series(
    records: Sequence[Dict],
    x_key: str,
    series_keys: Sequence[str],
    label_keys: Sequence[str] = ("Dataset",),
    title: str = "",
    precision: int = 2,
) -> str:
    """Render figure data (one record per curve) as aligned text series."""
    blocks: List[str] = [title] if title else []
    for record in records:
        label = ", ".join(str(record[k]) for k in label_keys if k in record)
        headers = [x_key] + list(series_keys)
        xs = record[x_key]
        rows = []
        for index, x in enumerate(xs):
            rows.append([x] + [record[key][index] for key in series_keys])
        blocks.append(format_table(headers, rows, precision=precision, title=label))
    return "\n\n".join(blocks)
