"""Trajectory-level analyses: Fig. 8 (interval coverage over time) and
Fig. 9 (uncertainty decomposition over time) on a single road segment."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.pipeline import DeepSTUQConfig, DeepSTUQPipeline
from repro.evaluation.config import ExperimentScale, make_awa_config, make_training_config
from repro.evaluation.datasets import evaluation_windows, load_benchmark_splits
from repro.metrics import picp


def _fit_pipeline(dataset_name: str, scale: ExperimentScale):
    train, val, test = load_benchmark_splits(dataset_name, scale)
    config = make_training_config(scale, dataset_name)
    pipeline_config = DeepSTUQConfig(training=config, awa=make_awa_config(scale))
    pipeline = DeepSTUQPipeline(train.num_nodes, pipeline_config)
    pipeline.fit(train, val)
    return pipeline, test


def run_interval_trajectory(
    scale: ExperimentScale,
    dataset_name: str = "PEMS08",
    node: Optional[int] = None,
    horizon_step: int = 0,
    max_points: int = 200,
    seed: int = 0,
) -> Dict:
    """Fig. 8: ground truth, prediction and 95% interval on one road segment.

    Returns the time series (lists) for the selected sensor plus the PICP of
    the plotted stretch.
    """
    pipeline, test = _fit_pipeline(dataset_name, scale)
    inputs, targets = evaluation_windows(test, scale)
    result = pipeline.predict(inputs)
    rng = np.random.default_rng(seed)
    node = int(rng.integers(test.num_nodes)) if node is None else node
    count = min(max_points, result.mean.shape[0])

    truth = targets[:count, horizon_step, node]
    mean = result.mean[:count, horizon_step, node]
    std = result.std[:count, horizon_step, node]
    lower, upper = mean - 1.96 * std, mean + 1.96 * std
    return {
        "Dataset": dataset_name,
        "node": node,
        "horizon_step": horizon_step,
        "ground_truth": truth.tolist(),
        "prediction": mean.tolist(),
        "lower": lower.tolist(),
        "upper": upper.tolist(),
        "segment_picp": picp(truth, lower, upper),
    }


def run_uncertainty_decomposition(
    scale: ExperimentScale,
    dataset_name: str = "PEMS08",
    node: Optional[int] = None,
    horizon_step: int = 0,
    max_points: int = 72,
    seed: int = 0,
) -> Dict:
    """Fig. 9: total / aleatoric / epistemic uncertainty over a short stretch."""
    pipeline, test = _fit_pipeline(dataset_name, scale)
    inputs, targets = evaluation_windows(test, scale)
    result = pipeline.predict(inputs)
    rng = np.random.default_rng(seed)
    node = int(rng.integers(test.num_nodes)) if node is None else node
    count = min(max_points, result.mean.shape[0])

    return {
        "Dataset": dataset_name,
        "node": node,
        "horizon_step": horizon_step,
        "ground_truth": targets[:count, horizon_step, node].tolist(),
        "prediction": result.mean[:count, horizon_step, node].tolist(),
        "total_std": result.std[:count, horizon_step, node].tolist(),
        "aleatoric_std": result.aleatoric_std[:count, horizon_step, node].tolist(),
        "epistemic_std": result.epistemic_std[:count, horizon_step, node].tolist(),
        "mean_aleatoric_share": float(
            np.mean(result.aleatoric_var[:count]) / np.mean(result.total_var[:count])
        ),
    }
