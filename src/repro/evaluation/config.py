"""Experiment scales and shared hyper-parameter construction.

The paper trains on a GPU for 100 epochs on the full PEMS datasets; the NumPy
substrate cannot do that in benchmark time, so every experiment is
parameterized by an :class:`ExperimentScale`:

* ``UNIT_SCALE`` — a few seconds; used by the unit/integration tests.
* ``BENCH_SCALE`` — a few minutes for the whole benchmark suite; the default
  for ``pytest benchmarks/``.  Relative orderings (who wins) are stable at
  this scale, absolute numbers are not.
* ``PAPER_SCALE`` — the paper's hyper-parameters (full datasets, 100 epochs,
  hidden width 64); provided for completeness and documented in
  EXPERIMENTS.md, but impractically slow on pure NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.awa import AWAConfig
from repro.core.trainer import TrainingConfig


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs for an experiment run."""

    name: str
    dataset_size: str            # "tiny" | "small" | "full" (see repro.data.pems)
    datasets: Tuple[str, ...]    # which PEMS datasets to include
    history: int
    horizon: int
    hidden_dim: int
    embed_dim: int
    epochs: int
    awa_epochs: int
    batch_size: int
    mc_samples: int
    max_eval_windows: int        # cap on test windows scored per run


UNIT_SCALE = ExperimentScale(
    name="unit",
    dataset_size="tiny",
    datasets=("PEMS08",),
    history=6,
    horizon=3,
    hidden_dim=8,
    embed_dim=3,
    epochs=3,
    awa_epochs=2,
    batch_size=64,
    mc_samples=3,
    max_eval_windows=128,
)

BENCH_SCALE = ExperimentScale(
    name="bench",
    dataset_size="tiny",
    datasets=("PEMS03", "PEMS04", "PEMS07", "PEMS08"),
    history=12,
    horizon=12,
    hidden_dim=12,
    embed_dim=4,
    epochs=4,
    awa_epochs=2,
    batch_size=64,
    mc_samples=5,
    max_eval_windows=144,
)

PAPER_SCALE = ExperimentScale(
    name="paper",
    dataset_size="full",
    datasets=("PEMS03", "PEMS04", "PEMS07", "PEMS08"),
    history=12,
    horizon=12,
    hidden_dim=64,
    embed_dim=10,
    epochs=100,
    awa_epochs=20,
    batch_size=64,
    mc_samples=10,
    max_eval_windows=10_000_000,
)

SCALES: Dict[str, ExperimentScale] = {
    scale.name: scale for scale in (UNIT_SCALE, BENCH_SCALE, PAPER_SCALE)
}


def scale_from_env(default: str = "bench") -> ExperimentScale:
    """Resolve the experiment scale from the ``REPRO_SCALE`` environment variable.

    ``REPRO_SCALE=unit|bench|paper`` lets the same benchmark files run as a
    quick smoke test, the default CPU benchmark, or the full paper recipe.
    """
    import os

    name = os.environ.get("REPRO_SCALE", default).lower()
    if name not in SCALES:
        raise KeyError(f"unknown REPRO_SCALE {name!r}; choose from {sorted(SCALES)}")
    return SCALES[name]


def make_training_config(scale: ExperimentScale, dataset_name: str = "PEMS08", seed: int = 0) -> TrainingConfig:
    """Build the shared :class:`TrainingConfig` for a given scale and dataset.

    The encoder dropout follows the paper's rule: 0.05 for the small PEMS08
    adjacency, 0.1 for the larger networks.
    """
    encoder_dropout = 0.05 if dataset_name.upper() == "PEMS08" else 0.1
    return TrainingConfig(
        history=scale.history,
        horizon=scale.horizon,
        hidden_dim=scale.hidden_dim,
        embed_dim=scale.embed_dim,
        epochs=scale.epochs,
        batch_size=scale.batch_size,
        encoder_dropout=encoder_dropout,
        decoder_dropout=0.2,
        mc_samples=scale.mc_samples,
        seed=seed,
    )


def make_awa_config(scale: ExperimentScale) -> AWAConfig:
    """AWA re-training configuration for a given scale."""
    return AWAConfig(epochs=scale.awa_epochs, lr_max=3e-3, lr_min=3e-5)
