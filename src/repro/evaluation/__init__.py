"""Experiment harness regenerating every table and figure of the paper.

Each runner returns plain Python data structures (lists of row dicts or
series dicts) and has a matching formatter producing the text table/series
printed by the corresponding benchmark in ``benchmarks/``.  The mapping from
paper artifact to runner is recorded in DESIGN.md (per-experiment index) and
EXPERIMENTS.md (measured results).
"""

from repro.evaluation.config import (
    BENCH_SCALE,
    PAPER_SCALE,
    UNIT_SCALE,
    ExperimentScale,
    make_awa_config,
    make_training_config,
    scale_from_env,
)
from repro.evaluation.datasets import dataset_statistics, load_benchmark_splits
from repro.evaluation.point_prediction import (
    POINT_MODEL_NAMES,
    build_point_model,
    run_point_prediction,
    train_and_evaluate_point_model,
)
from repro.evaluation.uncertainty_quantification import run_uncertainty_quantification
from repro.evaluation.ablations import (
    run_awa_ablation,
    run_calibration_ablation,
    run_lambda_ablation,
    run_mc_sample_ablation,
)
from repro.evaluation.horizon_analysis import run_horizon_point_analysis, run_horizon_uncertainty_analysis
from repro.evaluation.trajectories import run_interval_trajectory, run_uncertainty_decomposition
from repro.evaluation.formatting import (
    format_figure_series,
    format_method_table,
    format_rows,
)

__all__ = [
    "ExperimentScale",
    "UNIT_SCALE",
    "BENCH_SCALE",
    "PAPER_SCALE",
    "make_training_config",
    "make_awa_config",
    "scale_from_env",
    "dataset_statistics",
    "load_benchmark_splits",
    "POINT_MODEL_NAMES",
    "build_point_model",
    "run_point_prediction",
    "train_and_evaluate_point_model",
    "run_uncertainty_quantification",
    "run_awa_ablation",
    "run_calibration_ablation",
    "run_mc_sample_ablation",
    "run_lambda_ablation",
    "run_horizon_point_analysis",
    "run_horizon_uncertainty_analysis",
    "run_interval_trajectory",
    "run_uncertainty_decomposition",
    "format_rows",
    "format_method_table",
    "format_figure_series",
]
