"""Closed-loop HTTP load generator for the gateway (http.client + ThreadPool).

``N`` workers each run a *closed loop* against the gateway: issue one
request, block for the response, validate it, record the latency, repeat —
the concurrent-fetch idiom, offered load therefore tracks service capacity
instead of overrunning it.  Workers are seeded independently, so a run is
reproducible request-for-request.

Each worker holds one persistent ``http.client.HTTPConnection`` for its
whole loop (the gateway speaks HTTP/1.1 with ``Content-Length``, so
keep-alive reuse is safe): latency measures request service, not TCP
handshakes, and the generator stops racing the OS for ephemeral ports at
high request rates.  A transport failure closes the connection and the next
request transparently reconnects.

The same generator drives both the tier-1 smoke/storm tests (small request
counts, correctness assertions: zero dropped, zero malformed) and
``benchmarks/bench_http_gateway.py`` (sustained req/s plus p50/p99 latency
gates).  A run is summarized by a :class:`LoadReport`:

* ``ok`` — HTTP 200 responses whose body passed validation;
* ``http_errors`` — well-formed non-2xx responses (the server said no);
* ``dropped`` — transport failures, timeouts, or malformed/invalid response
  bodies — the "request fell on the floor" bucket every zero-drop
  acceptance gate asserts empty.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass, field
from multiprocessing.pool import ThreadPool
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

import numpy as np

__all__ = [
    "LoadGenerator",
    "LoadReport",
    "RouteReport",
    "default_payload_fn",
    "default_validate_fn",
]

#: ``payload_fn(rng, request_index) -> (path, json_body)``.
PayloadFn = Callable[[np.random.Generator, int], Tuple[str, Dict[str, Any]]]
#: ``validate_fn(status, parsed_body) -> bool`` — False marks the response invalid.
ValidateFn = Callable[[int, Any], bool]


def default_payload_fn(history: int, nodes: int) -> PayloadFn:
    """Random ``POST /predict`` windows in a traffic-like value range."""

    def payload(rng: np.random.Generator, index: int) -> Tuple[str, Dict[str, Any]]:
        window = rng.uniform(0.0, 120.0, size=(history, nodes))
        return "/predict", {"window": window.tolist()}

    return payload


def default_validate_fn(status: int, body: Any) -> bool:
    """A valid predict response: 200 with a finite numeric mean matrix."""
    if status != 200 or not isinstance(body, dict):
        return False
    mean = body.get("mean")
    if not isinstance(mean, list) or not mean:
        return False
    try:
        array = np.asarray(mean, dtype=np.float64)
    except (TypeError, ValueError):
        return False
    return array.ndim == 2 and array.size > 0 and bool(np.isfinite(array).all())


class _NoDelayConnection(http.client.HTTPConnection):
    """Keep-alive connection with Nagle disabled on every (re)connect.

    Small request frames on a reused connection must not wait behind Nagle
    for the server's delayed ACKs (~40 ms per request once the kernel's
    initial quick-ACK phase wears off); connections stay lazy, so a dead
    server still surfaces as a per-request transport failure.
    """

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


@dataclass
class RouteReport:
    """Outcome of one route's share of a closed-loop run."""

    requests: int = 0
    ok: int = 0
    http_errors: int = 0
    dropped: int = 0
    latencies: List[float] = field(default_factory=list, repr=False)  # seconds

    def latency_ms(self, quantile: float) -> float:
        if not self.latencies:
            return float("nan")
        return float(np.quantile(np.asarray(self.latencies), quantile) * 1e3)

    @property
    def p50_ms(self) -> float:
        return self.latency_ms(0.50)

    @property
    def p99_ms(self) -> float:
        return self.latency_ms(0.99)


@dataclass
class LoadReport:
    """Aggregate outcome of one closed-loop run.

    ``routes`` breaks every counter and latency list down by request path,
    so a mixed-traffic run (``/predict`` + ``/observe``) can attribute its
    aggregate p99 to the route that actually burned it.
    """

    requests: int
    ok: int
    http_errors: int
    dropped: int
    duration: float
    latencies: List[float] = field(default_factory=list, repr=False)  # seconds
    status_counts: Dict[int, int] = field(default_factory=dict)
    routes: Dict[str, RouteReport] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Completed requests per second of wall-clock run time."""
        return self.requests / self.duration if self.duration > 0 else 0.0

    def latency_ms(self, quantile: float) -> float:
        if not self.latencies:
            return float("nan")
        return float(np.quantile(np.asarray(self.latencies), quantile) * 1e3)

    @property
    def p50_ms(self) -> float:
        return self.latency_ms(0.50)

    @property
    def p99_ms(self) -> float:
        return self.latency_ms(0.99)

    def summary(self) -> str:
        statuses = ", ".join(
            f"{code}: {count}" for code, count in sorted(self.status_counts.items())
        )
        lines = [
            f"requests:    {self.requests} "
            f"(ok: {self.ok}, http errors: {self.http_errors}, dropped: {self.dropped})",
            f"duration:    {self.duration:.3f} s "
            f"({self.throughput:.1f} req/s closed-loop)",
            f"latency:     p50 {self.p50_ms:.2f} ms | "
            f"p99 {self.p99_ms:.2f} ms | max {self.latency_ms(1.0):.2f} ms",
            f"status codes: {statuses or '(none)'}",
        ]
        for path, route in sorted(self.routes.items()):
            lines.append(
                f"  {path:<12} {route.requests} req "
                f"(ok: {route.ok}, http errors: {route.http_errors}, "
                f"dropped: {route.dropped}) | "
                f"p50 {route.p50_ms:.2f} ms | p99 {route.p99_ms:.2f} ms"
            )
        return "\n".join(lines)


class LoadGenerator:
    """Seeded closed-loop load against one gateway URL.

    Parameters
    ----------
    base_url:
        Gateway root, e.g. ``gateway.url`` (``http://127.0.0.1:<port>``).
    num_workers:
        Concurrent closed loops (a :class:`multiprocessing.pool.ThreadPool`;
        requests are I/O-bound, so threads are the right concurrency).
    seed:
        Base seed; worker ``w`` derives its own independent generator, so
        runs are reproducible for any worker count.
    payload_fn:
        Builds each request; defaults to random ``/predict`` windows of
        shape ``(history, nodes)``.
    validate_fn:
        Judges each response; an invalid body counts as *dropped* even on a
        200 — a malformed success is still a failed request.
    timeout:
        Per-request socket timeout (exceeding it counts as dropped).
    """

    def __init__(
        self,
        base_url: str,
        num_workers: int = 4,
        seed: int = 0,
        payload_fn: Optional[PayloadFn] = None,
        validate_fn: Optional[ValidateFn] = None,
        history: int = 8,
        nodes: int = 4,
        timeout: float = 10.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.base_url = str(base_url).rstrip("/")
        split = urlsplit(self.base_url)
        if split.scheme not in ("", "http"):
            raise ValueError(f"only http:// gateways are supported, got {split.scheme!r}")
        if split.hostname is None:
            raise ValueError(f"base_url {base_url!r} has no host")
        self._host = split.hostname
        self._port = split.port
        self._base_path = split.path.rstrip("/")
        self.num_workers = int(num_workers)
        self.seed = int(seed)
        self.payload_fn = (
            payload_fn if payload_fn is not None else default_payload_fn(history, nodes)
        )
        self.validate_fn = validate_fn if validate_fn is not None else default_validate_fn
        self.timeout = float(timeout)

    # ------------------------------------------------------------------ #
    def _connect(self) -> http.client.HTTPConnection:
        """One worker's persistent keep-alive connection (Nagle off)."""
        return _NoDelayConnection(self._host, self._port, timeout=self.timeout)

    def _one_request(
        self, conn: http.client.HTTPConnection, rng: np.random.Generator, index: int
    ) -> Tuple[str, Optional[int], bool, float]:
        """Returns ``(path, status or None, valid, latency_seconds)``.

        The request rides ``conn``, the calling worker's keep-alive
        connection (``request`` transparently reconnects a closed one); any
        transport failure closes it so the next request starts clean.
        """
        path, body = self.payload_fn(rng, index)
        # Strict JSON on the wire: a NaN from a custom payload_fn must fail
        # loudly here, not serialize as invalid JSON the gateway rejects.
        data = json.dumps(body, allow_nan=False).encode("utf-8")
        started = time.perf_counter()
        try:
            conn.request(
                "POST",
                self._base_path + path,
                body=data,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            status = int(response.status)
            # Drain the body fully even on errors: an unread response poisons
            # connection reuse (http.client would refuse the next request).
            raw = response.read()
        except (http.client.HTTPException, OSError):
            conn.close()
            return path, None, False, time.perf_counter() - started
        latency = time.perf_counter() - started
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return path, status, False, latency
        return path, status, bool(self.validate_fn(status, parsed)), latency

    def _worker(self, args: Tuple[int, int, Optional[float]]) -> Dict[str, Any]:
        worker_index, request_budget, deadline = args
        # A large odd stride keeps worker streams disjoint for any seed.
        rng = np.random.default_rng(self.seed + 1_000_003 * (worker_index + 1))
        statuses: Dict[int, int] = {}
        latencies: List[float] = []
        routes: Dict[str, RouteReport] = {}
        ok = http_errors = dropped = 0
        index = 0
        conn = self._connect()
        try:
            while (request_budget is None or index < request_budget) and (
                deadline is None or time.monotonic() < deadline
            ):
                path, status, valid, latency = self._one_request(conn, rng, index)
                index += 1
                latencies.append(latency)
                route = routes.get(path)
                if route is None:
                    route = routes[path] = RouteReport()
                route.requests += 1
                route.latencies.append(latency)
                if status is None:
                    dropped += 1
                    route.dropped += 1
                    continue
                statuses[status] = statuses.get(status, 0) + 1
                if status == 200 and valid:
                    ok += 1
                    route.ok += 1
                elif status != 200:
                    http_errors += 1
                    route.http_errors += 1
                else:
                    dropped += 1  # 200 but malformed/invalid body
                    route.dropped += 1
        finally:
            conn.close()
        return {
            "requests": index,
            "ok": ok,
            "http_errors": http_errors,
            "dropped": dropped,
            "latencies": latencies,
            "statuses": statuses,
            "routes": routes,
        }

    def run(
        self,
        total_requests: Optional[int] = None,
        duration: Optional[float] = None,
    ) -> LoadReport:
        """Run the closed loops to completion and aggregate the report.

        Give ``total_requests`` (split evenly across workers) for exact
        request counts, or ``duration`` seconds for a timed run, or both
        (whichever bound hits first stops each worker).
        """
        if total_requests is None and duration is None:
            raise ValueError("give total_requests and/or duration")
        deadline = time.monotonic() + float(duration) if duration is not None else None
        budgets: List[Optional[int]]
        if total_requests is not None:
            base, extra = divmod(int(total_requests), self.num_workers)
            budgets = [base + (1 if w < extra else 0) for w in range(self.num_workers)]
        else:
            budgets = [None] * self.num_workers
        started = time.perf_counter()
        with ThreadPool(processes=self.num_workers) as pool:
            outcomes = pool.map(
                self._worker,
                [(w, budgets[w], deadline) for w in range(self.num_workers)],
            )
        elapsed = time.perf_counter() - started
        statuses: Dict[int, int] = {}
        latencies: List[float] = []
        routes: Dict[str, RouteReport] = {}
        for outcome in outcomes:
            for code, count in outcome["statuses"].items():
                statuses[code] = statuses.get(code, 0) + count
            latencies.extend(outcome["latencies"])
            for path, worker_route in outcome["routes"].items():
                route = routes.get(path)
                if route is None:
                    route = routes[path] = RouteReport()
                route.requests += worker_route.requests
                route.ok += worker_route.ok
                route.http_errors += worker_route.http_errors
                route.dropped += worker_route.dropped
                route.latencies.extend(worker_route.latencies)
        return LoadReport(
            requests=sum(o["requests"] for o in outcomes),
            ok=sum(o["ok"] for o in outcomes),
            http_errors=sum(o["http_errors"] for o in outcomes),
            dropped=sum(o["dropped"] for o in outcomes),
            duration=elapsed,
            latencies=latencies,
            status_counts=statuses,
            routes=routes,
        )
