"""Server-Sent Events framing + the live event tail loop behind ``GET /tail``.

The structured event log (:mod:`repro.obs.events`) stamps every record with
a monotonic sequence number; :class:`EventTail` turns that into a live
stream without a subscriber registry: it remembers the last sequence it
wrote and polls :func:`repro.obs.events.events_since` — each retained event
is delivered exactly once, in order, and a consumer that reconnects with
``?since=<last id>`` resumes where it left off.

Framing is standard SSE (``text/event-stream``)::

    event: slo.alert_firing
    id: 4217
    data: {"ts": ..., "kind": "slo.alert_firing", "trace_id": "t00a1...", ...}

with ``: heartbeat`` comment frames while the log is idle, so proxies and
clients can distinguish "quiet" from "dead".  JSON payloads are sanitized
(NaN → null) and serialized strictly — the same no-NaN-on-the-wire contract
as every other gateway surface.  The writer callable is the only transport
coupling, so the loop is testable without sockets and reusable over the
gateway's chunked HTTP/1.1 responses.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, Optional

from repro.obs.events import events_since, last_event_seq
from repro.utils.jsonsafe import json_ready

__all__ = ["EventTail", "format_sse_comment", "format_sse_event"]


def format_sse_event(kind: str, seq: int, record: Dict[str, Any]) -> bytes:
    """One SSE data frame: ``event`` + ``id`` + single-line JSON ``data``."""
    text = json.dumps(
        json_ready(record, nan_to_none=True),
        default=str,
        allow_nan=False,
        separators=(",", ":"),
    )
    # SSE is line-framed; strict JSON on one line never contains a newline,
    # so one data: line is always enough.
    return f"event: {kind}\nid: {int(seq)}\ndata: {text}\n\n".encode("utf-8")


def format_sse_comment(text: str) -> bytes:
    """One SSE comment frame (heartbeats; ignored by event consumers)."""
    safe = str(text).replace("\n", " ").replace("\r", " ")
    return f": {safe}\n\n".encode("utf-8")


class EventTail:
    """Pump the structured event log to a writer as a bounded SSE stream.

    Parameters
    ----------
    kinds:
        Optional event-kind prefix filter (``"slo."`` tails only alert
        transitions; ``None`` streams everything).
    since:
        Sequence cursor to resume from; ``None`` starts at "now" (only
        events logged after the tail attaches), ``0`` replays the whole
        retained ring.
    heartbeat_s:
        Idle interval after which a ``: heartbeat`` comment is written.
    max_events:
        Data frames to deliver before ending the stream (bounds every
        tail; ``/tail`` is an ops peek, not a durable subscription).
    timeout_s:
        Wall-clock cap on the whole stream, idle or not.
    poll_s:
        Event-log poll interval while idle.
    """

    def __init__(
        self,
        kinds: Optional[str] = None,
        since: Optional[int] = None,
        heartbeat_s: float = 2.0,
        max_events: int = 256,
        timeout_s: float = 30.0,
        poll_s: float = 0.05,
    ) -> None:
        if heartbeat_s <= 0 or timeout_s <= 0 or poll_s <= 0:
            raise ValueError("heartbeat_s, timeout_s and poll_s must be > 0")
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.kinds = str(kinds) if kinds else None
        self.cursor = int(since) if since is not None else last_event_seq()
        self.heartbeat_s = float(heartbeat_s)
        self.max_events = int(max_events)
        self.timeout_s = float(timeout_s)
        self.poll_s = float(poll_s)
        self.delivered = 0
        self.heartbeats = 0

    def _matches(self, record: Dict[str, Any]) -> bool:
        if self.kinds is None:
            return True
        return str(record.get("kind", "")).startswith(self.kinds)

    def run(
        self,
        write: Callable[[bytes], None],
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> str:
        """Stream until a bound is hit; returns why (``"max_events"``,
        ``"timeout"``, ``"stopped"`` or ``"disconnected"``).

        ``write`` receives complete SSE frames; any exception it raises is
        treated as a client disconnect and ends the loop quietly.  The
        caller owns transport framing (chunked encoding) and cleanup.
        """
        deadline = time.monotonic() + self.timeout_s
        next_heartbeat = time.monotonic() + self.heartbeat_s
        try:
            write(format_sse_comment(f"tail start cursor={self.cursor}"))
            while True:
                if should_stop is not None and should_stop():
                    return "stopped"
                now = time.monotonic()
                if now >= deadline:
                    write(format_sse_comment("tail timeout"))
                    return "timeout"
                batch = events_since(self.cursor, limit=64)
                wrote = False
                for seq, record in batch:
                    self.cursor = seq
                    if not self._matches(record):
                        continue
                    write(format_sse_event(record.get("kind", "event"), seq, record))
                    self.delivered += 1
                    wrote = True
                    if self.delivered >= self.max_events:
                        write(format_sse_comment("tail complete"))
                        return "max_events"
                if wrote:
                    next_heartbeat = time.monotonic() + self.heartbeat_s
                    continue  # drain the backlog before sleeping
                if now >= next_heartbeat:
                    write(format_sse_comment("heartbeat"))
                    self.heartbeats += 1
                    next_heartbeat = now + self.heartbeat_s
                time.sleep(min(self.poll_s, max(deadline - now, 0.0)))
        except (OSError, ValueError):
            # Broken pipe / closed writer: the client went away mid-frame.
            return "disconnected"
