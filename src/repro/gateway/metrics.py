"""Prometheus text exposition for the gateway's ``GET /metrics`` endpoint.

Three layers feed one scrape, rendered in the text format (version 0.0.4)
every Prometheus-compatible collector understands:

* **gateway counters** — per-route request/latency/error tracking collected
  by :class:`GatewayMetrics` as requests flow through the handler
  (``gateway_requests_total{route,code}``, a rolling-window latency summary
  with p50/p99 quantiles, in-flight gauge, uptime);
* **serving counters** — :attr:`InferenceServer.stats` flattened into
  ``repro_server_*`` / ``repro_cache_*`` series plus per-deployment
  ``repro_deployment_*{deployment,version}`` series;
* **fleet state** — per-stream rolling PICP / MAE / RMSE / width gauges and
  per-kind drift-event counters from :meth:`StreamFleet.snapshot`, plus
  fleet-level tick / event counters.

:func:`parse_prometheus_text` is the matching reader — the smoke tests and
the HTTP benchmark scrape ``/metrics`` and assert through it, so the emitted
text is guaranteed machine-parseable, not just eyeballable.
"""

from __future__ import annotations

import math
import re
import threading
import time
from collections import Counter, deque
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.events import events_emitted
from repro.obs.profiler import profiler, profiling_enabled
from repro.obs.trace import trace_store, tracing_enabled

__all__ = ["GatewayMetrics", "render_prometheus", "parse_prometheus_text"]

#: Default cap on the number of streams exported as per-stream series; a
#: 10k-stream fleet must not turn one scrape into a cardinality bomb.
#: Overridable per gateway via a ``max_metric_streams`` attribute; series
#: dropped by the cap are counted in ``obs_dropped_series_total``.
MAX_METRIC_STREAMS = 256

#: Scalar ``InferenceServer.stats`` keys that are monotonic counters; the
#: remaining numeric scalars render as gauges.
_SERVER_COUNTER_KEYS = frozenset(
    {
        "requests_served",
        "batches_dispatched",
        "model_windows",
        "shadow_windows",
        "models_swapped",
        "promotions",
        "rollbacks",
        "route_fallbacks",
        "shadow_errors",
        "stranded_requests",
    }
)
_CACHE_COUNTER_KEYS = frozenset({"hits", "misses", "evictions"})
_DEPLOYMENT_COUNTER_KEYS = frozenset(
    {"requests_served", "model_windows", "shadow_windows"}
)
#: Per-stream monitor-snapshot keys exported as ``repro_stream_<key>`` gauges.
_STREAM_METRIC_KEYS = (
    "coverage",
    "mean_width",
    "mae",
    "rmse",
    "winkler",
    "scored_steps",
    "steps",
)


class GatewayMetrics:
    """Thread-safe request/latency/error accounting for the HTTP plane.

    Latencies are kept per route in a bounded ring (`latency_window` most
    recent samples) for the quantile readout, alongside exact running
    count/sum — the summary's ``_count`` / ``_sum`` series stay monotonic
    even after the ring starts evicting.
    """

    def __init__(self, latency_window: int = 2048) -> None:
        if latency_window < 1:
            raise ValueError("latency_window must be >= 1")
        self.latency_window = int(latency_window)
        self._lock = threading.Lock()
        self._requests: Counter = Counter()          # (route, code) -> count
        self._latencies: Dict[str, deque] = {}       # route -> recent seconds
        self._latency_count: Counter = Counter()     # route -> total samples
        self._latency_sum: Dict[str, float] = {}     # route -> total seconds
        self._started = time.monotonic()

    def record(self, route: str, code: int, seconds: float) -> None:
        """Fold one finished request into the counters."""
        route, code, seconds = str(route), int(code), float(seconds)
        with self._lock:
            self._requests[(route, code)] += 1
            ring = self._latencies.get(route)
            if ring is None:
                ring = self._latencies[route] = deque(maxlen=self.latency_window)
            ring.append(seconds)
            self._latency_count[route] += 1
            self._latency_sum[route] = self._latency_sum.get(route, 0.0) + seconds

    def quantile(self, route: str, q: float) -> float:
        """Rolling-window latency quantile (seconds; NaN with no samples)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        with self._lock:
            ring = self._latencies.get(route)
            samples = sorted(ring) if ring else []
        if not samples:
            return float("nan")
        index = min(int(math.ceil(q * len(samples))) - 1, len(samples) - 1)
        return float(samples[max(index, 0)])

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready counters (per-route requests by code, error total)."""
        with self._lock:
            requests: Dict[str, Dict[str, int]] = {}
            for (route, code), count in sorted(self._requests.items()):
                requests.setdefault(route, {})[str(code)] = count
            errors = sum(
                count for (_, code), count in self._requests.items() if code >= 400
            )
            total = sum(self._requests.values())
        return {
            "requests_total": total,
            "errors_total": errors,
            "requests": requests,
            "uptime_seconds": self.uptime_seconds,
        }

    def routes(self) -> List[str]:
        with self._lock:
            return sorted({route for route, _ in self._requests})


# --------------------------------------------------------------------------- #
# Text exposition
# --------------------------------------------------------------------------- #
def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _escape_help(text: str) -> str:
    # HELP lines escape backslash and newline only (quotes stay literal).
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: Any) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _sample(name: str, labels: Optional[Dict[str, Any]], value: Any) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(val)}"' for key, val in labels.items()
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


#: Exposition-format grammar for metric names (label names drop the colon).
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class _Exposition:
    """Accumulates samples *grouped by family*, in first-seen family order.

    The text format requires every line of one metric family to form a
    single uninterrupted group, so per-deployment / per-stream loops that
    naturally produce ``family_a{x=1} family_b{x=1} family_a{x=2}`` would
    emit an illegal scrape if lines were appended in call order.  Samples
    are therefore buffered per family and concatenated at :meth:`text`
    time, with HELP/TYPE emitted exactly once ahead of each group.
    ``_count``/``_sum`` summary series register under their base family
    via the explicit ``family`` argument of :meth:`sample`.
    """

    def __init__(self) -> None:
        self._families: Dict[str, Dict[str, Any]] = {}

    def header(self, name: str, kind: str, help_text: str) -> None:
        if name not in self._families:
            if not _METRIC_NAME_RE.match(name):
                raise ValueError(f"illegal Prometheus metric family name: {name!r}")
            self._families[name] = {
                "kind": kind,
                "help": _escape_help(help_text),
                "samples": [],
            }

    def sample(
        self,
        family: str,
        name: str,
        labels: Optional[Dict[str, Any]],
        value: Any,
    ) -> None:
        """Append one sample line (``name`` may be ``<family>_count``/``_sum``)."""
        if family not in self._families:
            raise KeyError(f"header() must declare family {family!r} before samples")
        if name != family and not _METRIC_NAME_RE.match(name):
            raise ValueError(f"illegal Prometheus series name: {name!r}")
        self._families[family]["samples"].append(_sample(name, labels, value))

    def add(
        self,
        name: str,
        kind: str,
        help_text: str,
        value: Any,
        labels: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.header(name, kind, help_text)
        self.sample(name, name, labels, value)

    def text(self) -> str:
        lines: List[str] = []
        for name, family in self._families.items():
            lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['kind']}")
            lines.extend(family["samples"])
        return "\n".join(lines) + "\n"


def _render_gateway(exp: _Exposition, gateway: Any) -> None:
    metrics: GatewayMetrics = gateway.metrics
    with metrics._lock:
        requests = sorted(metrics._requests.items())
        latency_counts = dict(metrics._latency_count)
        latency_sums = dict(metrics._latency_sum)
    for (route, code), count in requests:
        exp.add(
            "gateway_requests_total",
            "counter",
            "HTTP requests handled, by route and status code.",
            count,
            {"route": route, "code": code},
        )
    for route in sorted(latency_counts):
        exp.header(
            "gateway_request_latency_seconds",
            "summary",
            "Per-route request latency (rolling-window quantiles).",
        )
        for q in (0.5, 0.99):
            exp.sample(
                "gateway_request_latency_seconds",
                "gateway_request_latency_seconds",
                {"route": route, "quantile": str(q)},
                metrics.quantile(route, q),
            )
        exp.sample(
            "gateway_request_latency_seconds",
            "gateway_request_latency_seconds_count",
            {"route": route},
            latency_counts[route],
        )
        exp.sample(
            "gateway_request_latency_seconds",
            "gateway_request_latency_seconds_sum",
            {"route": route},
            latency_sums[route],
        )
    exp.add(
        "gateway_inflight_requests",
        "gauge",
        "Requests currently being handled.",
        gateway.inflight_requests,
    )
    exp.add(
        "gateway_uptime_seconds",
        "gauge",
        "Seconds since the gateway metrics started.",
        metrics.uptime_seconds,
    )


def _render_server(exp: _Exposition, stats: Dict[str, Any]) -> None:
    deployments = stats.get("deployments") or {}
    default_route = stats.get("default_route")
    for key, value in stats.items():
        if key in ("deployments", "default_route") or isinstance(value, (dict, str)):
            continue
        if key.startswith("cache_"):
            short = key[len("cache_"):]
            kind = "counter" if short in _CACHE_COUNTER_KEYS else "gauge"
            name = f"repro_cache_{short}" + ("_total" if kind == "counter" else "")
            exp.add(name, kind, f"Shared prediction cache {short}.", value)
            continue
        kind = "counter" if key in _SERVER_COUNTER_KEYS else "gauge"
        name = f"repro_server_{key}" + ("_total" if kind == "counter" else "")
        exp.add(name, kind, f"Inference server {key}.", value)
    if default_route is not None:
        exp.add(
            "repro_server_default_route",
            "gauge",
            "1 on the deployment currently holding the default route.",
            1,
            {"deployment": default_route},
        )
    for name, dep_stats in sorted(deployments.items()):
        labels = {"deployment": name, "version": dep_stats.get("version", "")}
        for key, value in dep_stats.items():
            if key == "version" or isinstance(value, (dict, str)):
                continue
            kind = "counter" if key in _DEPLOYMENT_COUNTER_KEYS else "gauge"
            metric = f"repro_deployment_{key}" + ("_total" if kind == "counter" else "")
            exp.add(metric, kind, f"Per-deployment {key}.", value, labels)


def _render_fleet(
    exp: _Exposition, snapshot: Dict[str, Any], max_streams: int = MAX_METRIC_STREAMS
) -> int:
    """Render fleet series; returns the number of capped per-stream series.

    At most ``max_streams`` streams (sorted by name, so the exported set is
    stable scrape-to-scrape) get per-stream series; fleet-level aggregates
    always render in full.
    """
    dropped_series = 0
    exp.add("repro_fleet_tick", "counter", "Fleet ticks completed.", snapshot["tick"])
    exp.add(
        "repro_fleet_streams",
        "gauge",
        "Streams registered in the fleet.",
        snapshot["num_streams"],
    )
    fleet_kinds = Counter(event["kind"] for event in snapshot.get("events", ()))
    for kind, count in sorted(fleet_kinds.items()):
        exp.add(
            "repro_fleet_events_total",
            "counter",
            "Fleet-level events (spatial incidents, refit coordination), by kind.",
            count,
            {"kind": kind},
        )
    for index, (name, stream) in enumerate(sorted(snapshot.get("streams", {}).items())):
        if index >= max_streams:
            # Count exactly the series this stream would have emitted.
            stream_metrics = stream.get("metrics", {})
            dropped_series += 2  # step + warmed_up
            dropped_series += sum(1 for key in _STREAM_METRIC_KEYS if key in stream_metrics)
            dropped_series += len({event["kind"] for event in stream.get("events", ())})
            continue
        labels = {"stream": name}
        exp.add(
            "repro_stream_step",
            "counter",
            "Observations ingested by the stream.",
            stream["step"],
            labels,
        )
        exp.add(
            "repro_stream_warmed_up",
            "gauge",
            "1 once the stream's history window is full.",
            1 if stream["warmed_up"] else 0,
            labels,
        )
        stream_metrics = stream.get("metrics", {})
        for key in _STREAM_METRIC_KEYS:
            if key in stream_metrics:
                exp.add(
                    f"repro_stream_{key}",
                    "gauge",
                    f"Rolling {key} of the stream's monitor window.",
                    stream_metrics[key],
                    labels,
                )
        kinds = Counter(event["kind"] for event in stream.get("events", ()))
        for kind, count in sorted(kinds.items()):
            exp.add(
                "repro_stream_events_total",
                "counter",
                "Per-stream drift/lifecycle events, by kind.",
                count,
                {"stream": name, "kind": kind},
            )
    refits = snapshot.get("refits")
    if refits is not None:
        exp.add(
            "repro_fleet_refit_triggers_total",
            "counter",
            "Coordinated region refits triggered.",
            refits["triggers"],
        )
        exp.add(
            "repro_fleet_refits_completed_total",
            "counter",
            "Coordinated region refits completed.",
            refits["refits_completed"],
        )
    spatial = snapshot.get("spatial")
    if spatial is not None:
        exp.add(
            "repro_fleet_spatial_incidents_total",
            "counter",
            "Spatial incidents fired by the corridor-graph aggregator.",
            spatial["incidents"],
        )
    return dropped_series


def _render_obs(exp: _Exposition, dropped_series: int) -> None:
    """The observability layer's own series: phase timings + trace/store state."""
    exp.add(
        "obs_tracing_enabled",
        "gauge",
        "1 while request tracing is enabled.",
        1 if tracing_enabled() else 0,
    )
    exp.add(
        "obs_profiling_enabled",
        "gauge",
        "1 while phase profiling is enabled.",
        1 if profiling_enabled() else 0,
    )
    exp.add(
        "obs_dropped_series_total",
        "counter",
        "Per-stream series dropped from this scrape by the cardinality cap.",
        dropped_series,
    )
    exp.add(
        "obs_events_emitted_total",
        "counter",
        "Structured log events emitted since process start.",
        events_emitted(),
    )
    store_stats = trace_store().stats
    exp.add(
        "obs_trace_spans_stored",
        "gauge",
        "Finished spans currently retained in the trace ring.",
        store_stats["spans_stored"],
    )
    exp.add(
        "obs_trace_spans_added_total",
        "counter",
        "Finished spans accepted by the trace ring since process start.",
        store_stats["spans_added"],
    )
    exp.add(
        "obs_trace_spans_evicted_total",
        "counter",
        "Spans evicted from the trace ring by its capacity bound.",
        store_stats["spans_evicted"],
    )
    for phase, entry in profiler().snapshot().items():
        exp.header(
            "repro_phase_seconds",
            "summary",
            "Per-phase tick/serving timings (rolling-window quantiles).",
        )
        for q, key in (("0.5", "p50_ms"), ("0.99", "p99_ms")):
            exp.sample(
                "repro_phase_seconds",
                "repro_phase_seconds",
                {"phase": phase, "quantile": q},
                entry[key] / 1e3,
            )
        exp.sample(
            "repro_phase_seconds",
            "repro_phase_seconds_count",
            {"phase": phase},
            entry["count"],
        )
        exp.sample(
            "repro_phase_seconds",
            "repro_phase_seconds_sum",
            {"phase": phase},
            entry["total_s"],
        )


#: Numeric encoding of the alert lifecycle for ``repro_slo_alert_state``.
_ALERT_STATE_CODES = {"inactive": 0, "pending": 1, "firing": 2, "resolved": 3}


def _render_slo(exp: _Exposition, engine: Any) -> None:
    """The SLO engine's families: burn rates, alert states, ``ALERTS``.

    Follows the Prometheus convention of an ``ALERTS{alertname, alertstate}``
    series with value 1 per pending/firing alert, plus gauges for the raw
    burn-rate inputs so dashboards can plot the approach to a breach.
    """
    for alert in engine.alerts():
        labels = {"slo": alert.spec.name, "series": alert.series}
        for window, burn in (("long", alert.burn_long), ("short", alert.burn_short)):
            exp.add(
                "repro_slo_burn_rate",
                "gauge",
                "Error-budget consumption multiple per evaluation window.",
                burn,
                dict(labels, window=window),
            )
        exp.add(
            "repro_slo_error_budget_remaining",
            "gauge",
            "1 minus the long-window burn rate (negative while over-burning).",
            1.0 - alert.burn_long,
            labels,
        )
        exp.add(
            "repro_slo_alert_state",
            "gauge",
            "Alert lifecycle: 0 inactive, 1 pending, 2 firing, 3 resolved.",
            _ALERT_STATE_CODES.get(alert.state, 0),
            dict(labels, severity=alert.spec.severity),
        )
        if alert.state in ("pending", "firing"):
            exp.add(
                "ALERTS",
                "gauge",
                "Active SLO alerts (Prometheus ALERTS convention).",
                1,
                {
                    "alertname": alert.spec.name,
                    "alertstate": alert.state,
                    "series": alert.series,
                    "severity": alert.spec.severity,
                },
            )
    for (slo, state), count in sorted(engine.transition_counts().items()):
        exp.add(
            "repro_slo_transitions_total",
            "counter",
            "Alert state transitions performed, by objective and new state.",
            count,
            {"slo": slo, "state": state},
        )
    history_stats = engine.history.stats
    exp.add(
        "repro_slo_evaluations_total",
        "counter",
        "SLO engine evaluation passes completed.",
        engine.evaluations,
    )
    exp.add(
        "repro_slo_history_samples",
        "gauge",
        "Tick samples currently retained in the metrics history ring.",
        history_stats["samples"],
    )
    exp.add(
        "repro_slo_history_source_errors_total",
        "counter",
        "Metric source poll failures swallowed by the history ring.",
        history_stats["source_errors"],
    )


def render_prometheus(gateway: Any) -> str:
    """Render one scrape of the gateway (and the stack behind it) as text."""
    exp = _Exposition()
    _render_gateway(exp, gateway)
    dropped_series = 0
    fleet = getattr(gateway, "fleet", None)
    if fleet is not None:
        snapshot = fleet.snapshot()
        dropped_series = _render_fleet(
            exp,
            snapshot,
            max_streams=getattr(gateway, "max_metric_streams", MAX_METRIC_STREAMS),
        )
        server_stats = snapshot.get("server")
    else:
        server_stats = None
    if server_stats is None:
        server_stats = gateway.server.stats
    _render_server(exp, server_stats)
    _render_obs(exp, dropped_series)
    slo = getattr(gateway, "slo", None)
    if slo is not None:
        _render_slo(exp, slo)
    return exp.text()


# --------------------------------------------------------------------------- #
# Parsing (tests + benchmark scrapes)
# --------------------------------------------------------------------------- #
def _parse_labels(text: str) -> Tuple[Tuple[str, str], ...]:
    labels: List[Tuple[str, str]] = []
    index = 0
    while index < len(text):
        eq = text.index("=", index)
        key = text[index:eq].strip().lstrip(",").strip()
        assert text[eq + 1] == '"', f"malformed label value in {text!r}"
        value_chars: List[str] = []
        cursor = eq + 2
        while text[cursor] != '"':
            if text[cursor] == "\\":
                cursor += 1
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(text[cursor], text[cursor])
                )
            else:
                value_chars.append(text[cursor])
            cursor += 1
        labels.append((key, "".join(value_chars)))
        index = cursor + 1
    return tuple(sorted(labels))


def parse_prometheus_text(
    text: str,
) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse text exposition into ``{metric: {sorted label tuple: value}}``.

    Raises ``ValueError`` on any line that is neither a comment, blank, nor a
    well-formed sample — the smoke tests run every scrape through this, so a
    formatting regression in the renderer fails loudly.  Beyond line shape,
    two structural rules of the format are enforced: a family's ``# TYPE``
    must precede its first sample, and all samples of one family must form
    a single uninterrupted group (``_count``/``_sum`` series count toward
    their declared summary/histogram family).
    """
    series: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    types: Dict[str, str] = {}
    sampled_families: set = set()
    previous_family: Optional[str] = None
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                if parts[2] in types:
                    raise ValueError(f"duplicate TYPE line for family {parts[2]!r}")
                types[parts[2]] = parts[3]
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            label_text, value_text = rest.rsplit("}", 1)
            labels = _parse_labels(label_text)
        else:
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"malformed sample line: {line!r}")
            name, value_text = parts
            labels = ()
        name = name.strip()
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"malformed metric name in line: {line!r}")
        try:
            value = float(value_text.strip().replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError as error:
            raise ValueError(f"malformed value in line: {line!r}") from error
        family = name
        for suffix in ("_count", "_sum", "_bucket"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) in ("summary", "histogram"):
                family = base
                break
        if types:
            # Only enforce structure on expositions that declare TYPE lines
            # (hand-rolled header-less fixtures stay parseable).
            if family != previous_family:
                if family in sampled_families:
                    raise ValueError(
                        f"samples of family {family!r} are not contiguous: the "
                        "family resumes after another family's samples"
                    )
                sampled_families.add(family)
                previous_family = family
        series.setdefault(name, {})[labels] = value
    return series
