"""The network serving plane: HTTP gateway, Prometheus metrics, load testing.

``repro.gateway`` turns the in-process serving/fleet stack into a deployable
service using only the standard library:

* :class:`~repro.gateway.gateway.Gateway` — a
  :class:`http.server.ThreadingHTTPServer` front end exposing the data plane
  (``POST /predict`` through the router/micro-batcher, ``POST /observe``
  into the fleet's online loop), the ops plane (``GET /snapshot``,
  ``GET /metrics`` in Prometheus text format, ``GET /healthz``) and the
  admin plane (``POST /admin/deploy|promote|rollback|routes``) — a full
  canary ramp is operable with curl;
* :class:`~repro.gateway.metrics.GatewayMetrics` /
  :func:`~repro.gateway.metrics.render_prometheus` — request/latency/error
  counters and the text exposition over gateway + server + fleet state
  (:func:`~repro.gateway.metrics.parse_prometheus_text` reads it back);
* :class:`~repro.gateway.loadgen.LoadGenerator` — a seeded closed-loop load
  generator (http.client + ThreadPool workers, per-request and per-route
  latency recording) shared by the smoke/storm tests and
  ``benchmarks/bench_http_gateway.py``;
* :class:`~repro.gateway.sse.EventTail` /
  :func:`~repro.gateway.sse.format_sse_event` — the SSE framing and
  cursor-polling loop behind ``GET /tail``, the gateway's live structured
  event stream (alert transitions, drift, chaos — with heartbeats).

With an :class:`~repro.obs.slo.SLOEngine` attached (``Gateway(slo=...)``),
the ops plane also serves ``GET /alerts``, renders ``ALERTS`` /
``repro_slo_*`` families in ``/metrics``, and degrades ``/healthz`` to 503
while a page-severity alert fires; ``admin_token=...`` puts the admin plane
and ``/tail`` behind a bearer token.

Typical service::

    server = InferenceServer(cache_size=4096)
    server.deploy("baseline", forecaster)
    fleet = StreamFleet(server, history=12, horizon=4)
    fleet.add_streams([f"corridor-{i}" for i in range(8)])
    with Gateway(server, fleet=fleet) as gateway:   # ephemeral port
        print(gateway.url)                          # curl away
        ...
    # stop() drains in-flight requests within a bounded timeout
"""

from repro.gateway.gateway import ApiError, Gateway
from repro.gateway.loadgen import LoadGenerator, LoadReport, RouteReport
from repro.gateway.metrics import (
    GatewayMetrics,
    parse_prometheus_text,
    render_prometheus,
)
from repro.gateway.sse import EventTail, format_sse_comment, format_sse_event

__all__ = [
    "ApiError",
    "EventTail",
    "Gateway",
    "GatewayMetrics",
    "LoadGenerator",
    "LoadReport",
    "RouteReport",
    "format_sse_comment",
    "format_sse_event",
    "parse_prometheus_text",
    "render_prometheus",
]
