"""The HTTP serving plane: a stdlib gateway over the serving/fleet stack.

:class:`Gateway` puts a :class:`http.server.ThreadingHTTPServer` front end on
an :class:`~repro.serving.InferenceServer` (and optionally a
:class:`~repro.fleet.StreamFleet`), turning the in-process library into a
deployable service:

* **data plane** — ``POST /predict`` routes keyed windows through the
  server's router and micro-batcher (concurrent HTTP clients coalesce into
  batched model calls exactly like in-process ``submit_many`` traffic);
  ``POST /observe`` feeds fleet streams their observation rows, driving the
  full predict → observe → calibrate online loop over the wire;
* **ops plane** — ``GET /snapshot`` (the fleet's JSON snapshot),
  ``GET /metrics`` (Prometheus text exposition), ``GET /healthz`` (503
  with detail while a page-severity SLO alert fires), ``GET /alerts``
  (SLO alert state + history) and ``GET /tail`` (live SSE event stream
  with heartbeats and trace-ID correlation);
* **admin plane** — ``POST /admin/deploy`` / ``/admin/promote`` /
  ``/admin/rollback`` / ``/admin/routes`` (+ ``GET /admin/routes``), so a
  full canary ramp (deploy → traffic split → promote → rollback) is operable
  with curl, no Python access needed, under the pool's zero-drop semantics;
  optionally guarded (with ``/tail``) by a bearer ``admin_token``.

Error taxonomy at the boundary: malformed bodies are ``400``, a missing or
wrong bearer token on a guarded plane is ``401`` with ``WWW-Authenticate``,
unknown deployments / streams / paths are ``404``, wrong methods are
``405``, conflicting admin actions (rollback with no history) are ``409``,
and a stopped or shutting-down server is ``503`` with a ``Retry-After``
header.  Responses never carry stack traces — errors are compact JSON
records.

Lifecycle: ``start(port=0)`` binds an ephemeral port (tests run many
gateways concurrently); ``stop(timeout)`` is bounded end to end — it stops
accepting connections, shuts the inference server down via its bounded
:meth:`~repro.serving.InferenceServer.stop` (stranded futures fail with
``ServerStopped``, waking any handler blocked on them into a 503), then
drains in-flight handlers until the deadline.
"""

from __future__ import annotations

import hmac
import json
import os
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.gateway.metrics import GatewayMetrics, render_prometheus
from repro.gateway.sse import EventTail
from repro.obs.profiler import profiler, profiling_enabled
from repro.obs.slo import gateway_source
from repro.obs.trace import start_span, start_trace, trace_store, tracing_enabled
from repro.serving.router import KeyRouter, Router, TrafficSplitRouter
from repro.serving.server import ServerStopped
from repro.utils.jsonsafe import json_ready

__all__ = ["ApiError", "Gateway"]

#: ``Retry-After`` seconds advertised with every 503.
_RETRY_AFTER = 1


class ApiError(Exception):
    """One HTTP-boundary failure: status code + client-safe message."""

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[int] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.retry_after = retry_after
        self.headers = dict(headers) if headers else None


def _bad_request(message: str) -> ApiError:
    return ApiError(400, message)


def _unavailable(message: str) -> ApiError:
    return ApiError(503, message, retry_after=_RETRY_AFTER)


def _parse_window(raw: Any, label: str = "window") -> np.ndarray:
    """Validate one JSON window into a float ``(history, nodes)`` array."""
    try:
        window = np.asarray(raw, dtype=np.float64)
    except (TypeError, ValueError):
        raise _bad_request(f"{label} must be a numeric (history, nodes) matrix")
    if window.ndim != 2 or window.size == 0:
        raise _bad_request(
            f"{label} must be a non-empty 2-D (history, nodes) matrix, "
            f"got shape {window.shape}"
        )
    return window


class Gateway:
    """HTTP front end over one inference server (plus an optional fleet).

    Parameters
    ----------
    server:
        The :class:`~repro.serving.InferenceServer` answering ``/predict``
        and the admin verbs.  :meth:`start` starts it if needed; whether
        :meth:`stop` also stops it is the ``stop_server`` argument there.
    fleet:
        Optional :class:`~repro.fleet.StreamFleet` behind ``/observe`` and
        ``/snapshot``.  Fleet ticks are serialized behind a gateway lock, so
        concurrent ``/observe`` posts never interleave one tick.
    host:
        Bind address; the default loopback keeps test gateways private.
    request_timeout:
        Bound on one ``/predict`` waiting for its prediction future.
    max_body_bytes:
        Reject request bodies larger than this with ``400`` (a malformed
        Content-Length can otherwise stall a handler thread on a read).
    model_resolver:
        Optional ``resolver(spec) -> model`` hook for ``POST /admin/deploy``
        bodies carrying ``{"model": spec}`` — how deployments whose models
        are not on-disk checkpoints (registry entries, test doubles) are
        deployed over HTTP.  Checkpoint-directory deploys need no resolver.
    significance:
        Miscoverage level of the Gaussian fallback interval attached to
        ``/predict`` responses when a model carries no native bounds.
    max_metric_streams:
        Cardinality cap on per-stream series in ``GET /metrics``; streams
        beyond it are dropped from the scrape (counted in
        ``obs_dropped_series_total``), keeping huge fleets scrapeable.
    slo:
        Optional :class:`~repro.obs.slo.SLOEngine`.  Attaching one lights
        up ``GET /alerts``, the ``ALERTS`` / ``repro_slo_*`` families in
        ``GET /metrics``, and degrades ``/healthz`` to 503-with-detail
        while a page-severity alert fires; the gateway registers itself as
        the engine's ``gateway`` metrics source (request totals, per-route
        p99).  The *evaluation* cadence stays with whoever ticks the
        engine (usually :meth:`StreamFleet.attach_slo`).
    admin_token:
        Optional bearer token guarding the admin plane (``/admin/*``) and
        the live tail (``/tail``): requests must carry
        ``Authorization: Bearer <token>`` or they get ``401``.  Defaults
        to the ``REPRO_ADMIN_TOKEN`` environment variable; empty/unset
        leaves those planes open (the local-dev default).
    """

    def __init__(
        self,
        server: Any,
        fleet: Optional[Any] = None,
        host: str = "127.0.0.1",
        request_timeout: float = 30.0,
        max_body_bytes: int = 16 << 20,
        model_resolver: Optional[Callable[[Any], Any]] = None,
        significance: float = 0.05,
        max_metric_streams: int = 256,
        slo: Optional[Any] = None,
        admin_token: Optional[str] = None,
    ) -> None:
        self.server = server
        self.fleet = fleet
        self.host = str(host)
        self.request_timeout = float(request_timeout)
        self.max_body_bytes = int(max_body_bytes)
        self.model_resolver = model_resolver
        self.significance = float(significance)
        self.max_metric_streams = int(max_metric_streams)
        self.slo = slo
        if admin_token is None:
            admin_token = os.environ.get("REPRO_ADMIN_TOKEN", "")
        self.admin_token = str(admin_token) or None
        self.metrics = GatewayMetrics()
        if slo is not None:
            slo.history.add_source("gateway", gateway_source(self))
        self._fleet_lock = threading.Lock()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._shutting_down = False
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self._routes: Dict[Tuple[str, str], Callable[..., Tuple[int, Any]]] = {
            ("POST", "/predict"): self._handle_predict,
            ("POST", "/observe"): self._handle_observe,
            ("GET", "/snapshot"): self._handle_snapshot,
            ("GET", "/metrics"): self._handle_metrics,
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/trace"): self._handle_trace,
            ("GET", "/profile"): self._handle_profile,
            ("GET", "/alerts"): self._handle_alerts,
            ("GET", "/tail"): self._handle_tail,
            ("POST", "/admin/deploy"): self._handle_deploy,
            ("POST", "/admin/promote"): self._handle_promote,
            ("POST", "/admin/rollback"): self._handle_rollback,
            ("GET", "/admin/routes"): self._handle_routes_get,
            ("POST", "/admin/routes"): self._handle_routes_post,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> Optional[int]:
        """Bound TCP port (the ephemeral one when started with ``port=0``)."""
        return self._httpd.server_address[1] if self._httpd is not None else None

    @property
    def url(self) -> str:
        if self._httpd is None:
            raise RuntimeError("gateway is not running; call start() first")
        return f"http://{self.host}:{self.port}"

    @property
    def inflight_requests(self) -> int:
        with self._inflight_cond:
            return self._inflight

    def start(self, port: int = 0) -> "Gateway":
        """Bind and serve on a background thread; ``port=0`` = ephemeral."""
        if self._httpd is not None:
            return self
        if hasattr(self.server, "start"):
            self.server.start()  # idempotent on a running server
        gateway = self

        class _BoundHandler(_Handler):
            pass

        _BoundHandler.gateway = gateway
        httpd = ThreadingHTTPServer((self.host, int(port)), _BoundHandler)
        httpd.daemon_threads = True
        # Never join handler threads in server_close(): stop() already does a
        # bounded drain, and an unbounded join would defeat it.
        httpd.block_on_close = False
        self._shutting_down = False
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-gateway",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0, stop_server: bool = True) -> None:
        """Shut down within ``timeout`` seconds, never hanging on in-flight work.

        Phases, all against one shared deadline: (1) flag shutdown so new
        requests answer 503 immediately; (2) stop the accept loop; (3) stop
        the inference server (when ``stop_server``) via its bounded ``stop`` —
        its ``ServerStopped`` failures release any handler blocked on a hung
        model; (4) drain remaining in-flight handlers until the deadline and
        close the listening socket.  Handlers still running at the deadline
        are daemon threads writing to closed sockets — they die quietly.
        """
        deadline = time.monotonic() + max(float(timeout), 0.0)
        self._shutting_down = True
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
        if stop_server and hasattr(self.server, "stop"):
            self.server.stop(timeout=max(deadline - time.monotonic(), 0.0))
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    break
                self._inflight_cond.wait(timeout=remaining)
        if httpd is not None:
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=max(deadline - time.monotonic(), 0.0))

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Handler bookkeeping
    # ------------------------------------------------------------------ #
    def _enter_request(self) -> None:
        with self._inflight_cond:
            self._inflight += 1

    def _exit_request(self) -> None:
        with self._inflight_cond:
            self._inflight -= 1
            self._inflight_cond.notify_all()

    def _resolve(self, method: str, path: str) -> Callable[..., Tuple[int, Any]]:
        handler = self._routes.get((method, path))
        if handler is not None:
            return handler
        if any(known_path == path for _, known_path in self._routes):
            raise ApiError(405, f"{method} is not supported on {path}")
        raise ApiError(404, f"no such endpoint: {path}")

    def _guarded(self, path: str) -> bool:
        """Paths behind the optional admin bearer token."""
        return path == "/admin" or path.startswith("/admin/") or path == "/tail"

    def _authorize(self, path: str, authorization: Optional[str]) -> None:
        """401 unless the request may touch ``path`` (no-op with no token set)."""
        if self.admin_token is None or not self._guarded(path):
            return
        expected = f"Bearer {self.admin_token}".encode("utf-8")
        supplied = (authorization or "").encode("utf-8", errors="replace")
        if not hmac.compare_digest(supplied, expected):
            raise ApiError(
                401,
                "this endpoint needs an 'Authorization: Bearer <token>' header",
                headers={"WWW-Authenticate": "Bearer"},
            )

    # ------------------------------------------------------------------ #
    # Data plane
    # ------------------------------------------------------------------ #
    def _require_deployment(self, name: Any) -> str:
        name = str(name)
        if name not in self.server.pool:
            raise ApiError(404, f"no deployment named {name!r}")
        return name

    def _submit(self, windows, keys, deployments) -> List[Any]:
        try:
            return self.server.submit_many(windows, keys=keys, deployments=deployments)
        except RuntimeError as error:
            # "server is not running" — stopped or not yet started.
            raise _unavailable(str(error))

    def _result_payload(self, result: Any) -> Dict[str, Any]:
        mean = result.mean[0]
        if result.lower is not None:
            lower, upper = result.lower[0], result.upper[0]
        else:
            lower, upper = result.interval(self.significance)
            lower, upper = lower[0], upper[0]
        return {
            "mean": json_ready(mean, nan_to_none=True),
            "std": json_ready(result.std[0], nan_to_none=True),
            "lower": json_ready(lower, nan_to_none=True),
            "upper": json_ready(upper, nan_to_none=True),
            "horizon": int(mean.shape[0]),
            "num_nodes": int(mean.shape[1]),
        }

    def _handle_predict(
        self, body: Optional[dict], query: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Any]:
        if not isinstance(body, dict):
            raise _bad_request("predict expects a JSON object body")
        batched = "windows" in body
        if batched:
            raw_windows = body["windows"]
            if not isinstance(raw_windows, list) or not raw_windows:
                raise _bad_request("windows must be a non-empty list of matrices")
            windows = [
                _parse_window(raw, label=f"windows[{index}]")
                for index, raw in enumerate(raw_windows)
            ]
            keys = body.get("keys")
            if keys is not None and (not isinstance(keys, list) or len(keys) != len(windows)):
                raise _bad_request("keys must align with windows")
            deployments = body.get("deployments")
            if deployments is not None:
                if not isinstance(deployments, list) or len(deployments) != len(windows):
                    raise _bad_request("deployments must align with windows")
                deployments = [
                    self._require_deployment(name) if name is not None else None
                    for name in deployments
                ]
        elif "window" in body:
            windows = [_parse_window(body["window"])]
            keys = [body.get("key")] if "key" in body else None
            deployment = body.get("deployment")
            deployments = (
                [self._require_deployment(deployment)] if deployment is not None else None
            )
        else:
            raise _bad_request("predict body needs a 'window' (or 'windows') field")
        # The submit span is active on this handler thread while the server
        # routes and enqueues, so the captured context handed to the batch
        # worker parents the batch/model spans under it.
        with start_span("router.submit", attrs={"windows": len(windows)}):
            futures = self._submit(windows, keys, deployments)
        results = []
        for future in futures:
            try:
                results.append(future.result(timeout=self.request_timeout))
            except ServerStopped as error:
                raise _unavailable(str(error))
            except FutureTimeoutError:
                raise _unavailable(
                    f"prediction did not resolve within {self.request_timeout}s"
                )
        payloads = [self._result_payload(result) for result in results]
        if batched:
            return 200, {"count": len(payloads), "results": payloads}
        return 200, payloads[0]

    def _handle_observe(
        self, body: Optional[dict], query: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Any]:
        fleet = self.fleet
        if fleet is None:
            raise ApiError(404, "no fleet is attached to this gateway")
        if not isinstance(body, dict):
            raise _bad_request("observe expects a JSON object body")
        if "observations" in body:
            raw_observations = body["observations"]
            raw_masks = body.get("masks") or {}
            if not isinstance(raw_observations, dict) or not raw_observations:
                raise _bad_request("observations must map stream names to rows")
            if not isinstance(raw_masks, dict):
                raise _bad_request("masks must map stream names to boolean rows")
        elif "stream" in body:
            if "observation" not in body:
                raise _bad_request("observe body needs an 'observation' row")
            raw_observations = {str(body["stream"]): body["observation"]}
            raw_masks = (
                {str(body["stream"]): body["mask"]} if body.get("mask") is not None else {}
            )
        else:
            raise _bad_request(
                "observe body needs 'stream' + 'observation' (or an 'observations' map)"
            )
        unknown = sorted(set(map(str, raw_observations)) - set(fleet.streams))
        if unknown:
            raise ApiError(404, f"unknown streams: {unknown}")
        observations: Dict[str, np.ndarray] = {}
        masks: Dict[str, np.ndarray] = {}
        for name, row in raw_observations.items():
            name = str(name)
            try:
                observations[name] = np.asarray(row, dtype=np.float64)
            except (TypeError, ValueError):
                raise _bad_request(f"observation for stream {name!r} is not numeric")
            if name in raw_masks and raw_masks[name] is not None:
                try:
                    masks[name] = np.asarray(raw_masks[name], dtype=bool)
                except (TypeError, ValueError):
                    raise _bad_request(f"mask for stream {name!r} is not boolean")
        return_forecasts = bool(body.get("return_forecasts", False))
        try:
            with self._fleet_lock:
                step = fleet.tick(observations, masks=masks or None)
        except (ValueError, TypeError) as error:
            raise _bad_request(str(error))
        streams: Dict[str, Any] = {}
        for name, result in step.results.items():
            entry: Dict[str, Any] = {
                "step": int(result.step),
                "coverage": json_ready(result.coverage, nan_to_none=True),
                "events": [event.to_dict() for event in result.events],
                "forecast_ready": result.prediction is not None,
            }
            if return_forecasts and result.prediction is not None:
                entry["mean"] = json_ready(result.prediction.mean[0], nan_to_none=True)
                entry["lower"] = json_ready(result.lower, nan_to_none=True)
                entry["upper"] = json_ready(result.upper, nan_to_none=True)
            streams[name] = entry
        return 200, {
            "tick": int(step.tick),
            "streams": streams,
            "events": [event.to_dict() for event in step.events],
        }

    # ------------------------------------------------------------------ #
    # Ops plane
    # ------------------------------------------------------------------ #
    def _handle_snapshot(
        self, body: Optional[dict], query: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Any]:
        if self.fleet is not None:
            snapshot = self.fleet.snapshot()
        else:
            snapshot = {"server": self.server.stats}
        snapshot["gateway"] = self.metrics.snapshot()
        return 200, json_ready(snapshot, nan_to_none=True)

    def _handle_metrics(
        self, body: Optional[dict], query: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Any]:
        return 200, render_prometheus(self)

    def _handle_healthz(
        self, body: Optional[dict], query: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Any]:
        pool = self.server.pool
        payload: Dict[str, Any] = {
            "status": "ok",
            "deployments": len(pool),
            "default_route": pool.default_name,
            "streams": len(self.fleet.streams) if self.fleet is not None else 0,
        }
        if self.slo is not None:
            firing = [alert.to_dict() for alert in self.slo.firing()]
            payload["alerts_firing"] = len(firing)
            pages = [alert for alert in firing if alert["severity"] == "page"]
            if pages:
                # A firing page means the service is violating an objective
                # an operator promised to defend: degrade health so load
                # balancers / orchestrators see it, with the detail inline.
                payload["status"] = "degraded"
                payload["firing"] = json_ready(pages, nan_to_none=True)
                return 503, payload
        return 200, payload

    def _handle_trace(
        self, body: Optional[dict], query: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Any]:
        """``GET /trace?limit=N`` — the N most recent traces as span trees."""
        limit = 20
        if query and "limit" in query:
            try:
                limit = int(query["limit"])
            except ValueError:
                raise _bad_request("limit must be an integer")
        store = trace_store()
        return 200, json_ready(
            {
                "enabled": tracing_enabled(),
                "store": store.stats,
                "traces": store.traces(limit=limit),
            },
            nan_to_none=True,
        )

    def _handle_profile(
        self, body: Optional[dict], query: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Any]:
        """``GET /profile[?window=<key>]`` — the per-phase tick cost breakdown.

        Without ``window``, lifetime totals.  With it, each distinct ``key``
        names one delta consumer: the response covers the interval since
        that key's previous scrape (``/profile?window=prom`` from a scraper
        reports per-interval cost, not ever-growing lifetime sums).
        """
        prof = profiler()
        payload: Dict[str, Any] = {"enabled": profiling_enabled()}
        window = query.get("window") if query else None
        if window is not None:
            if not window:
                raise _bad_request("window needs a non-empty consumer key")
            payload["window"] = window
            payload["phases"] = prof.delta(key=window)
        else:
            payload["phases"] = prof.snapshot()
            payload["top_phases"] = prof.top_phases()
        return 200, json_ready(payload, nan_to_none=True)

    def _handle_alerts(
        self, body: Optional[dict], query: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Any]:
        """``GET /alerts`` — SLO specs, alert states and transition history."""
        if self.slo is None:
            raise ApiError(404, "no SLO engine is attached to this gateway")
        return 200, json_ready(self.slo.snapshot(), nan_to_none=True)

    def _handle_tail(
        self, body: Optional[dict], query: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Any]:  # pragma: no cover - never dispatched
        # /tail is served by the handler's streaming path (_stream_tail);
        # this entry only exists so routing (404/405) treats it uniformly.
        raise ApiError(500, "tail must be served as a stream")

    def _build_tail(self, query: Dict[str, str]) -> EventTail:
        """Validate ``GET /tail`` query params into an :class:`EventTail`.

        ``kinds`` filters by event-kind prefix, ``since`` resumes from a
        sequence cursor (the SSE ``id`` field), ``max_events`` / ``timeout``
        / ``heartbeat`` bound the stream.
        """

        def _number(name: str, default: float, cast=float):
            raw = query.get(name)
            if raw is None:
                return default
            try:
                return cast(raw)
            except ValueError:
                raise _bad_request(f"{name} must be a number")

        try:
            return EventTail(
                kinds=query.get("kinds"),
                since=_number("since", None, int) if "since" in query else None,
                heartbeat_s=_number("heartbeat", 2.0),
                max_events=_number("max_events", 256, int),
                timeout_s=min(_number("timeout", 30.0), 300.0),
            )
        except ValueError as error:
            raise _bad_request(str(error))

    # ------------------------------------------------------------------ #
    # Admin plane
    # ------------------------------------------------------------------ #
    def _handle_deploy(
        self, body: Optional[dict], query: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Any]:
        if not isinstance(body, dict) or "name" not in body:
            raise _bad_request("deploy body needs a 'name' field")
        name = str(body["name"])
        version = body.get("version")
        if "checkpoint" in body:
            model: Any = str(body["checkpoint"])
        elif "model" in body:
            if self.model_resolver is None:
                raise _bad_request(
                    "this gateway has no model resolver; deploy from a 'checkpoint' path"
                )
            try:
                model = self.model_resolver(body["model"])
            except ApiError:
                raise
            except Exception as error:
                raise _bad_request(f"model spec rejected: {error}")
        else:
            raise _bad_request("deploy body needs a 'checkpoint' path or a 'model' spec")
        try:
            deployment = self.server.deploy(
                name, model, version=str(version) if version is not None else None
            )
        except (OSError, ValueError, TypeError, KeyError) as error:
            # Unreadable checkpoint, malformed spec files, ... — client errors.
            raise _bad_request(f"deploy failed: {error}")
        return 200, {
            "name": deployment.name,
            "version": deployment.version,
            "default_route": self.server.pool.default_name,
        }

    def _handle_promote(
        self, body: Optional[dict], query: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Any]:
        if not isinstance(body, dict) or "name" not in body:
            raise _bad_request("promote body needs a 'name' field")
        name = self._require_deployment(body["name"])
        previous = self.server.promote(name)
        return 200, {"default_route": name, "previous": previous}

    def _handle_rollback(
        self, body: Optional[dict], query: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Any]:
        name = body.get("name") if isinstance(body, dict) else None
        try:
            new_default = self.server.rollback(str(name) if name is not None else None)
        except KeyError as error:
            raise ApiError(404, str(error))
        except (ValueError, RuntimeError) as error:
            raise ApiError(409, str(error))
        return 200, {"default_route": new_default}

    def _router_info(self) -> Dict[str, Any]:
        router = self.server.router
        info: Dict[str, Any] = {"type": type(router).__name__}
        if isinstance(router, KeyRouter):
            info["routes"] = {str(key): name for key, name in router.routes.items()}
            info["default"] = router.default
        elif isinstance(router, TrafficSplitRouter):
            realized = router.realized_shares
            info["weights"] = [
                {
                    "deployment": name,
                    "weight": weight,
                    "realized_share": realized[name],
                }
                for name, weight in router.weights.items()
            ]
        shadows = getattr(router, "shadows", None)
        if shadows:
            info["shadows"] = list(shadows)
        return info

    def _handle_routes_get(
        self, body: Optional[dict], query: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Any]:
        pool = self.server.pool
        deployments = {
            name: pool.get(name).version
            for name in pool.names()
            if pool.get(name) is not None
        }
        return 200, {
            "default_route": pool.default_name,
            "deployments": deployments,
            "router": self._router_info(),
        }

    def _handle_routes_post(
        self, body: Optional[dict], query: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Any]:
        if not isinstance(body, dict) or not ("routes" in body or "weights" in body):
            raise _bad_request("routes body needs a 'routes' map or a 'weights' map")
        if "routes" in body and "weights" in body:
            raise _bad_request("set either 'routes' or 'weights', not both")
        router = self.server.router
        if "routes" in body:
            routes = body["routes"]
            if not isinstance(routes, dict) or not routes:
                raise _bad_request("routes must map request keys to deployment names")
            resolved = {
                key: self._require_deployment(name) if name is not None else None
                for key, name in routes.items()
            }
            if isinstance(router, KeyRouter):
                router.set_routes(resolved)
            elif type(router) is Router:
                # Same upgrade the fleet performs: the inert default policy
                # becomes keyed routing; unmapped keys keep the pool default.
                self.server.router = KeyRouter(resolved)
            else:
                raise _bad_request(
                    f"router {type(router).__name__} does not support keyed routes"
                )
        else:
            weights = body["weights"]
            if not isinstance(weights, dict) or not weights:
                raise _bad_request("weights must map deployment names to weights")
            resolved_weights: Dict[Optional[str], float] = {}
            for name, weight in weights.items():
                # The empty-string key is the pool-default (uncanaried) share:
                # JSON object keys cannot be null.
                target = None if name == "" else self._require_deployment(name)
                try:
                    resolved_weights[target] = float(weight)
                except (TypeError, ValueError):
                    raise _bad_request(f"weight for {name!r} is not numeric")
            inner = router if not isinstance(router, TrafficSplitRouter) else router.inner
            try:
                if isinstance(router, TrafficSplitRouter):
                    router.set_weights(resolved_weights)
                else:
                    self.server.router = TrafficSplitRouter(resolved_weights, inner=inner)
            except ValueError as error:
                raise _bad_request(str(error))
        return 200, {"router": self._router_info()}


# --------------------------------------------------------------------------- #
# The request handler
# --------------------------------------------------------------------------- #
class _Handler(BaseHTTPRequestHandler):
    """Per-connection handler; every response is JSON (or metrics text)."""

    #: Bound by :meth:`Gateway.start` on a per-gateway subclass.
    gateway: Gateway = None  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"
    server_version = "repro-gateway"
    # Responses go out as two small writes (header flush, then body).  On a
    # long-lived keep-alive connection Nagle would hold the second write for
    # the peer's delayed ACK (~40 ms per request once quick-ACK wears off).
    disable_nagle_algorithm = True

    def log_message(self, fmt: str, *args: Any) -> None:  # pragma: no cover
        pass  # metrics carry the signal; stderr noise helps nobody

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    # ------------------------------------------------------------------ #
    def _read_body(self) -> Optional[dict]:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header) if length_header is not None else 0
        except ValueError:
            raise _bad_request("malformed Content-Length header")
        if length < 0 or length > self.gateway.max_body_bytes:
            raise _bad_request(
                f"request body of {length} bytes exceeds the "
                f"{self.gateway.max_body_bytes}-byte limit"
            )
        if length == 0:
            self._body_read = True
            return None
        raw = self.rfile.read(length)
        self._body_read = True
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise _bad_request("request body is not valid JSON")
        if not isinstance(body, dict):
            raise _bad_request("request body must be a JSON object")
        return body

    def _discard_body(self) -> None:
        """Drain a request body the handler never read.

        A dispatch that errors before :meth:`_read_body` (unknown route,
        shutdown 503, oversized payload) would otherwise leave the body
        bytes in the socket; on a keep-alive connection the next request
        would be parsed starting at those bytes.  Bodies we refused to read
        (oversized, or an unparsable Content-Length) close the connection
        instead of draining unbounded data.
        """
        if self._body_read:
            return
        self._body_read = True
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header) if length_header is not None else 0
        except ValueError:
            length = -1
        if length == 0:
            return
        if 0 < length <= self.gateway.max_body_bytes:
            try:
                self.rfile.read(length)
                return
            except OSError:
                pass
        self.close_connection = True

    def _send(
        self,
        status: int,
        payload: Any,
        retry_after: Optional[int] = None,
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        if isinstance(payload, str):
            data = payload.encode("utf-8")
        else:
            data = (json.dumps(payload, allow_nan=False) + "\n").encode("utf-8")
        try:
            self.send_response(int(status))
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            trace_id = getattr(self, "_trace_id", None)
            if trace_id is not None:
                self.send_header("X-Trace-Id", trace_id)
            if retry_after is not None:
                self.send_header("Retry-After", str(int(retry_after)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError, OSError):
            # The client hung up (or stop() closed the socket); the request
            # itself was already processed — nothing to unwind.
            self.close_connection = True

    def _stream_tail(self, query: Dict[str, str]) -> None:
        """Serve ``GET /tail`` as a chunked SSE stream.

        Frames go out in HTTP/1.1 chunked encoding (one chunk per SSE
        frame) and the stream always ends with the zero-length terminator
        unless the client disconnected — so a completed tail leaves the
        keep-alive connection clean for the next request.
        """
        gateway = self.gateway
        tail = gateway._build_tail(query)  # ApiError before headers go out
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Transfer-Encoding", "chunked")
        trace_id = getattr(self, "_trace_id", None)
        if trace_id is not None:
            self.send_header("X-Trace-Id", trace_id)
        self.end_headers()

        def write(frame: bytes) -> None:
            self.wfile.write(b"%x\r\n%s\r\n" % (len(frame), frame))

        reason = tail.run(write, should_stop=lambda: gateway._shutting_down)
        if reason != "disconnected":
            try:
                self.wfile.write(b"0\r\n\r\n")
            except (BrokenPipeError, ConnectionResetError, OSError):
                reason = "disconnected"
        if reason == "disconnected":
            # Mid-stream the chunked body cannot be completed; poison the
            # connection rather than let a half-written frame precede the
            # next response.
            self.close_connection = True

    def _dispatch(self, method: str) -> None:
        gateway = self.gateway
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/") or "/"
        query = {key: values[-1] for key, values in parse_qs(parsed.query).items()}
        started = time.perf_counter()
        self._status = 500
        self._body_read = method != "POST"
        gateway._enter_request()
        # Each request is the root of its own trace; the span stays active on
        # this handler thread for the whole dispatch, so spans opened by the
        # route handlers (and contexts captured into queued requests) parent
        # under it.  Sampled requests echo the ID back as ``X-Trace-Id``.
        span = start_trace(
            "gateway." + (path.strip("/").replace("/", ".") or "root"),
            attrs={"method": method, "path": path},
        )
        self._trace_id = span.trace_id
        try:
            with span:
                self._dispatch_inner(method, path, query, span)
        finally:
            route = path if (method, path) in gateway._routes else "<unmatched>"
            gateway.metrics.record(route, self._status, time.perf_counter() - started)
            gateway._exit_request()

    def _dispatch_inner(self, method: str, path: str, query: Dict[str, str], span: Any) -> None:
        gateway = self.gateway
        status = 500
        try:
            try:
                handler = gateway._resolve(method, path)
                gateway._authorize(path, self.headers.get("Authorization"))
                if gateway._shutting_down:
                    raise _unavailable("gateway is shutting down")
                body = self._read_body() if method == "POST" else None
                if path == "/tail":
                    status = 200
                    self._stream_tail(query)
                elif path == "/metrics":
                    status, payload = handler(body, query)
                    self._send(
                        status,
                        payload,
                        content_type="text/plain; version=0.0.4; charset=utf-8",
                    )
                else:
                    status, payload = handler(body, query)
                    self._send(status, payload)
            except ApiError as error:
                status = error.status
                self._send(
                    status,
                    {"error": {"status": status, "message": str(error)}},
                    retry_after=error.retry_after,
                    headers=error.headers,
                )
            except Exception as error:  # pragma: no cover - defensive path
                # Never leak a traceback to the wire; the type name is enough
                # for the client and the logs carry nothing sensitive.
                status = 500
                self._send(
                    status,
                    {
                        "error": {
                            "status": 500,
                            "message": f"internal error: {type(error).__name__}",
                        }
                    },
                )
        finally:
            self._discard_body()
            self._status = status
            span.set_attr("status", status)
