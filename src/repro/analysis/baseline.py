"""Committed suppression baseline for the analyzer.

The baseline is the escape hatch for findings that are *understood and
accepted* rather than fixed — every entry must carry a one-line
justification, and entries that stop matching anything are reported as
stale (and fail the run) so the file can only shrink or stay honest.

Format (``analysis_baseline.json`` at the repo root)::

    {
      "version": 1,
      "entries": [
        {
          "rule": "lock-order/blocking-call",
          "path": "src/repro/serving/server.py",
          "symbol": "InferenceServer.stop",
          "justification": "why this is accepted"
        }
      ]
    }

Matching is on ``(rule, path, symbol)`` — never on line numbers — so
unrelated edits do not expire entries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Set, Tuple, Union

from repro.analysis.framework import Finding

_BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "analysis_baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    symbol: str
    justification: str = ""

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "symbol": self.symbol,
            "justification": self.justification,
        }


class Baseline:
    """An in-memory set of accepted findings keyed on (rule, path, symbol)."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)
        self._keys: Set[Tuple[str, str, str]] = {e.key for e in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, finding: Finding) -> bool:
        return finding.key in self._keys

    def stale(self, matched_keys: Set[tuple]) -> List[dict]:
        """Entries whose key matched no finding in the completed run."""
        return [e.to_dict() for e in self.entries if e.key not in matched_keys]

    def unjustified(self) -> List[BaselineEntry]:
        return [e for e in self.entries if not e.justification.strip()]

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(f"{path}: not a baseline file (missing 'entries')")
        version = payload.get("version", _BASELINE_VERSION)
        if version != _BASELINE_VERSION:
            raise ValueError(f"{path}: unsupported baseline version {version!r}")
        entries = []
        for raw in payload["entries"]:
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    symbol=str(raw.get("symbol", "")),
                    justification=str(raw.get("justification", "")),
                )
            )
        return cls(entries)

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], justification: str = "TODO: justify"
    ) -> "Baseline":
        entries = []
        seen = set()
        for finding in sorted(findings):
            key = finding.key
            if key in seen:
                continue
            seen.add(key)
            entries.append(
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    symbol=finding.symbol,
                    justification=justification,
                )
            )
        return cls(entries)

    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "version": _BASELINE_VERSION,
            "entries": [e.to_dict() for e in self.entries],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
        )
