"""``python -m repro.analysis src/`` — run the analyzer like CI does."""

import sys

from repro.analysis.cli import main

sys.exit(main())
