"""Command line front end: ``python -m repro.analysis`` / ``repro-analyze``.

Exit codes: 0 — clean (or only baselined/suppressed findings); 1 — new
findings, stale baseline entries, or parse errors; 2 — bad usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import rules as _rules  # noqa: F401 - registers the catalog
from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.framework import AnalysisReport, analyze_paths, registered_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Project-specific static analysis for the repro stack.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file and report everything",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule families to run (default: all)",
    )
    parser.add_argument("--json", action="store_true", help="emit a JSON report")
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file to accept every current finding",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def _render_text(report: AnalysisReport) -> str:
    lines: List[str] = []
    for finding in report.findings:
        lines.append(finding.render())
    for error in report.errors:
        lines.append(f"error: {error}")
    for entry in report.stale_baseline:
        lines.append(
            "stale baseline entry (no longer matches anything): "
            f"{entry['rule']} {entry['path']} {entry['symbol']}"
        )
    summary = (
        f"{report.files_scanned} files scanned: "
        f"{len(report.findings)} finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed"
    )
    if report.stale_baseline:
        summary += f", {len(report.stale_baseline)} stale baseline entr(y/ies)"
    lines.append(summary)
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, cls in sorted(registered_rules().items()):
            print(f"{name}: {cls.description}")
        return 0

    root = Path(args.root)
    rules = [r.strip() for r in args.rules.split(",")] if args.rules else None

    baseline = None
    baseline_path = None
    if not args.no_baseline:
        baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
        if baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, KeyError, json.JSONDecodeError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        elif args.baseline:
            print(f"error: baseline file not found: {baseline_path}", file=sys.stderr)
            return 2

    try:
        report = analyze_paths(
            args.paths,
            root=root,
            rules=rules,
            baseline=None if args.write_baseline else baseline,
        )
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = baseline_path or root / DEFAULT_BASELINE_NAME
        Baseline.from_findings(report.findings).save(target)
        print(f"wrote {len(report.findings)} entr(y/ies) to {target}")
        return 0

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(_render_text(report))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
