"""Rule registry, findings and the analysis driver.

A *rule* is a class with a ``name`` (the rule family, e.g. ``lock-order``),
registered via :func:`register`.  Its :meth:`Rule.check` receives one parsed
:class:`ModuleContext` and yields :class:`Finding` objects whose ``rule``
field carries the full stable id (``family/sub-id``, e.g.
``lock-order/cycle``).

Suppression happens at two levels:

* inline — a ``# repro: noqa[rule-id]`` comment on the finding's line
  (``rule-id`` may be a full id, a family, or ``*``);
* committed — entries in ``analysis_baseline.json`` matched on
  ``(rule, path, symbol)`` so line drift does not expire them (see
  :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type, Union

#: ``# repro: noqa[lock-order/cycle, determinism]`` — codes between brackets.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([^\]]*)\]")

_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file/line and a stable symbol.

    ``symbol`` names the *thing* that violated the rule (an attribute, an
    edge, a call) rather than the position, so baselines survive line
    drift: two findings are the same baseline entry iff
    ``(rule, path, symbol)`` match.
    """

    path: str
    line: int
    rule: str
    symbol: str
    message: str

    @property
    def key(self) -> tuple:
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Rule:
    """Base class for analysis rules; subclasses register themselves."""

    name: str = ""
    description: str = ""

    def check(self, module: "ModuleContext") -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``cls`` to the global rule registry."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def registered_rules() -> Dict[str, Type[Rule]]:
    return dict(_REGISTRY)


def all_rules(only: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the registered rules (optionally a named subset)."""
    if only is None:
        return [cls() for _, cls in sorted(_REGISTRY.items())]
    unknown = sorted(set(only) - set(_REGISTRY))
    if unknown:
        raise KeyError(f"unknown rules: {', '.join(unknown)}")
    return [_REGISTRY[name]() for name in only]


@dataclass
class ModuleContext:
    """One parsed source file handed to every rule."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, root: Path) -> "ModuleContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        return cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )

    def noqa_codes(self, line: int) -> List[str]:
        """Suppression codes from a ``# repro: noqa[...]`` pragma on ``line``."""
        if not 1 <= line <= len(self.lines):
            return []
        match = _NOQA_RE.search(self.lines[line - 1])
        if match is None:
            return []
        return [code.strip() for code in match.group(1).split(",") if code.strip()]

    def is_suppressed(self, finding: Finding) -> bool:
        for code in self.noqa_codes(finding.line):
            if code == "*" or finding.rule == code or finding.rule.startswith(code + "/"):
                return True
        return False


@dataclass
class AnalysisReport:
    """The partitioned outcome of one analyzer run.

    ``findings`` are actionable (neither suppressed nor baselined);
    ``stale_baseline`` lists committed entries that no longer match
    anything — either half being non-empty fails the run.
    """

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_baseline: List[dict] = field(default_factory=list)
    files_scanned: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.stale_baseline and not self.errors

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": _SCHEMA_VERSION,
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in sorted(self.findings)],
            "baselined": [f.to_dict() for f in sorted(self.baselined)],
            "suppressed": [f.to_dict() for f in sorted(self.suppressed)],
            "stale_baseline": list(self.stale_baseline),
            "errors": list(self.errors),
        }


def iter_python_files(
    paths: Sequence[Union[str, Path]], root: Path
) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths`` in a stable order."""
    seen = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    root: Optional[Union[str, Path]] = None,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional["Baseline"] = None,  # noqa: F821 - see baseline.py
) -> AnalysisReport:
    """Run the (selected) rules over every python file under ``paths``."""
    root = Path(root) if root is not None else Path.cwd()
    active = all_rules(rules)
    report = AnalysisReport()
    matched_keys = set()
    for path in iter_python_files(paths, root):
        try:
            module = ModuleContext.parse(path, root)
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            report.errors.append(f"{path}: {error}")
            continue
        report.files_scanned += 1
        for rule in active:
            for finding in rule.check(module):
                if module.is_suppressed(finding):
                    report.suppressed.append(finding)
                elif baseline is not None and baseline.matches(finding):
                    matched_keys.add(finding.key)
                    report.baselined.append(finding)
                else:
                    report.findings.append(finding)
    if baseline is not None:
        report.stale_baseline = baseline.stale(matched_keys)
    report.findings.sort()
    report.baselined.sort()
    report.suppressed.sort()
    return report
