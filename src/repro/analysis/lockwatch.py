"""Runtime lock-order sanitizer (the dynamic half of ``lock-order``).

The static rule sees one module at a time; real deadlocks live in the
cross-object orders it cannot resolve (``server._lock`` vs
``pool._lock`` vs a gateway handler's lock).  This module checks those
at runtime, lockdep-style:

* :class:`TrackedLock` wraps a real ``threading`` lock.  Each acquire
  records the edge *every currently-held lock → the new lock* (per
  thread, with the acquiring source site) into a process-global order
  graph.
* Before the edge is added, the watcher searches the graph for a path
  in the opposite direction.  Finding one means two threads can acquire
  the same pair of locks in opposite orders — a deadlock waiting for
  the right interleaving — and raises :class:`LockOrderError`
  immediately, *before* blocking, even if this particular run would
  have survived.
* Re-acquiring a held non-reentrant ``Lock`` raises as a guaranteed
  self-deadlock; ``RLock`` re-entry is counted, not flagged.

Usage — wrap a whole suite so every lock the stack creates is tracked::

    from repro.analysis import lockwatch

    with lockwatch.watching() as watch:
        server = InferenceServer(...)   # locks constructed here are tracked
        ... drive the storm ...
    watch.assert_acyclic()              # no violations recorded

:func:`watching` patches ``threading.Lock``/``threading.RLock`` for the
duration (construction time decides tracking; already-existing locks
are untouched).  Individual locks can also be wrapped explicitly via
:meth:`LockWatcher.wrap`.  Overhead is a dict update per acquire —
fine for tests, not meant for production serving.
"""

from __future__ import annotations

import os
import sys
import threading
from _thread import allocate_lock as _raw_lock
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["LockOrderError", "LockWatcher", "TrackedLock", "watching"]

_THIS_FILE = os.path.normcase(os.path.abspath(__file__))


class LockOrderError(RuntimeError):
    """A lock-order cycle (or non-reentrant re-entry) was detected."""

    def __init__(self, message: str, cycle: Tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.cycle = tuple(cycle)


def _acquire_site() -> str:
    """``file.py:line`` of the nearest caller outside this module/threading."""
    frame = sys._getframe(2)
    while frame is not None:
        filename = os.path.normcase(frame.f_code.co_filename)
        if filename != _THIS_FILE and not filename.endswith("threading.py"):
            return f"{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class TrackedLock:
    """A ``Lock``/``RLock`` stand-in reporting acquires to a watcher.

    Exposes the full lock protocol plus the private hooks
    (``_release_save``/``_acquire_restore``/``_is_owned``) that
    ``threading.Condition`` probes for, so condition variables built on
    tracked locks — including ``queue.Queue`` internals — keep working.
    """

    def __init__(
        self, inner, watcher: "LockWatcher", name: str, reentrant: bool
    ) -> None:
        self._inner = inner
        self._watcher = watcher
        self.name = name
        self.reentrant = reentrant

    # -- core protocol -------------------------------------------------- #
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._watcher._before_acquire(self, blocking)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._watcher._after_acquire(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._watcher._after_release(self)

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def locked(self) -> bool:
        locked = getattr(self._inner, "locked", None)
        if locked is not None:
            return locked()
        return self._is_owned()

    # -- threading.Condition integration -------------------------------- #
    def _release_save(self):
        inner_save = getattr(self._inner, "_release_save", None)
        state = inner_save() if inner_save is not None else self._inner.release()
        self._watcher._forget_held(self)
        return state

    def _acquire_restore(self, state) -> None:
        self._watcher._before_acquire(self, True)
        inner_restore = getattr(self._inner, "_acquire_restore", None)
        if inner_restore is not None:
            inner_restore(state)
        else:
            self._inner.acquire()
        self._watcher._after_acquire(self)

    def _is_owned(self) -> bool:
        inner_owned = getattr(self._inner, "_is_owned", None)
        if inner_owned is not None:
            return inner_owned()
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __repr__(self) -> str:
        kind = "RLock" if self.reentrant else "Lock"
        return f"TrackedLock({kind} {self.name})"


class LockWatcher:
    """Process-global acquisition-order graph over tracked locks."""

    def __init__(self, raise_on_cycle: bool = True) -> None:
        self.raise_on_cycle = raise_on_cycle
        # The watcher's own mutex is a raw _thread lock: it must never be
        # tracked (bookkeeping inside bookkeeping would recurse forever).
        self._mutex = _raw_lock()
        self._local = threading.local()
        # edge (id_a -> id_b) -> "site_a -> site_b" of the first observation
        self._edges: Dict[int, Dict[int, str]] = {}
        self._locks: Dict[int, TrackedLock] = {}  # strong refs: ids stay unique
        self._violations: List[LockOrderError] = []
        self._enabled = False
        self._max_held = 0

    # -- lifecycle ------------------------------------------------------ #
    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        with self._mutex:
            self._edges.clear()
            self._locks.clear()
            self._violations.clear()
            self._max_held = 0

    def wrap(self, lock, name: Optional[str] = None, reentrant: bool = False) -> TrackedLock:
        tracked = TrackedLock(
            lock, self, name if name is not None else _acquire_site(), reentrant
        )
        with self._mutex:
            self._locks[id(tracked)] = tracked
        return tracked

    # -- introspection --------------------------------------------------- #
    @property
    def violations(self) -> List[LockOrderError]:
        with self._mutex:
            return list(self._violations)

    def edges(self) -> List[Tuple[str, str]]:
        """Observed ``(holder_name, acquired_name)`` order pairs."""
        with self._mutex:
            return sorted(
                {
                    (self._locks[a].name, self._locks[b].name)
                    for a, targets in self._edges.items()
                    for b in targets
                    if a in self._locks and b in self._locks
                }
            )

    def stats(self) -> Dict[str, int]:
        with self._mutex:
            return {
                "locks_tracked": len(self._locks),
                "edges": sum(len(t) for t in self._edges.values()),
                "violations": len(self._violations),
                "max_held_by_one_thread": self._max_held,
            }

    def assert_acyclic(self) -> None:
        """Raise the first recorded violation (for end-of-test assertions)."""
        violations = self.violations
        if violations:
            raise violations[0]

    # -- bookkeeping ----------------------------------------------------- #
    def _held(self) -> List[List]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = self._local.held = []
        return held

    def _before_acquire(self, lock: TrackedLock, blocking) -> None:
        held = self._held()
        for entry in held:
            if entry[0] is lock:
                if lock.reentrant or not blocking or not self._enabled:
                    return
                error = LockOrderError(
                    f"self-deadlock: thread {threading.current_thread().name!r} "
                    f"re-acquiring non-reentrant {lock.name} it already holds",
                    cycle=(lock.name, lock.name),
                )
                with self._mutex:
                    self._violations.append(error)
                if self.raise_on_cycle:
                    raise error
                return
        if not held or not self._enabled:
            return
        site = _acquire_site()
        with self._mutex:
            for holder, _ in held:
                self._add_edge_locked(holder, lock, site)

    def _add_edge_locked(self, holder: TrackedLock, lock: TrackedLock, site: str) -> None:
        targets = self._edges.setdefault(id(holder), {})
        if id(lock) in targets:
            return
        # Adding holder -> lock closes a cycle iff lock already reaches holder.
        path = self._find_path_locked(id(lock), id(holder))
        targets[id(lock)] = f"{holder.name} -> {lock.name} at {site}"
        if path is not None:
            names = tuple(
                self._locks[node].name for node in path if node in self._locks
            ) + (lock.name,)
            error = LockOrderError(
                "lock-order cycle (deadlock possible): "
                + " -> ".join(names)
                + f"; closing edge acquired at {site}",
                cycle=names,
            )
            self._violations.append(error)
            if self.raise_on_cycle:
                raise error

    def _find_path_locked(self, start: int, goal: int) -> Optional[List[int]]:
        if start == goal:
            return [start]
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            for nxt in self._edges.get(node, ()):
                if nxt == goal:
                    return path + [nxt]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    def _after_acquire(self, lock: TrackedLock) -> None:
        held = self._held()
        for entry in held:
            if entry[0] is lock:
                entry[1] += 1
                return
        held.append([lock, 1])
        if len(held) > self._max_held:
            self._max_held = len(held)

    def _after_release(self, lock: TrackedLock) -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index][0] is lock:
                held[index][1] -= 1
                if held[index][1] <= 0:
                    del held[index]
                return
        # Released by a thread that never acquired it (hand-off patterns):
        # nothing to unwind locally.

    def _forget_held(self, lock: TrackedLock) -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index][0] is lock:
                del held[index]
                return


@contextmanager
def watching(
    watcher: Optional[LockWatcher] = None, raise_on_cycle: bool = True
) -> Iterator[LockWatcher]:
    """Patch ``threading.Lock``/``RLock`` so new locks are tracked.

    Only locks *constructed* inside the block are tracked; they remain
    tracked (and the watcher keeps recording) until the watcher is
    disabled on exit.  Nesting or concurrent use of two ``watching``
    blocks is not supported — use one per test.
    """
    active = watcher if watcher is not None else LockWatcher(raise_on_cycle=raise_on_cycle)
    original_lock, original_rlock = threading.Lock, threading.RLock

    def make_lock():
        return active.wrap(original_lock(), reentrant=False)

    def make_rlock():
        return active.wrap(original_rlock(), reentrant=True)

    threading.Lock = make_lock  # type: ignore[assignment]
    threading.RLock = make_rlock  # type: ignore[assignment]
    active.enable()
    try:
        yield active
    finally:
        threading.Lock = original_lock  # type: ignore[assignment]
        threading.RLock = original_rlock  # type: ignore[assignment]
        active.disable()
