"""Project-specific static analysis for the repro serving stack.

The stack's correctness rests on a handful of invariants that ordinary
linters know nothing about: lock-acquisition order across the serving /
streaming / fleet threads, checkpoint completeness for every
``get_state``/``set_state`` class, seeded determinism on numeric paths,
and JSON/Prometheus safety at the gateway boundary.  This package makes
those rules machine-checked:

* :mod:`repro.analysis.framework` — AST rule registry, findings, noqa
  pragmas (``# repro: noqa[rule-id]``).
* :mod:`repro.analysis.rules` — the project rule catalog (``lock-order``,
  ``checkpoint``, ``determinism``, ``boundary``).
* :mod:`repro.analysis.baseline` — committed suppression file
  (``analysis_baseline.json``) with per-entry justifications.
* :mod:`repro.analysis.cli` — ``python -m repro.analysis src/`` /
  ``repro-analyze`` with text and JSON output.
* :mod:`repro.analysis.lockwatch` — the *runtime* lock-order sanitizer
  (instrumented locks, per-thread acquisition stacks, cycle detection)
  for the chaos/concurrency suites.

Run the full pass exactly like CI does::

    PYTHONPATH=src python -m repro.analysis src/
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.framework import (
    AnalysisReport,
    Finding,
    ModuleContext,
    all_rules,
    analyze_paths,
    iter_python_files,
    registered_rules,
)

# Importing the rules package registers every rule with the framework.
from repro.analysis import rules as _rules  # noqa: F401

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ModuleContext",
    "all_rules",
    "analyze_paths",
    "iter_python_files",
    "registered_rules",
]
