"""``boundary`` — the HTTP/metrics boundary must emit only legal bytes.

* ``boundary/json-nan`` — every ``json.dumps`` in the wire-facing
  packages (``repro/gateway/`` and ``repro/obs/`` — response bodies, the
  SSE event writer, structured-log sinks) must pass ``allow_nan=False``.
  Python's default serializes ``NaN`` / ``Infinity``, which are *not*
  JSON: a NaN smuggled into a payload would produce bytes most clients
  reject.  Numeric payload paths convert through
  ``json_ready(..., nan_to_none=True)`` first, so strictness costs
  nothing and turns silent corruption into a loud local ``ValueError``.
* ``boundary/metric-name`` — Prometheus series and label names fed to the
  exposition sinks (``exp.add`` / ``exp.header`` / ``exp.sample`` /
  ``_sample``) anywhere in the wire-facing packages must match the
  exposition-format grammar (``[a-zA-Z_:][a-zA-Z0-9_:]*`` for metric
  names, ``[a-zA-Z_][a-zA-Z0-9_]*`` for label names).  Literal fragments
  of f-strings are validated; interpolated fields are trusted (the
  runtime guard in ``_Exposition`` covers those).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional

from repro.analysis.framework import Finding, ModuleContext, Rule, register

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_METRIC_FRAGMENT_RE = re.compile(r"^[a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: exposition-builder calls whose leading string argument is a metric name.
_NAME_SINK_ATTRS = {"add", "header", "sample"}
_NAME_SINK_FUNCS = {"_sample"}


def _wire_file(module: ModuleContext) -> bool:
    """Files whose output reaches the network boundary."""
    return "repro/gateway/" in module.relpath or "repro/obs/" in module.relpath


def _enclosing_names(tree: ast.Module) -> dict:
    """Map each node to its enclosing function/class qualname for symbols."""
    qualnames = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = f"{prefix}.{child.name}" if prefix else child.name
                visit(child, name)
            else:
                qualnames[child] = prefix
                visit(child, prefix)

    visit(tree, "")
    return qualnames


def _bad_name_literal(arg: ast.expr) -> Optional[str]:
    """Return the offending text when ``arg`` can't be a legal metric name."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        if not _METRIC_NAME_RE.match(arg.value):
            return arg.value
        return None
    if isinstance(arg, ast.JoinedStr):
        for index, piece in enumerate(arg.values):
            if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                fragment = piece.value
                ok = (
                    _METRIC_NAME_RE.match(fragment)
                    if index == 0
                    else _METRIC_FRAGMENT_RE.match(fragment)
                )
                if not ok:
                    return fragment
    return None


@register
class BoundaryRule(Rule):
    name = "boundary"
    description = (
        "gateway json.dumps must pass allow_nan=False; Prometheus "
        "series/label names must match the exposition grammar"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if not _wire_file(module):
            return []
        findings: List[Finding] = []
        qualnames = None

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func

            # json.dumps(...) without allow_nan=False
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "dumps"
                and isinstance(func.value, ast.Name)
                and func.value.id == "json"
            ):
                strict = any(
                    kw.arg == "allow_nan"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                    for kw in node.keywords
                )
                if not strict:
                    if qualnames is None:
                        qualnames = _enclosing_names(module.tree)
                    where = qualnames.get(node, "") or "<module>"
                    findings.append(
                        Finding(
                            path=module.relpath,
                            line=node.lineno,
                            rule="boundary/json-nan",
                            symbol=where,
                            message=(
                                f"{where}: json.dumps without allow_nan=False — "
                                "NaN/Infinity would serialize as invalid JSON"
                            ),
                        )
                    )

            # metric-name sinks: exp.add(name,...), exp.header(name,...),
            # exp.sample(family, name, ...), _sample(name, ...)
            name_args: List[ast.expr] = []
            if isinstance(func, ast.Attribute) and func.attr in _NAME_SINK_ATTRS:
                count = 2 if func.attr == "sample" else 1
                name_args = node.args[:count]
            elif isinstance(func, ast.Name) and func.id in _NAME_SINK_FUNCS:
                name_args = node.args[:1]
            for arg in name_args:
                bad = _bad_name_literal(arg)
                if bad is not None:
                    findings.append(
                        Finding(
                            path=module.relpath,
                            line=arg.lineno,
                            rule="boundary/metric-name",
                            symbol=bad,
                            message=(
                                f"metric name {bad!r} violates the Prometheus "
                                "exposition grammar [a-zA-Z_:][a-zA-Z0-9_:]*"
                            ),
                        )
                    )
            # label-name keys in dict literals passed to the sinks
            if name_args:
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if not isinstance(arg, ast.Dict):
                        continue
                    for key in arg.keys:
                        if (
                            isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and not _LABEL_NAME_RE.match(key.value)
                        ):
                            findings.append(
                                Finding(
                                    path=module.relpath,
                                    line=key.lineno,
                                    rule="boundary/metric-name",
                                    symbol=key.value,
                                    message=(
                                        f"label name {key.value!r} violates the "
                                        "Prometheus label grammar "
                                        "[a-zA-Z_][a-zA-Z0-9_]*"
                                    ),
                                )
                            )
        return findings
