"""The project rule catalog; importing this package registers every rule.

Families and their stable finding ids:

* ``lock-order`` — :mod:`repro.analysis.rules.lock_order`
  (``lock-order/cycle``, ``lock-order/self-deadlock``,
  ``lock-order/blocking-call``)
* ``checkpoint`` — :mod:`repro.analysis.rules.checkpoint`
  (``checkpoint/missing-attr``)
* ``determinism`` — :mod:`repro.analysis.rules.determinism`
  (``determinism/unseeded-random``, ``determinism/wall-clock``)
* ``boundary`` — :mod:`repro.analysis.rules.boundary`
  (``boundary/json-nan``, ``boundary/metric-name``)
"""

from repro.analysis.rules import boundary, checkpoint, determinism, lock_order

__all__ = ["boundary", "checkpoint", "determinism", "lock_order"]
