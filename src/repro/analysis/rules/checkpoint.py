"""``checkpoint`` — every ``__init__`` attribute must survive a round trip.

The static version of the PR-6 detector-state bug: a class that
checkpoints via ``get_state``/``set_state`` silently loses any
``self._x`` it forgets to serialize, and the loss only shows up when a
restore lands mid-episode.  This rule makes the contract structural:

for every class defining both ``__init__`` and ``get_state``, each
underscore attribute assigned in ``__init__`` must either

* be *read* somewhere in ``get_state`` (transitively through
  ``self.helper()`` calls), or
* be self-evidently runtime-only — constructed from a thread/lock/queue
  factory (``threading.Lock()``, ``ThreadPoolExecutor(...)``, ...), or
* be listed in a class-level ``_CHECKPOINT_EXEMPT`` tuple/set of names
  (the explicit opt-out, greppable at the class), or carry an inline
  ``# repro: noqa[checkpoint]`` pragma.

Finding: ``checkpoint/missing-attr`` at the ``__init__`` assignment.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.framework import Finding, ModuleContext, Rule, register

#: Constructors whose products are runtime machinery, never checkpoint state.
_RUNTIME_FACTORIES = {
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "Thread",
    "Timer",
    "local",
    "Queue",
    "SimpleQueue",
    "LifoQueue",
    "PriorityQueue",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
}

_EXEMPT_LIST_NAME = "_CHECKPOINT_EXEMPT"


def _callable_name(value: ast.expr) -> Optional[str]:
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _init_private_attrs(init: ast.FunctionDef) -> Dict[str, Tuple[int, Optional[str]]]:
    """``attr -> (line, factory)`` for ``self._x = ...`` in ``__init__``."""
    attrs: Dict[str, Tuple[int, Optional[str]]] = {}
    for node in ast.walk(init):
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], node.value
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr.startswith("_")
                and not target.attr.startswith("__")
            ):
                attrs.setdefault(target.attr, (node.lineno, _callable_name(value)))
    return attrs


def _exempt_names(cls: ast.ClassDef) -> Set[str]:
    for node in cls.body:
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == _EXEMPT_LIST_NAME:
                value = node.value
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    elements = value.elts
                elif isinstance(value, ast.Call) and value.args:
                    inner = value.args[0]  # frozenset({...}) / frozenset((...))
                    elements = getattr(inner, "elts", [])
                else:
                    elements = []
                return {
                    el.value
                    for el in elements
                    if isinstance(el, ast.Constant) and isinstance(el.value, str)
                }
    return set()


def _attrs_touched(
    start: ast.FunctionDef, methods: Dict[str, ast.FunctionDef]
) -> Set[str]:
    """``self.<attr>`` names reachable from ``start`` via ``self.x()`` calls."""
    touched: Set[str] = set()
    queue = [start.name]
    visited: Set[str] = set()
    while queue:
        name = queue.pop()
        if name in visited or name not in methods:
            continue
        visited.add(name)
        for node in ast.walk(methods[name]):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                touched.add(node.attr)
                if node.attr in methods:
                    queue.append(node.attr)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "getattr"
                and len(node.args) >= 2
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "self"
                and isinstance(node.args[1], ast.Constant)
            ):
                touched.add(str(node.args[1].value))
    return touched


@register
class CheckpointRule(Rule):
    name = "checkpoint"
    description = (
        "__init__ attributes of get_state/set_state classes must be "
        "serialized or explicitly exempted"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for cls in module.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = {
                node.name: node
                for node in cls.body
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            init = methods.get("__init__")
            get_state = methods.get("get_state")
            if init is None or get_state is None:
                continue
            exempt = _exempt_names(cls)
            saved = _attrs_touched(get_state, methods)
            for attr, (line, factory) in sorted(_init_private_attrs(init).items()):
                if attr in saved or attr in exempt:
                    continue
                if factory in _RUNTIME_FACTORIES:
                    continue
                findings.append(
                    Finding(
                        path=module.relpath,
                        line=line,
                        rule="checkpoint/missing-attr",
                        symbol=f"{cls.name}.{attr}",
                        message=(
                            f"{cls.name}.{attr} is assigned in __init__ but never "
                            "read in get_state: a save/load round trip silently "
                            f"drops it (add it to get_state, or to "
                            f"{_EXEMPT_LIST_NAME} if runtime-only)"
                        ),
                    )
                )
        return findings
