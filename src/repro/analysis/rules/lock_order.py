"""``lock-order`` — static lock-acquisition graph + blocking-under-lock.

Builds a per-module graph of lock-acquisition order from ``with`` blocks:

* lock *sites* are ``self.<attr> = threading.Lock()/RLock()`` assignments
  (keyed ``ClassName.attr``) and module-level ``NAME = threading.Lock()``
  constants (keyed ``NAME``);
* an edge ``A -> B`` means some code path acquires ``B`` while holding
  ``A`` — either directly (nested ``with``) or through an intra-class
  ``self.method()`` call whose transitive closure acquires ``B``.

Findings:

* ``lock-order/cycle`` — the module graph has a cycle: two code paths
  acquire the same locks in opposite orders, a potential deadlock.
* ``lock-order/self-deadlock`` — a non-reentrant ``Lock`` is re-acquired
  while already held (guaranteed deadlock on one thread).
* ``lock-order/blocking-call`` — an *untimed* blocking call runs while a
  lock is held: ``x.result()`` without a timeout, zero-argument
  ``x.join()`` / ``x.wait()``, or any ``sleep(...)``.  Calls with a
  timeout are bounded and allowed.

The graph is intentionally per-module and name-based: cross-object
orders (``server._lock`` vs ``pool._lock``) are out of static reach and
covered at runtime by :mod:`repro.analysis.lockwatch`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.framework import Finding, ModuleContext, Rule, register

_LOCK_FACTORIES = {"Lock", "RLock"}
_REENTRANT_FACTORIES = {"RLock"}


def _lock_factory(value: ast.expr) -> Optional[str]:
    """Return ``"Lock"``/``"RLock"`` when ``value`` constructs one, else None."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Attribute) and func.attr in _LOCK_FACTORIES:
        if isinstance(func.value, ast.Name) and func.value.id == "threading":
            return func.attr
    if isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
        return func.id
    return None


def _untimed_blocking(call: ast.Call) -> Optional[str]:
    """Describe ``call`` when it blocks without a bound, else None."""
    func = call.func
    keywords = {kw.arg for kw in call.keywords}
    if isinstance(func, ast.Attribute):
        if func.attr == "result" and not call.args and "timeout" not in keywords:
            return "Future.result() without a timeout"
        if func.attr in ("join", "wait") and not call.args and not call.keywords:
            # Zero-argument join()/wait() never returns early; str.join and
            # concurrent.futures.wait always take arguments, so they don't
            # match this shape.
            return f"untimed .{func.attr}()"
        if func.attr == "sleep" and isinstance(func.value, ast.Name):
            if func.value.id == "time":
                return "time.sleep() while holding a lock"
    elif isinstance(func, ast.Name) and func.id == "sleep":
        return "sleep() while holding a lock"
    return None


class _FunctionFacts:
    """What one function/method does with locks."""

    def __init__(self) -> None:
        self.acquires: Set[str] = set()
        self.edges: List[Tuple[str, str, int]] = []  # held -> acquired @ line
        self.reacquired: List[Tuple[str, int]] = []  # non-reentrant re-entry
        self.blocking: List[Tuple[Tuple[str, ...], str, int]] = []  # held, desc, line
        self.blocking_anywhere: List[Tuple[str, int]] = []  # desc, line (no lock held)
        self.self_calls: List[Tuple[str, Tuple[str, ...], int]] = []  # name, held, line


class _FunctionScanner:
    """Statement walker tracking the set of held locks through ``with`` nesting."""

    def __init__(
        self,
        lock_names: Dict[str, str],  # lock key -> factory kind
        class_name: Optional[str],
        module_locks: Dict[str, str],
    ) -> None:
        self.lock_names = lock_names
        self.class_name = class_name
        self.module_locks = module_locks
        self.facts = _FunctionFacts()

    def _resolve_lock(self, expr: ast.expr) -> Optional[str]:
        if (
            self.class_name is not None
            and isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            key = f"{self.class_name}.{expr.attr}"
            if key in self.lock_names:
                return key
        if isinstance(expr, ast.Name) and expr.id in self.module_locks:
            return expr.id
        return None

    def scan(self, node: ast.AST, held: Tuple[str, ...] = ()) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Nested function bodies run later, on an unknown lock context.
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: List[str] = []
            for item in node.items:
                self.scan(item.context_expr, held)
                lock = self._resolve_lock(item.context_expr)
                if lock is None:
                    continue
                line = item.context_expr.lineno
                if lock in held + tuple(acquired):
                    if self.lock_names.get(lock) not in _REENTRANT_FACTORIES:
                        self.facts.reacquired.append((lock, line))
                    continue
                for holder in held + tuple(acquired):
                    self.facts.edges.append((holder, lock, line))
                self.facts.acquires.add(lock)
                acquired.append(lock)
            inner = held + tuple(acquired)
            for child in node.body:
                self.scan(child, inner)
            return
        if isinstance(node, ast.Call):
            desc = _untimed_blocking(node)
            if desc is not None:
                if held:
                    self.facts.blocking.append((held, desc, node.lineno))
                else:
                    self.facts.blocking_anywhere.append((desc, node.lineno))
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                self.facts.self_calls.append((func.attr, held, node.lineno))
        for child in ast.iter_child_nodes(node):
            self.scan(child, held)


def _collect_class_locks(cls: ast.ClassDef) -> Dict[str, str]:
    """``ClassName.attr -> factory`` for every lock attribute assignment."""
    locks: Dict[str, str] = {}
    for node in ast.walk(cls):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None:
            continue
        kind = _lock_factory(value)
        if kind is None:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                locks[f"{cls.name}.{target.attr}"] = kind
    return locks


def _module_locks(tree: ast.Module) -> Dict[str, str]:
    locks: Dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            kind = _lock_factory(node.value)
            if kind is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    locks[target.id] = kind
    return locks


def _closure(
    methods: Dict[str, _FunctionFacts], getter
) -> Dict[str, set]:
    """Fixpoint of per-method sets propagated through ``self.x()`` calls."""
    result = {name: set(getter(facts)) for name, facts in methods.items()}
    changed = True
    while changed:
        changed = False
        for name, facts in methods.items():
            for callee, _, _ in facts.self_calls:
                extra = result.get(callee, set()) - result[name]
                if extra:
                    result[name] |= extra
                    changed = True
    return result


def _find_cycles(edges: Dict[str, Set[str]]) -> List[Tuple[str, ...]]:
    """Simple cycles in the lock graph, canonicalized and deduplicated."""
    cycles: Set[Tuple[str, ...]] = set()

    def dfs(start: str, node: str, path: List[str], visited: Set[str]) -> None:
        for nxt in sorted(edges.get(node, ())):
            if nxt == start:
                cycle = tuple(path)
                pivot = cycle.index(min(cycle))
                cycles.add(cycle[pivot:] + cycle[:pivot])
            elif nxt not in visited and len(path) < 16:
                visited.add(nxt)
                dfs(start, nxt, path + [nxt], visited)

    for start in sorted(edges):
        dfs(start, start, [start], {start})
    return sorted(cycles)


@register
class LockOrderRule(Rule):
    name = "lock-order"
    description = (
        "lock-acquisition cycles, non-reentrant re-entry, and untimed "
        "blocking calls while a lock is held"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        module_locks = _module_locks(module.tree)
        graph_edges: Dict[str, Set[str]] = {}
        edge_sites: Dict[Tuple[str, str], int] = {}
        findings: List[Finding] = []

        def add_edge(holder: str, acquired: str, line: int) -> None:
            graph_edges.setdefault(holder, set()).add(acquired)
            edge_sites.setdefault((holder, acquired), line)

        scopes: List[Tuple[Optional[str], Sequence[ast.stmt]]] = [(None, module.tree.body)]
        scopes += [
            (node.name, node.body)
            for node in module.tree.body
            if isinstance(node, ast.ClassDef)
        ]

        for class_name, body in scopes:
            lock_names = dict(module_locks)
            if class_name is not None:
                class_node = next(
                    node
                    for node in module.tree.body
                    if isinstance(node, ast.ClassDef) and node.name == class_name
                )
                lock_names.update(_collect_class_locks(class_node))
            methods: Dict[str, _FunctionFacts] = {}
            for node in body:
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                scanner = _FunctionScanner(lock_names, class_name, module_locks)
                for stmt in node.body:
                    scanner.scan(stmt)
                methods[node.name] = scanner.facts

            acquires = _closure(methods, lambda f: f.acquires)
            blocking = _closure(
                methods,
                lambda f: {desc for _, desc, _ in f.blocking}
                | {desc for desc, _ in f.blocking_anywhere},
            )

            for method_name, facts in methods.items():
                qual = f"{class_name}.{method_name}" if class_name else method_name
                for holder, acquired, line in facts.edges:
                    add_edge(holder, acquired, line)
                for lock, line in facts.reacquired:
                    findings.append(
                        Finding(
                            path=module.relpath,
                            line=line,
                            rule="lock-order/self-deadlock",
                            symbol=f"{qual}:{lock}",
                            message=(
                                f"{qual} re-acquires non-reentrant lock {lock} "
                                "while already holding it"
                            ),
                        )
                    )
                for held, desc, line in facts.blocking:
                    findings.append(
                        Finding(
                            path=module.relpath,
                            line=line,
                            rule="lock-order/blocking-call",
                            symbol=f"{qual}:{desc}",
                            message=f"{qual}: {desc} while holding {', '.join(held)}",
                        )
                    )
                for callee, held, line in facts.self_calls:
                    if not held or callee not in methods:
                        continue
                    for lock in acquires.get(callee, ()):
                        if lock not in held:
                            add_edge(held[-1], lock, line)
                        elif lock_names.get(lock) not in _REENTRANT_FACTORIES:
                            findings.append(
                                Finding(
                                    path=module.relpath,
                                    line=line,
                                    rule="lock-order/self-deadlock",
                                    symbol=f"{qual}->{callee}:{lock}",
                                    message=(
                                        f"{qual} calls self.{callee}() which "
                                        f"re-acquires non-reentrant lock {lock} "
                                        "already held here"
                                    ),
                                )
                            )
                    for desc in blocking.get(callee, ()):
                        findings.append(
                            Finding(
                                path=module.relpath,
                                line=line,
                                rule="lock-order/blocking-call",
                                symbol=f"{qual}->{callee}:{desc}",
                                message=(
                                    f"{qual} calls self.{callee}() ({desc}) "
                                    f"while holding {', '.join(held)}"
                                ),
                            )
                        )

        for cycle in _find_cycles(graph_edges):
            loop = " -> ".join(cycle + (cycle[0],))
            first_edge = (cycle[0], cycle[1 % len(cycle)]) if len(cycle) > 1 else None
            line = edge_sites.get(first_edge, 1) if first_edge else 1
            findings.append(
                Finding(
                    path=module.relpath,
                    line=line,
                    rule="lock-order/cycle",
                    symbol=loop,
                    message=f"lock-acquisition cycle (potential deadlock): {loop}",
                )
            )
        return findings
