"""``determinism`` — seeded randomness and clock discipline.

Two findings:

* ``determinism/unseeded-random`` — any call through the *global* RNGs
  (``np.random.<sampler>``, stdlib ``random.<fn>``) anywhere in the
  tree.  Global-RNG draws are untracked shared state: they can't be
  seeded per-component, so every numeric path in this repo threads an
  explicit ``np.random.default_rng(seed)`` generator instead.  Seeding
  calls themselves (``seed(n)`` with arguments) and generator/state
  constructors (``default_rng``, ``Generator``, ``SeedSequence``,
  ``Random(n)``...) are allowed.
* ``determinism/wall-clock`` — wall-clock reads (``time.time()``,
  ``datetime.now()``...) inside the numeric packages (``tensor``, ``nn``,
  ``streaming``, ``fleet``) where they would leak nondeterminism into
  results.  ``time.monotonic``/``perf_counter`` stay legal: they time
  *durations* (deadlines, profiling), never data.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.framework import Finding, ModuleContext, Rule, register

#: np.random attributes that construct explicit, seedable state.
_NP_ALLOWED = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "BitGenerator",
    "MT19937",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "get_state",
    "set_state",
}

#: stdlib random attributes that construct explicit state or move state around.
_RANDOM_ALLOWED = {"Random", "SystemRandom", "getstate", "setstate"}

#: wall-clock reads banned on numeric paths: module alias -> attribute names.
_WALL_CLOCK = {
    "time": {"time", "time_ns", "localtime", "ctime", "gmtime", "strftime"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}

#: packages whose outputs must be a pure function of (inputs, seed).
_NUMERIC_PARTS = ("repro/tensor/", "repro/nn/", "repro/streaming/", "repro/fleet/")


def _import_aliases(tree: ast.Module) -> Tuple[Set[str], Set[str], Set[str]]:
    """Names bound to the numpy module, the stdlib random module, and any
    callables imported *from* a random module (``from numpy.random import x``)."""
    numpy_names: Set[str] = set()
    random_names: Set[str] = set()
    from_random: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    numpy_names.add(bound)
                elif alias.name == "random":
                    random_names.add(bound)
        elif isinstance(node, ast.ImportFrom):
            if node.module in ("random", "numpy.random"):
                allowed = _RANDOM_ALLOWED if node.module == "random" else _NP_ALLOWED
                for alias in node.names:
                    if alias.name not in allowed:
                        from_random.add(alias.asname or alias.name)
    return numpy_names, random_names, from_random


def _is_seeding_call(attr: str, call: ast.Call) -> bool:
    return attr == "seed" and bool(call.args or call.keywords)


@register
class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "global-RNG draws anywhere; wall-clock reads on numeric paths "
        "(tensor/nn/streaming/fleet)"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        numpy_names, random_names, from_random = _import_aliases(module.tree)
        numeric_path = any(part in module.relpath for part in _NUMERIC_PARTS)
        findings: List[Finding] = []

        def flag(rule: str, symbol: str, message: str, line: int) -> None:
            findings.append(
                Finding(
                    path=module.relpath,
                    line=line,
                    rule=rule,
                    symbol=symbol,
                    message=message,
                )
            )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                target = func.value
                # np.random.<fn>(...)
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "random"
                    and isinstance(target.value, ast.Name)
                    and target.value.id in numpy_names
                ):
                    if func.attr not in _NP_ALLOWED and not _is_seeding_call(
                        func.attr, node
                    ):
                        flag(
                            "determinism/unseeded-random",
                            f"np.random.{func.attr}",
                            f"global-RNG call np.random.{func.attr}(); thread a "
                            "seeded np.random.default_rng() generator instead",
                            node.lineno,
                        )
                # random.<fn>(...)
                elif isinstance(target, ast.Name) and target.id in random_names:
                    if func.attr not in _RANDOM_ALLOWED and not _is_seeding_call(
                        func.attr, node
                    ):
                        flag(
                            "determinism/unseeded-random",
                            f"random.{func.attr}",
                            f"global-RNG call random.{func.attr}(); use a seeded "
                            "random.Random(seed) instance instead",
                            node.lineno,
                        )
                # wall-clock reads on numeric paths
                elif numeric_path and isinstance(target, ast.Name):
                    banned = _WALL_CLOCK.get(target.id)
                    if banned and func.attr in banned:
                        flag(
                            "determinism/wall-clock",
                            f"{target.id}.{func.attr}",
                            f"wall-clock read {target.id}.{func.attr}() on a "
                            "numeric path; results must be a pure function of "
                            "(inputs, seed)",
                            node.lineno,
                        )
            elif isinstance(func, ast.Name) and func.id in from_random:
                if not _is_seeding_call(func.id, node):
                    flag(
                        "determinism/unseeded-random",
                        func.id,
                        f"global-RNG call {func.id}() imported from a random "
                        "module; thread explicit generator state instead",
                        node.lineno,
                    )
        return findings
