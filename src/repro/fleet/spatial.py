"""Spatial drift aggregation: N correlated alarms → one incident event.

A congestion incident (the ``incident_storm`` scenario) does not drift one
sensor — it drops capacity on a corridor *and its graph neighbors*, so each
affected stream's own detectors fire independently and an operator sees N
near-simultaneous alarms with no hint that they are one event.  Only a
fleet-level view can collapse them: the
:class:`SpatialDriftAggregator` watches per-stream drift firings, projects
them onto the corridor road graph (``repro.graph`` adjacency), and when a
connected cluster of recently-breached nodes reaches the configured size it
emits a single ``spatial_incident`` :class:`~repro.streaming.drift.DriftEvent`
naming the whole cluster.

The aggregator is deliberately detector-agnostic: it consumes the typed
events the per-stream detectors already emit (coverage breaches, error
CUSUMs), so any detector added later participates for free.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.streaming.drift import DRIFT_KINDS, DriftEvent

#: Event kind emitted for a correlated cluster of per-stream drift firings.
SPATIAL_INCIDENT = "spatial_incident"


class SpatialDriftAggregator:
    """Collapse correlated per-stream drift into one spatial incident event.

    Parameters
    ----------
    adjacency:
        Dense ``(nodes, nodes)`` corridor adjacency (entries > 0 are edges);
        typically ``RoadNetwork.adjacency_matrix()`` of the corridor graph.
    window:
        How many recent steps a node's breach stays "hot" for clustering.
    min_cluster:
        Connected hot nodes required before an incident fires — the debounce
        separating one drifting corridor from a spatially-correlated event.
    cooldown:
        Steps after a firing during which the aggregator stays silent, so a
        long incident produces one event rather than one per tick.
    watch_kinds:
        Per-stream event kinds that count as a breach.
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        window: int = 24,
        min_cluster: int = 3,
        cooldown: int = 50,
        watch_kinds: Sequence[str] = DRIFT_KINDS,
    ) -> None:
        adjacency = np.asarray(adjacency, dtype=np.float64)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError("adjacency must be a square matrix")
        if window < 1 or min_cluster < 1 or cooldown < 0:
            raise ValueError("window and min_cluster must be >= 1, cooldown >= 0")
        self.adjacency = adjacency
        self.num_nodes = int(adjacency.shape[0])
        self.window = int(window)
        self.min_cluster = int(min_cluster)
        self.cooldown = int(cooldown)
        self.watch_kinds = tuple(watch_kinds)
        self._last_breach: Dict[int, int] = {}          # node -> last breach step
        self._stream_of: Dict[int, str] = {}            # node -> stream name
        self._last_fired: Optional[int] = None
        self._incidents = 0

    # ------------------------------------------------------------------ #
    def observe(
        self, node: Optional[int], stream: str, events: Iterable[DriftEvent], step: int
    ) -> None:
        """Fold one stream's tick events in (no-op for unmapped streams)."""
        if node is None:
            return
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range for {self.num_nodes} corridors")
        self._stream_of[node] = stream
        for event in events:
            if event.kind in self.watch_kinds:
                self._last_breach[node] = int(step)

    def hot_nodes(self, step: int) -> Set[int]:
        """Nodes whose last breach is within the rolling window."""
        horizon = step - self.window
        return {node for node, at in self._last_breach.items() if at > horizon}

    def _clusters(self, hot: Set[int]) -> List[Set[int]]:
        """Connected components of the breached subgraph (BFS)."""
        remaining = set(hot)
        clusters: List[Set[int]] = []
        while remaining:
            seed = remaining.pop()
            component = {seed}
            frontier = [seed]
            while frontier:
                node = frontier.pop()
                neighbors = np.nonzero(self.adjacency[node] > 0)[0]
                for neighbor in neighbors:
                    neighbor = int(neighbor)
                    if neighbor in remaining:
                        remaining.discard(neighbor)
                        component.add(neighbor)
                        frontier.append(neighbor)
            clusters.append(component)
        return clusters

    def poll(self, step: int) -> Optional[DriftEvent]:
        """Check for a qualifying cluster; returns one event (or ``None``).

        Called once per fleet tick after every stream's events have been
        observed.  The largest qualifying connected cluster wins; the
        cooldown then silences further firings while the same incident
        keeps nodes hot.
        """
        if self._last_fired is not None and step - self._last_fired < self.cooldown:
            return None
        clusters = [
            cluster
            for cluster in self._clusters(self.hot_nodes(step))
            if len(cluster) >= self.min_cluster
        ]
        if not clusters:
            return None
        cluster = max(clusters, key=len)
        self._last_fired = int(step)
        self._incidents += 1
        nodes = sorted(cluster)
        streams = [self._stream_of.get(node, f"node{node}") for node in nodes]
        return DriftEvent(
            kind=SPATIAL_INCIDENT,
            step=int(step),
            value=float(len(cluster)),
            threshold=float(self.min_cluster),
            message=(
                f"correlated drift across {len(cluster)} neighboring corridors: "
                + ", ".join(streams)
            ),
        )

    # ------------------------------------------------------------------ #
    @property
    def incidents(self) -> int:
        """Spatial incidents fired so far."""
        return self._incidents

    def stats(self) -> Dict[str, float]:
        return {
            "incidents": self._incidents,
            "tracked_nodes": len(self._last_breach),
            "last_fired": self._last_fired if self._last_fired is not None else -1,
        }

    def __repr__(self) -> str:
        return (
            f"SpatialDriftAggregator(nodes={self.num_nodes}, window={self.window}, "
            f"min_cluster={self.min_cluster}, incidents={self._incidents})"
        )
