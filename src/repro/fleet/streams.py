"""Per-stream shards: one named corridor inside a :class:`StreamFleet`.

A :class:`FleetStream` is identity plus state: the stream's *name* (unique
within the fleet), its *region* (the refit/promotion coordination domain and
default routing key), its *node* (position in the fleet's corridor graph,
feeding the spatial drift aggregator), and the
:class:`~repro.streaming.shard.StreamCore` holding everything the stream
tracks online.  The model is deliberately absent — predicts go through the
fleet's shared server.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.streaming.shard import StreamCore


class FleetStream:
    """One named per-corridor stream sharded inside a fleet.

    Parameters
    ----------
    name:
        Unique stream name (corridor id).
    core:
        The stream's online state machine.
    region:
        Coordination domain for fleet-wide refit/promotion; streams without
        a region never participate in coordinated refits.
    node:
        Index of this stream in the fleet's corridor adjacency (spatial
        drift aggregation); ``None`` opts the stream out.
    key:
        Routing key handed to the shared server per predict; defaults to
        the region (so a :class:`~repro.serving.KeyRouter` can pin regions
        to deployments) and falls back to the stream name.
    """

    def __init__(
        self,
        name: str,
        core: StreamCore,
        region: Optional[str] = None,
        node: Optional[int] = None,
        key: Optional[Any] = None,
    ) -> None:
        self.name = str(name)
        self.core = core
        self.region = str(region) if region is not None else None
        self.node = int(node) if node is not None else None
        self.key = key if key is not None else (self.region or self.name)

    def describe(self) -> Dict[str, Any]:
        """JSON-ready identity record (fleet checkpoint manifest entry)."""
        return {
            "name": self.name,
            "region": self.region,
            "node": self.node,
            "key": self.key if isinstance(self.key, (str, int, float, bool)) else str(self.key),
        }

    def __repr__(self) -> str:
        return (
            f"FleetStream({self.name!r}, region={self.region!r}, "
            f"node={self.node}, step={self.core.step})"
        )
