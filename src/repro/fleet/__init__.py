"""Fleet-scale orchestration: many streams, one shared batched serving path.

The streaming subsystem keeps *one* corridor honest online; production
traffic means hundreds of per-corridor streams in one process.  Run them as
independent :class:`~repro.streaming.StreamingForecaster` loops and every
tick costs N sequential model calls — the model dominates, so the fleet
inverts the ownership:

* each corridor keeps its **own** per-stream state — an
  :class:`~repro.streaming.shard.StreamCore` holding its adaptive conformal
  calibrator, rolling monitor, drift detectors and event log, sharded and
  checkpointed per stream;
* all per-tick predicts funnel through **one shared**
  :class:`~repro.serving.InferenceServer`: the fleet batch-submits every
  warm stream's window in one call, the micro-batcher coalesces them, and a
  tick over N streams is ``O(ceil(N / batch))`` model calls — routed
  per-corridor via :class:`~repro.serving.KeyRouter` so regions can run
  different deployments;
* the shared view enables capabilities no single stream can have: a
  **spatial drift aggregator** (correlated breaches across neighboring
  sensors collapse into one ``spatial_incident`` event instead of N
  independent alarms), **coordinated refit/promotion** (one candidate per
  drifting region, trialed across all of that region's streams through the
  deployment/routing machinery, under a refit-storm budget), and
  **whole-fleet checkpoints** that round-trip every stream's ACI / monitor /
  event-log state bit-identically.
"""

from repro.fleet.coordinator import FleetRefitPolicy, RefitCoordinator, RegionTrial
from repro.fleet.runner import FleetStepResult, StreamFleet
from repro.fleet.spatial import SpatialDriftAggregator
from repro.fleet.streams import FleetStream

__all__ = [
    "FleetRefitPolicy",
    "FleetStepResult",
    "FleetStream",
    "RefitCoordinator",
    "RegionTrial",
    "SpatialDriftAggregator",
    "StreamFleet",
]
