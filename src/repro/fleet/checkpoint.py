"""Whole-fleet checkpoints, sharded per stream.

A fleet checkpoint is a directory tree::

    <dir>/
        fleet/                      # manifest: stream identities, fleet
            checkpoint.json         # event log, coordination counters
            arrays.npz
        streams/<name>/             # one shard per stream: the full
            checkpoint.json         # StreamCore state (ACI buffers,
            arrays.npz              # monitor rings, event log, step)

Every stream's adaptive-conformal buffers, rolling monitor windows and
drift-event log round-trip **bit-identically** through the shared
``get_state`` / ``set_state`` array protocol, so a restarted fleet resumes
with warm calibration and metrics on all N streams instead of re-warming
from empty windows.  Models are *not* stored here — deployments live on the
shared server, whose checkpointing
(:meth:`~repro.serving.InferenceServer.from_checkpoint`,
``Forecaster.save``) is orthogonal; :func:`load_fleet` takes the server the
restored fleet should run against.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Union

from repro.utils.serialization import load_checkpoint, save_checkpoint

#: On-disk format revision of the fleet checkpoint tree.
FLEET_FORMAT_VERSION = 1

FLEET_SUBDIR = "fleet"
STREAMS_SUBDIR = "streams"


def save_fleet(fleet: Any, directory: Union[str, Path]) -> Path:
    """Persist a :class:`~repro.fleet.StreamFleet` as a sharded checkpoint."""
    directory = Path(directory)
    manifest = {
        "kind": "fleet",
        "format_version": FLEET_FORMAT_VERSION,
        "tick": fleet._tick,
        "history": fleet.history,
        "horizon": fleet.horizon,
        "version_prefix": fleet.version_prefix,
        "monitor_window": fleet.monitor_window,
        "streams": [stream.describe() for stream in fleet.streams.values()],
        "events": fleet.event_log.to_records(),
        "region_deployments": {
            region: name for region, name in fleet._region_deployment.items()
        },
        "coordinator": (
            fleet.coordinator.get_state() if fleet.coordinator is not None else None
        ),
    }
    save_checkpoint(directory / FLEET_SUBDIR, manifest, {})
    for name, stream in fleet.streams.items():
        state = stream.core.get_state()
        save_checkpoint(directory / STREAMS_SUBDIR / name, state["meta"], state["arrays"])
    return directory


def load_fleet(
    cls, directory: Union[str, Path], server: Any, **kwargs: Any
):
    """Rebuild a fleet from :func:`save_fleet` against a (new) shared server.

    ``kwargs`` forward to the fleet constructor (``refit_fn``,
    ``refit_policy``, ``spatial``, ``detector_factory``, ...) — behaviour
    lives in code, state in the checkpoint.  Every stream is re-registered
    under its stored identity (name / region / node / key) and its core
    state restored bit-identically.
    """
    directory = Path(directory)
    manifest, _ = load_checkpoint(directory / FLEET_SUBDIR)
    if manifest.get("kind") != "fleet":
        raise ValueError(f"{directory} is not a fleet checkpoint")
    version = manifest.get("format_version")
    if version != FLEET_FORMAT_VERSION:
        raise ValueError(
            f"unsupported fleet checkpoint format {version!r} "
            f"(this build reads version {FLEET_FORMAT_VERSION})"
        )
    kwargs.setdefault("monitor_window", int(manifest["monitor_window"]))
    kwargs.setdefault("version_prefix", str(manifest["version_prefix"]))
    fleet = cls(
        server,
        int(manifest["history"]),
        int(manifest["horizon"]),
        **kwargs,
    )
    from repro.streaming.drift import EventLog

    fleet._tick = int(manifest["tick"])
    fleet.event_log = EventLog.from_records(manifest["events"])
    fleet._region_deployment = {
        str(region): name for region, name in (manifest["region_deployments"] or {}).items()
    }
    if fleet.coordinator is not None and manifest.get("coordinator") is not None:
        fleet.coordinator.set_state(manifest["coordinator"])
    for descriptor in manifest["streams"]:
        stream = fleet.add_stream(
            descriptor["name"],
            region=descriptor.get("region"),
            node=descriptor.get("node"),
            key=descriptor.get("key"),
        )
        meta, arrays = load_checkpoint(
            directory / STREAMS_SUBDIR / descriptor["name"]
        )
        stream.core.set_state({"meta": meta, "arrays": arrays})
    # Re-point the regions' routes at their promoted deployments — the
    # restored fleet's router starts empty, and a promotion the snapshot
    # reports as live must actually serve.  Regions whose deployment no
    # longer exists on this server fall back to the default route and are
    # dropped from the record, so ops output never claims a phantom model.
    pool = getattr(server, "pool", None)
    if pool is not None:
        for region, name in list(fleet._region_deployment.items()):
            if name is None:
                continue
            if name not in pool:
                del fleet._region_deployment[region]
            elif fleet.router is not None:
                fleet.router.set_routes(
                    {stream.key: name for stream in fleet.region_streams(region)}
                )
            elif pool.default_name != name:
                # No key routing: mirror the live promotion path, which moves
                # the default route.
                server.promote(name)
    return fleet
