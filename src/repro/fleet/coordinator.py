"""Coordinated refit and promotion across the streams of a region.

When a regime shift hits a region, every one of its streams detects drift
within a few ticks of each other.  Left to the single-stream machinery each
would launch its own background refit — a *refit storm*: 200 drifting
corridors means 200 training jobs for what is one underlying event.  The
:class:`RefitCoordinator` replaces that with quorum-triggered, budgeted
coordination:

* per-stream drift firings are **pooled per region**; only when ``quorum``
  distinct streams of one region drift within ``window`` steps (and the
  region is out of cooldown, and the fleet-wide ``max_concurrent`` budget
  has room) does ONE background refit launch for the whole region;
* the refitted candidate is **deployed once** on the shared server and
  trialed across *all* of the region's streams through a
  :class:`RegionTrial` — the fleet analogue of the single-stream
  shadow/canary trial: candidate and incumbent are scored on identical
  live observations in twin rolling monitors, and the candidate is promoted
  (the region's routes re-pointed at it atomically) only when its rolling
  MAE/coverage win;
* a losing candidate is undeployed; either way zero in-flight requests are
  dropped (the serving pool's snapshot/fallback semantics).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.streaming.monitor import StreamingMonitor
from repro.streaming.shard import ResolvedStep

#: Signature of a fleet refit: region name + per-stream recent observations.
FleetRefitFn = Callable[[str, Dict[str, np.ndarray]], Any]


@dataclass
class FleetRefitPolicy:
    """Knobs of fleet-wide refit/promotion coordination.

    Parameters
    ----------
    quorum:
        Distinct drifted streams a region needs within ``window`` steps
        before one coordinated refit launches.
    window:
        Tick window (in steps) the quorum is counted over.
    cooldown:
        Minimum steps between coordinated refits of the same region.
    max_concurrent:
        The refit-storm budget: fleet-wide cap on simultaneously running
        refits plus open trials.
    mode:
        ``"trial"`` (default) stages the candidate and promotes it only
        after it wins its :class:`RegionTrial`; ``"immediate"`` re-points
        the region at the candidate as soon as the refit finishes.
    eval_steps:
        Scored *stream-steps* (one per stream per resolved tick, summed
        over the region) before the trial verdict.
    mae_tolerance / coverage_tolerance / metric_window:
        Verdict thresholds, matching
        :class:`~repro.streaming.promotion.PromotionPolicy` semantics.
    background:
        Run refits on daemon threads (default) or synchronously inside the
        triggering tick.
    """

    quorum: int = 3
    window: int = 50
    cooldown: int = 200
    max_concurrent: int = 1
    mode: str = "trial"
    eval_steps: int = 60
    mae_tolerance: float = 0.0
    coverage_tolerance: float = 0.02
    metric_window: int = 200
    background: bool = True

    def __post_init__(self) -> None:
        if self.quorum < 1 or self.window < 1 or self.eval_steps < 1:
            raise ValueError("quorum, window and eval_steps must be >= 1")
        if self.cooldown < 0 or self.max_concurrent < 1:
            raise ValueError("cooldown must be >= 0 and max_concurrent >= 1")
        if self.mode not in ("trial", "immediate"):
            raise ValueError(f"mode must be 'trial' or 'immediate', got {self.mode!r}")
        if self.coverage_tolerance < 0.0 or self.metric_window < 1:
            raise ValueError("coverage_tolerance must be >= 0 and metric_window >= 1")


class RegionTrial:
    """Live candidate-vs-incumbent evaluation across one region's streams.

    The fleet records every candidate forecast per stream (made on exactly
    the windows the incumbent forecast) and resolves both sides against the
    same observations; scoring starts per stream at the step the candidate's
    first forecast was made, so the comparison always covers identical
    forecast sets.
    """

    def __init__(
        self,
        region: str,
        name: str,
        version: str,
        policy: FleetRefitPolicy,
        nominal: float,
        horizon: int,
        start_steps: Dict[str, int],
    ) -> None:
        self.region = str(region)
        self.name = str(name)
        self.version = str(version)
        self.policy = policy
        self.nominal = float(nominal)
        self.horizon = int(horizon)
        self.start_steps = dict(start_steps)
        significance = 1.0 - self.nominal
        self.candidate_monitor = StreamingMonitor(
            window=policy.metric_window, significance=significance
        )
        self.incumbent_monitor = StreamingMonitor(
            window=policy.metric_window, significance=significance
        )
        self._pending: Dict[str, deque] = {
            stream: deque(maxlen=self.horizon) for stream in self.start_steps
        }
        self._lock = threading.Lock()
        self._candidate_scored = 0
        self._incumbent_scored = 0

    @property
    def streams(self) -> List[str]:
        return list(self.start_steps)

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def record(
        self,
        stream: str,
        step: int,
        mean: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> None:
        """Remember one candidate forecast ``(horizon, nodes)`` for a stream."""
        pending = self._pending.get(stream)
        if pending is None:
            return
        with self._lock:
            pending.append(
                {"step": int(step), "mean": mean, "lower": lower, "upper": upper}
            )

    def resolve(
        self, stream: str, step: int, observation: np.ndarray, valid: np.ndarray
    ) -> None:
        """Score the candidate forecasts this stream's observation completes."""
        pending = self._pending.get(stream)
        if pending is None:
            return
        masked = np.where(valid, observation, np.nan)
        targets, means, lowers, uppers = [], [], [], []
        with self._lock:
            for entry in pending:
                h = step - entry["step"] - 1
                if not 0 <= h < self.horizon:
                    continue
                targets.append(masked)
                means.append(entry["mean"][h])
                lowers.append(entry["lower"][h])
                uppers.append(entry["upper"][h])
        if targets:
            scored = self.candidate_monitor.update(
                np.stack(targets), np.stack(means), np.stack(lowers), np.stack(uppers)
            )
            if scored is not None:
                with self._lock:
                    self._candidate_scored += 1

    def observe_incumbent(self, stream: str, resolved: ResolvedStep) -> None:
        """Score the incumbent's resolutions made from post-trial forecasts."""
        start = self.start_steps.get(stream)
        if start is None or resolved.steps is None:
            return
        keep = resolved.steps >= start
        if not keep.any():
            return
        scored = self.incumbent_monitor.update(
            resolved.target[keep],
            resolved.mean[keep],
            resolved.lower[keep],
            resolved.upper[keep],
        )
        if scored is not None:
            with self._lock:
                self._incumbent_scored += 1

    # ------------------------------------------------------------------ #
    # Verdict
    # ------------------------------------------------------------------ #
    @property
    def scored_steps(self) -> int:
        """Scored stream-steps both sides have accumulated."""
        with self._lock:
            return min(self._candidate_scored, self._incumbent_scored)

    def verdict(self) -> Optional[Dict[str, Any]]:
        """Promote/reject decision, or ``None`` while the trial still runs."""
        if self.scored_steps < self.policy.eval_steps:
            return None
        candidate = self.candidate_monitor.snapshot()
        incumbent = self.incumbent_monitor.snapshot()
        cand_mae, inc_mae = candidate["mae"], incumbent["mae"]
        cand_gap = abs(candidate["coverage"] / 100.0 - self.nominal)
        inc_gap = abs(incumbent["coverage"] / 100.0 - self.nominal)
        mae_ok = np.isfinite(cand_mae) and (
            cand_mae <= inc_mae * (1.0 + self.policy.mae_tolerance)
        )
        coverage_ok = cand_gap <= inc_gap + self.policy.coverage_tolerance
        return {
            "promote": bool(mae_ok and coverage_ok),
            "candidate_mae": float(cand_mae),
            "incumbent_mae": float(inc_mae),
            "candidate_coverage": float(candidate["coverage"]),
            "incumbent_coverage": float(incumbent["coverage"]),
            "scored_steps": int(self.scored_steps),
        }

    def __repr__(self) -> str:
        return (
            f"RegionTrial({self.region!r}, candidate={self.name!r}, "
            f"scored={self.scored_steps}/{self.policy.eval_steps})"
        )


class RefitCoordinator:
    """Quorum-triggered, budgeted refit launching plus open-trial registry.

    The coordinator owns the bookkeeping; the fleet runner owns the serving
    side (deploying candidates, opening trials, re-pointing routes) so that
    everything touching the server happens on the tick thread.
    """

    #: Runtime-only state the checkpoint legitimately drops: in-flight refit
    #: threads cannot cross a process boundary, and their undrained results
    #: belong to the killed process.  (``trials`` are rebuilt by the fleet
    #: runner, which re-deploys candidates itself.)
    _CHECKPOINT_EXEMPT = ("_inflight", "_finished")

    def __init__(
        self,
        refit_fn: FleetRefitFn,
        policy: Optional[FleetRefitPolicy] = None,
    ) -> None:
        if not callable(refit_fn):
            raise TypeError("refit_fn must be callable: refit_fn(region, recents) -> model")
        self.refit_fn = refit_fn
        self.policy = policy if policy is not None else FleetRefitPolicy()
        self.trials: Dict[str, RegionTrial] = {}
        self._lock = threading.Lock()
        self._drifted: Dict[str, Dict[str, int]] = {}       # region -> stream -> step
        self._last_trigger: Dict[str, int] = {}
        self._inflight: Dict[str, threading.Thread] = {}
        self._finished: List[Tuple[str, Any, Optional[Exception]]] = []
        self._refit_count = 0
        self._triggers = 0

    # ------------------------------------------------------------------ #
    @property
    def active(self) -> int:
        """Refits in flight or awaiting staging, plus open trials.

        This is the budgeted quantity: a refit stays "active" from launch
        until its candidate either finishes a trial or fails — including the
        gap between the background thread finishing and the fleet draining
        :meth:`take_finished`, so a fast refit cannot slip a second region
        past ``max_concurrent`` within one tick.
        """
        with self._lock:
            inflight = sum(1 for t in self._inflight.values() if t.is_alive())
            pending = len(self._finished)
        return inflight + pending + len(self.trials)

    def note_drift(self, region: Optional[str], stream: str, step: int) -> None:
        """Record one stream's drift firing for quorum counting."""
        if region is None:
            return
        with self._lock:
            self._drifted.setdefault(region, {})[stream] = int(step)

    def drifted_streams(self, region: str, step: int) -> List[str]:
        """Streams of ``region`` that drifted within the quorum window."""
        horizon = step - self.policy.window
        with self._lock:
            return [
                stream
                for stream, at in self._drifted.get(region, {}).items()
                if at > horizon
            ]

    # ------------------------------------------------------------------ #
    def maybe_trigger(
        self, step: int, recents: Callable[[str], Dict[str, np.ndarray]]
    ) -> List[str]:
        """Launch coordinated refits for every region at quorum; returns them.

        ``recents`` maps a region to its per-stream recent-observation
        arrays (fetched lazily, only for regions that actually trigger).
        The fleet-wide budget is re-checked per region, so one tick can
        never launch more refits than ``max_concurrent`` allows.
        """
        policy = self.policy
        triggered: List[str] = []
        with self._lock:
            regions = list(self._drifted)
        for region in regions:
            if self.active >= policy.max_concurrent:
                break
            if region in self.trials:
                continue
            with self._lock:
                thread = self._inflight.get(region)
                if thread is not None and thread.is_alive():
                    continue
                last = self._last_trigger.get(region)
            if last is not None and step - last < policy.cooldown:
                continue
            if len(self.drifted_streams(region, step)) < policy.quorum:
                continue
            self._launch(region, step, recents(region))
            triggered.append(region)
        return triggered

    def _launch(self, region: str, step: int, recent: Dict[str, np.ndarray]) -> None:
        with self._lock:
            self._last_trigger[region] = int(step)
            self._drifted[region] = {}
            self._triggers += 1

        def work() -> None:
            try:
                model = self.refit_fn(region, recent)
            except Exception as error:  # surfaced via take_finished
                with self._lock:
                    self._finished.append((region, None, error))
                return
            with self._lock:
                self._finished.append((region, model, None))

        if self.policy.background:
            thread = threading.Thread(
                target=work, name=f"repro-fleet-refit-{region}", daemon=True
            )
            with self._lock:
                self._inflight[region] = thread
            thread.start()
        else:
            work()

    def take_finished(self) -> List[Tuple[str, Any, Optional[Exception]]]:
        """Drain completed refits as ``(region, model, error)`` records."""
        with self._lock:
            finished, self._finished = self._finished, []
            for region, _, _ in finished:
                self._inflight.pop(region, None)
        return finished

    def next_candidate_name(self, region: str, prefix: str) -> Tuple[str, str]:
        """Allocate the candidate's stable deployment name and version."""
        with self._lock:
            self._refit_count += 1
            count = self._refit_count
        return f"{prefix}-{region}-cand{count}", f"{prefix}-{region}-recal{count}"

    def join(self, timeout: Optional[float] = 30.0) -> None:
        """Block until all in-flight background refits have finished."""
        with self._lock:
            threads = list(self._inflight.values())
        for thread in threads:
            thread.join(timeout=timeout)

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            inflight = [r for r, t in self._inflight.items() if t.is_alive()]
            return {
                "triggers": self._triggers,
                "refits_completed": self._refit_count,
                "inflight_regions": inflight,
                "open_trials": {region: repr(trial) for region, trial in self.trials.items()},
                "last_trigger": dict(self._last_trigger),
            }

    def get_state(self) -> Dict[str, Any]:
        """JSON-ready counters + quorum evidence (checkpointed with the fleet).

        ``drifted`` carries the partial quorum: without it a fleet restored
        mid-episode forgets which streams already fired, and a region that
        was one drift short of quorum at the kill never refits after the
        restore (the fleet-level analogue of the PR-6 detector-state bug).
        """
        with self._lock:
            return {
                "refit_count": self._refit_count,
                "triggers": self._triggers,
                "last_trigger": {k: int(v) for k, v in self._last_trigger.items()},
                "drifted": {
                    region: {stream: int(step) for stream, step in streams.items()}
                    for region, streams in self._drifted.items()
                },
            }

    def set_state(self, state: Dict[str, Any]) -> "RefitCoordinator":
        with self._lock:
            self._refit_count = int(state.get("refit_count", 0))
            self._triggers = int(state.get("triggers", 0))
            self._last_trigger = {
                str(k): int(v) for k, v in (state.get("last_trigger") or {}).items()
            }
            self._drifted = {
                str(region): {str(s): int(at) for s, at in (streams or {}).items()}
                for region, streams in (state.get("drifted") or {}).items()
            }
        return self

    def __repr__(self) -> str:
        return (
            f"RefitCoordinator(active={self.active}, "
            f"budget={self.policy.max_concurrent}, triggers={self._triggers})"
        )
