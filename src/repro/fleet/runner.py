"""The fleet loop: many per-corridor streams, one shared batched predict path.

:class:`StreamFleet` owns N named :class:`~repro.fleet.streams.FleetStream`
shards and drives them in lock-step ticks.  One :meth:`tick` ingests one
observation row per stream, then **batch-submits every warm stream's window
to the shared :class:`~repro.serving.InferenceServer` in a single call** —
the micro-batcher coalesces them, so the model runs ``O(ceil(N / batch))``
times instead of N, with per-corridor keys routed through the server's
:class:`~repro.serving.KeyRouter` so regions can run different deployments.

On top of the shared view the fleet layers the capabilities single streams
cannot have:

* **spatial drift aggregation** — per-stream detector firings are projected
  onto the corridor graph; a connected cluster of breached corridors
  collapses into one ``spatial_incident`` event
  (:class:`~repro.fleet.spatial.SpatialDriftAggregator`);
* **coordinated refit/promotion** — quorum-triggered, budget-capped region
  refits whose single candidate is deployed once and trialed across all of
  the region's streams before its routes are re-pointed
  (:class:`~repro.fleet.coordinator.RefitCoordinator`);
* **whole-fleet checkpoints** — :meth:`save` / :meth:`load` shard every
  stream's ACI/monitor/event-log state per stream and round-trip it
  bit-identically (:mod:`repro.fleet.checkpoint`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.fleet.coordinator import FleetRefitFn, FleetRefitPolicy, RefitCoordinator, RegionTrial
from repro.obs.profiler import phase as obs_phase
from repro.obs.profiler import profiling_enabled, record_phase
from repro.obs.slo import fleet_source, server_source
from repro.obs.trace import start_trace
from repro.fleet.spatial import SpatialDriftAggregator
from repro.fleet.streams import FleetStream
from repro.serving.router import KeyRouter, Router
from repro.streaming.drift import DRIFT_KINDS, DriftEvent, EventLog
from repro.streaming.runner import StepResult
from repro.streaming.shard import StreamCore
from repro.utils.jsonsafe import json_ready


@dataclass
class FleetStepResult:
    """Everything one :meth:`StreamFleet.tick` produced.

    ``results`` maps stream names to their per-stream
    :class:`~repro.streaming.runner.StepResult`; ``events`` holds the
    *fleet-level* events of the tick (spatial incidents, refit coordination,
    promotions) — per-stream detector events stay on the per-stream results.
    """

    tick: int
    results: Dict[str, StepResult]
    events: List[DriftEvent] = field(default_factory=list)

    def __getitem__(self, name: str) -> StepResult:
        return self.results[name]

    def __iter__(self):
        return iter(self.results.items())

    def __len__(self) -> int:
        return len(self.results)


class StreamFleet:
    """Many named per-corridor streams over one shared inference server.

    Parameters
    ----------
    server:
        The shared (started) :class:`~repro.serving.InferenceServer` all
        per-tick predicts funnel through.  A plain default router is
        upgraded to a :class:`~repro.serving.KeyRouter` so coordinated
        promotion can re-point individual regions; an existing ``KeyRouter``
        is used as-is; any other router disables key re-pointing (region
        promotion then falls back to :meth:`InferenceServer.promote`).
    history, horizon:
        Window geometry shared by every stream.
    aci:
        Fleet-wide keyword defaults for each stream's
        :class:`~repro.streaming.aci.ACIConfig` (per-stream overrides merge
        on top).
    monitor_window:
        Rolling window of each stream's default monitor.
    detector_factory:
        Zero-argument callable building a *fresh* detector list per stream
        (detectors are stateful and must not be shared); ``None`` gives each
        stream the core's defaults.
    refit_fn:
        ``refit_fn(region, recents) -> model`` producing one region-wide
        candidate from ``{stream: (steps, nodes) recent observations}``.
        Enables the :class:`RefitCoordinator`.
    refit_policy:
        :class:`~repro.fleet.coordinator.FleetRefitPolicy` overrides.
    spatial:
        A :class:`~repro.fleet.spatial.SpatialDriftAggregator` over the
        corridor graph (streams opt in via their ``node``).
    version_prefix:
        Prefix of coordinated candidate deployment names/versions.
    timeout:
        Per-tick bound on waiting for the server's prediction futures.
    drift_kinds:
        Per-stream event kinds that count as drift for refit-quorum
        counting; extend it when ``detector_factory`` builds custom
        detectors with their own event kinds (defaults to
        :data:`repro.streaming.drift.DRIFT_KINDS`).  The spatial
        aggregator filters by its own ``watch_kinds`` and sees every
        per-stream event.
    """

    def __init__(
        self,
        server: Any,
        history: int,
        horizon: int,
        *,
        aci: Optional[Dict[str, Any]] = None,
        monitor_window: int = 288,
        detector_factory: Optional[Any] = None,
        refit_fn: Optional[FleetRefitFn] = None,
        refit_policy: Optional[FleetRefitPolicy] = None,
        spatial: Optional[SpatialDriftAggregator] = None,
        version_prefix: str = "fleet",
        timeout: Optional[float] = 60.0,
        drift_kinds: Sequence[str] = DRIFT_KINDS,
    ) -> None:
        if history < 1 or horizon < 1:
            raise ValueError("history and horizon must be >= 1")
        self.drift_kinds = tuple(drift_kinds)
        self.server = server
        self.history = int(history)
        self.horizon = int(horizon)
        self.default_aci = dict(aci) if aci else {}
        self.monitor_window = int(monitor_window)
        self.detector_factory = detector_factory
        self.spatial = spatial
        self.version_prefix = str(version_prefix)
        self.timeout = timeout
        self.streams: Dict[str, FleetStream] = {}
        self.event_log = EventLog()
        self.coordinator = (
            RefitCoordinator(refit_fn, policy=refit_policy) if refit_fn is not None else None
        )
        router = getattr(server, "router", None)
        if isinstance(router, KeyRouter):
            self.router: Optional[KeyRouter] = router
        elif type(router) is Router:
            # Upgrade the inert default policy so regions can be re-pointed;
            # unmapped keys still fall through to the pool default.
            self.router = KeyRouter({})
            server.router = self.router
        else:
            self.router = None
        self._tick = 0
        self._region_deployment: Dict[str, Optional[str]] = {}
        self.slo: Optional[Any] = None
        self._slo_every = 1

    # ------------------------------------------------------------------ #
    # Stream registration
    # ------------------------------------------------------------------ #
    def add_stream(
        self,
        name: str,
        *,
        region: Optional[str] = None,
        node: Optional[int] = None,
        key: Optional[Any] = None,
        monitor: Optional[Any] = None,
        detectors: Optional[Sequence[Any]] = None,
        aci: Optional[Dict[str, Any]] = None,
        refit_window: int = 288,
    ) -> FleetStream:
        """Register one named per-corridor stream (before or between ticks)."""
        name = str(name)
        if name in self.streams:
            raise ValueError(f"a stream named {name!r} already exists")
        if not name or "/" in name or "\\" in name or name in (".", ".."):
            # Names become per-stream checkpoint directory components.
            raise ValueError(
                f"stream name {name!r} is not a valid checkpoint path component"
            )
        if (
            node is not None
            and self.spatial is not None
            and not 0 <= int(node) < self.spatial.num_nodes
        ):
            # Fail at registration: an out-of-range node would otherwise
            # raise mid-tick, after some streams already resolved their
            # pending forecasts for the step.
            raise IndexError(
                f"node {node} out of range for the spatial aggregator's "
                f"{self.spatial.num_nodes} corridors"
            )
        if node is not None and self.spatial is not None:
            taken = {
                stream.node: stream.name
                for stream in self.streams.values()
                if stream.node is not None
            }
            if int(node) in taken:
                # Two streams on one corridor node would conflate their
                # breaches and misattribute spatial incidents; without an
                # aggregator the node is inert metadata and may repeat.
                raise ValueError(
                    f"node {node} is already mapped to stream {taken[int(node)]!r}"
                )
        if detectors is None and self.detector_factory is not None:
            detectors = self.detector_factory()
        if monitor is None:
            from repro.streaming.monitor import StreamingMonitor

            significance = {**self.default_aci, **(aci or {})}.get("significance", 0.05)
            monitor = StreamingMonitor(
                window=self.monitor_window, significance=significance
            )
        core = StreamCore(
            self.history,
            self.horizon,
            aci={**self.default_aci, **(aci or {})},
            monitor=monitor,
            detectors=detectors,
            refit_window=refit_window,
        )
        stream = FleetStream(name, core, region=region, node=node, key=key)
        self.streams[stream.name] = stream
        return stream

    def add_streams(
        self,
        names: Sequence[str],
        *,
        regions: Optional[Sequence[Optional[str]]] = None,
        nodes: Optional[Sequence[Optional[int]]] = None,
        **kwargs: Any,
    ) -> List[FleetStream]:
        """Register many streams at once (aligned ``regions`` / ``nodes``)."""
        if regions is not None and len(regions) != len(names):
            raise ValueError("regions must align with names")
        if nodes is not None and len(nodes) != len(names):
            raise ValueError("nodes must align with names")
        for shared in ("detectors", "monitor"):
            if shared in kwargs:
                # One stateful instance across N streams would interleave
                # their signals; per-stream construction is the only safe
                # bulk path.
                raise ValueError(
                    f"add_streams cannot share one {shared} instance across "
                    "streams; use detector_factory / per-stream add_stream"
                )
        return [
            self.add_stream(
                name,
                region=regions[index] if regions is not None else None,
                node=nodes[index] if nodes is not None else None,
                **kwargs,
            )
            for index, name in enumerate(names)
        ]

    def __len__(self) -> int:
        return len(self.streams)

    def __getitem__(self, name: str) -> FleetStream:
        return self.streams[name]

    def region_streams(self, region: Optional[str]) -> List[FleetStream]:
        return [s for s in self.streams.values() if s.region == region]

    # ------------------------------------------------------------------ #
    # The fleet tick
    # ------------------------------------------------------------------ #
    def tick(
        self,
        observations: Mapping[str, np.ndarray],
        masks: Optional[Mapping[str, np.ndarray]] = None,
    ) -> FleetStepResult:
        """Advance every observed stream by one step with batched predicts.

        ``observations`` maps stream names to their new observation rows
        (streams without a row this tick are simply skipped).  Phases:
        resolve + drift-detect each stream, aggregate spatially, settle
        trial verdicts, stage finished refits, check refit quorums, then
        batch-submit every warm window through the shared server and record
        the calibrated forecasts.

        When tracing is enabled each tick is its own trace: the root
        ``fleet.tick`` span is active on this thread for the whole tick, so
        the batched submits hand its context to the server's worker threads
        and the batch/model spans parent under it.
        """
        with start_trace(
            "fleet.tick",
            attrs={"tick": self._tick, "observed_streams": len(observations)},
        ):
            return self._tick_inner(observations, masks)

    def _tick_inner(
        self,
        observations: Mapping[str, np.ndarray],
        masks: Optional[Mapping[str, np.ndarray]] = None,
    ) -> FleetStepResult:
        """The tick body; see :meth:`tick` (which wraps it in the tick trace)."""
        unknown = set(observations) - set(self.streams)
        if unknown:
            raise KeyError(f"unknown streams in tick: {sorted(unknown)}")
        # Validate every row BEFORE Phase 1 mutates anything: a malformed
        # observation surfacing mid-tick would leave the streams processed
        # so far resolved-but-not-advanced, and a retry would double-count
        # their calibrator/monitor updates.
        normalized: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for name in observations:
            core = self.streams[name].core
            obs, valid = core.normalize(
                observations[name], masks.get(name) if masks is not None else None
            )
            expected = core._last_filled
            if expected is not None and obs.size != expected.size:
                raise ValueError(
                    f"stream {name!r} expects {expected.size} sensors per row, "
                    f"got {obs.size}"
                )
            normalized[name] = (obs, valid)
        tick_index = self._tick
        fleet_events: List[DriftEvent] = []
        ingested: Dict[str, Tuple[FleetStream, int, np.ndarray, np.ndarray]] = {}

        # Phase 1 — observe: resolve pending forecasts, update calibration,
        # run detectors, feed the trial / coordinator / spatial layers.
        for name, stream in self.streams.items():
            if name not in normalized:
                continue
            core = stream.core
            obs, valid = normalized[name]
            s = core.step
            resolved = core.resolve(s, obs, valid)
            trial = self._trial_for(stream.region)
            if trial is not None:
                trial.observe_incumbent(name, resolved)
                trial.resolve(name, s, obs, valid)
            events = core.detect(s, resolved.covered, resolved.abs_error)
            resolved.events = events
            if events:
                if self.coordinator is not None and any(
                    event.kind in self.drift_kinds for event in events
                ):
                    self.coordinator.note_drift(stream.region, name, tick_index)
                if self.spatial is not None:
                    # The aggregator applies its own watch_kinds filter, so a
                    # spatial-specific kind set needs no fleet-side mirror.
                    self.spatial.observe(stream.node, name, events, tick_index)
            resolved.filled = core.append(obs, valid)
            ingested[name] = (stream, s, valid, resolved)

        # Phase 2 — spatial aggregation: correlated breaches across
        # neighboring corridors collapse into one incident event.
        if self.spatial is not None:
            with obs_phase("spatial_agg"):
                incident = self.spatial.poll(tick_index)
            if incident is not None:
                fleet_events.append(self.event_log.append(incident))

        if self.coordinator is not None:
            # Phase 3 — settle any region trial that reached its verdict.
            for region, trial in list(self.coordinator.trials.items()):
                decision = trial.verdict()
                if decision is not None:
                    fleet_events.extend(self._finish_trial(trial, decision, tick_index))
            # Phase 4 — finished background refits become staged candidates.
            for region, model, error in self.coordinator.take_finished():
                if error is not None:
                    fleet_events.append(
                        self.event_log.append(
                            DriftEvent(
                                kind="region_refit_failed",
                                step=tick_index,
                                value=0.0,
                                threshold=0.0,
                                message=f"{region}: {type(error).__name__}: {error}",
                            )
                        )
                    )
                    continue
                fleet_events.extend(self._stage_candidate(region, model, tick_index))
            # Phase 5 — quorum check: launch at most budget-many new refits.
            for region in self.coordinator.maybe_trigger(tick_index, self._region_recents):
                fleet_events.append(
                    self.event_log.append(
                        DriftEvent(
                            kind="region_refit_started",
                            step=tick_index,
                            value=float(self.coordinator.policy.quorum),
                            threshold=float(self.coordinator.policy.quorum),
                            message=(
                                f"coordinated refit of region {region!r} "
                                f"(quorum {self.coordinator.policy.quorum} reached)"
                            ),
                        )
                    )
                )

        # Phase 6 — predict: one batch submit for every warm stream (plus the
        # candidate copies of trialed regions), coalesced by the micro-batcher.
        with obs_phase("window_build"):
            warm_windows: Dict[str, np.ndarray] = {}
            for name in ingested:
                window = self.streams[name].core.window()
                if window is not None:
                    warm_windows[name] = window[0]
            warm = list(warm_windows)
            windows = [warm_windows[name] for name in warm]
            keys: List[Any] = [self.streams[name].key for name in warm]
            deployments: List[Optional[str]] = [None] * len(warm)
            trial_slots: List[Tuple[RegionTrial, str]] = []
            if self.coordinator is not None:
                for trial in self.coordinator.trials.values():
                    for name in trial.streams:
                        if name in warm_windows:  # built from ingested streams only
                            trial_slots.append((trial, name))
                            windows.append(warm_windows[name])
                            keys.append(self.streams[name].key)
                            deployments.append(trial.name)
        predictions: Dict[str, Tuple[Any, np.ndarray, np.ndarray]] = {}
        if windows:
            profiling = profiling_enabled()
            wait_seconds, waited = 0.0, 0
            futures = self.server.submit_many(windows, keys=keys, deployments=deployments)
            # Every future is consumed under try/except: a deployment whose
            # predict raises (or times out) must degrade to a missing
            # forecast — not abort the tick mid-way, which would strand every
            # stream's step/pending ledger at an un-advanced state.
            for name, future in zip(warm, futures[: len(warm)]):
                wait_start = time.perf_counter() if profiling else 0.0
                try:
                    raw = future.result(timeout=self.timeout)
                except Exception as error:
                    fleet_events.append(
                        self.event_log.append(
                            DriftEvent(
                                kind="stream_predict_failed",
                                step=tick_index,
                                value=0.0,
                                threshold=0.0,
                                message=f"{name}: {type(error).__name__}: {error}",
                            )
                        )
                    )
                    continue
                finally:
                    if profiling:
                        wait_seconds += time.perf_counter() - wait_start
                        waited += 1
                predictions[name] = self.streams[name].core.record(raw)
            failed_trials: Dict[str, Tuple[RegionTrial, Exception]] = {}
            for (trial, name), future in zip(trial_slots, futures[len(warm):]):
                if trial.region in failed_trials:
                    continue
                wait_start = time.perf_counter() if profiling else 0.0
                try:
                    candidate_raw = future.result(timeout=self.timeout)
                except Exception as error:
                    failed_trials[trial.region] = (trial, error)
                    continue
                finally:
                    if profiling:
                        wait_seconds += time.perf_counter() - wait_start
                        waited += 1
                _, cand_lower, cand_upper = self.streams[name].core.calibrate(candidate_raw)
                trial.record(
                    name,
                    self.streams[name].core.step,
                    candidate_raw.mean[0],
                    cand_lower[0],
                    cand_upper[0],
                )
            # A candidate that cannot even predict has failed its trial: the
            # broken-refit analogue of a rejection (undeploy, zero drops).
            for trial, error in failed_trials.values():
                fleet_events.extend(self._abort_trial(trial, error, tick_index))
            if profiling and waited:
                # Time this thread spent blocked on the shared server; the
                # model_forward it overlaps runs on the worker threads.
                record_phase("batch_wait", wait_seconds, count=waited)

        # Phase 7 — advance and assemble the per-stream results.
        results: Dict[str, StepResult] = {}
        for name, (stream, s, valid, resolved) in ingested.items():
            stream.core.advance()
            prediction, lower, upper = predictions.get(name, (None, None, None))
            results[name] = StepResult(
                step=s,
                observed=resolved.filled,
                mask=valid,
                prediction=prediction,
                lower=lower,
                upper=upper,
                coverage=stream.core.monitor.coverage,
                events=resolved.events,
            )
        self._tick += 1

        # Phase 8 (optional) — sample metric sources and evaluate SLOs.  The
        # engine only *reads* monitor/stats state (never stream state or
        # RNGs), so an attached engine leaves fleet results bit-identical.
        if self.slo is not None and tick_index % self._slo_every == 0:
            with obs_phase("slo_eval"):
                self.slo.step(tick_index)

        return FleetStepResult(tick=tick_index, results=results, events=fleet_events)

    def run(
        self,
        feeds: Mapping[str, Iterable[np.ndarray]],
        max_steps: Optional[int] = None,
    ) -> List[FleetStepResult]:
        """Drive :meth:`tick` over per-stream feeds until every feed ends.

        Feeds may have unequal lengths: a stream whose feed dries up simply
        stops being observed (its fetched rows are never discarded), while
        the remaining streams keep ticking.
        """
        iterators = {name: iter(feed) for name, feed in feeds.items()}
        results: List[FleetStepResult] = []
        while iterators and (max_steps is None or len(results) < max_steps):
            observations: Dict[str, np.ndarray] = {}
            for name, iterator in list(iterators.items()):
                try:
                    observations[name] = next(iterator)
                except StopIteration:
                    del iterators[name]
            if not observations:
                break
            results.append(self.tick(observations))
        return results

    # ------------------------------------------------------------------ #
    # SLO evaluation
    # ------------------------------------------------------------------ #
    def attach_slo(self, engine: Any, every: int = 1, sources: bool = True) -> Any:
        """Evaluate ``engine`` at the end of every ``every``-th fleet tick.

        The fleet owns the clock, so attaching here is what makes SLO
        evaluation deterministic: samples land at tick indices, not wall
        times.  With ``sources=True`` the engine's history gets this fleet
        (``fleet.*`` monitor gauges + event counters) and its inference
        server (``server.*`` stats) registered as metric sources; pass
        ``False`` when the history is pre-wired.  Returns ``engine``.
        """
        if every < 1:
            raise ValueError("every must be >= 1")
        if sources:
            engine.history.add_source("fleet", fleet_source(self))
            engine.history.add_source("server", server_source(self.server))
        self.slo = engine
        self._slo_every = int(every)
        return engine

    # ------------------------------------------------------------------ #
    # Coordinated refits and promotion
    # ------------------------------------------------------------------ #
    def _trial_for(self, region: Optional[str]) -> Optional[RegionTrial]:
        if self.coordinator is None or region is None:
            return None
        return self.coordinator.trials.get(region)

    def _region_recents(self, region: str) -> Dict[str, np.ndarray]:
        recents: Dict[str, np.ndarray] = {}
        for stream in self.region_streams(region):
            recent = stream.core.recent()
            if recent is not None:
                recents[stream.name] = recent
        return recents

    def _stage_candidate(
        self, region: str, model: Any, tick_index: int
    ) -> List[DriftEvent]:
        """Deploy one finished region refit and open (or skip) its trial."""
        policy = self.coordinator.policy
        streams = self.region_streams(region)
        if not streams:
            return []
        name, version = self.coordinator.next_candidate_name(region, self.version_prefix)
        self.server.deploy(name, model, version=version)
        # Calibration recovery is independent of which model ends up serving:
        # the region's nonconformity buffers refill from post-drift data.
        for stream in streams:
            stream.core.reset_scores(keep_alpha=True)
        events: List[DriftEvent] = []
        if policy.mode == "immediate":
            self._promote_region(region, name)
            events.append(
                self.event_log.append(
                    DriftEvent(
                        kind="region_candidate_promoted",
                        step=tick_index,
                        value=0.0,
                        threshold=0.0,
                        message=f"{name} ({version}) promoted immediately for {region!r}",
                    )
                )
            )
            return events
        nominal = 1.0 - streams[0].core.calibrator.config.significance
        trial = RegionTrial(
            region,
            name,
            version,
            policy,
            nominal=nominal,
            horizon=self.horizon,
            start_steps={stream.name: stream.core.step for stream in streams},
        )
        self.coordinator.trials[region] = trial
        events.append(
            self.event_log.append(
                DriftEvent(
                    kind="region_candidate_staged",
                    step=tick_index,
                    value=float(len(streams)),
                    threshold=0.0,
                    message=(
                        f"trial of {name} ({version}) across {len(streams)} "
                        f"streams of {region!r}, verdict after "
                        f"{policy.eval_steps} scored stream-steps"
                    ),
                )
            )
        )
        return events

    def _finish_trial(
        self, trial: RegionTrial, decision: Dict[str, Any], tick_index: int
    ) -> List[DriftEvent]:
        """Promote or reject a region candidate; returns the logged events."""
        promote = bool(decision["promote"])
        self.coordinator.trials.pop(trial.region, None)
        if promote:
            self._promote_region(trial.region, trial.name)
            # The winner's residual scale differs from the incumbent's.
            for stream in self.region_streams(trial.region):
                stream.core.reset_scores(keep_alpha=True)
        elif trial.name in self.server.pool:
            # Never routed as a primary except by its own (already resolved)
            # trial submissions; in-flight stragglers fall back, zero drops.
            self.server.undeploy(trial.name)
        event = DriftEvent(
            kind="region_candidate_promoted" if promote else "region_candidate_rejected",
            step=tick_index,
            value=decision["candidate_mae"],
            threshold=decision["incumbent_mae"],
            message=(
                f"{trial.name} for {trial.region!r}: MAE "
                f"{decision['candidate_mae']:.4g} vs incumbent "
                f"{decision['incumbent_mae']:.4g}, coverage "
                f"{decision['candidate_coverage']:.1f}% vs "
                f"{decision['incumbent_coverage']:.1f}% over "
                f"{decision['scored_steps']} scored stream-steps"
            ),
        )
        return [self.event_log.append(event)]

    def _abort_trial(
        self, trial: RegionTrial, error: Exception, tick_index: int
    ) -> List[DriftEvent]:
        """Kill a trial whose candidate cannot predict; the region keeps its
        incumbent and the fleet keeps ticking (zero dropped requests)."""
        self.coordinator.trials.pop(trial.region, None)
        if trial.name in self.server.pool:
            self.server.undeploy(trial.name)
        event = DriftEvent(
            kind="region_candidate_failed",
            step=tick_index,
            value=0.0,
            threshold=0.0,
            message=(
                f"{trial.name} for {trial.region!r} failed to predict and was "
                f"undeployed: {type(error).__name__}: {error}"
            ),
        )
        return [self.event_log.append(event)]

    def _promote_region(self, region: str, name: str) -> None:
        """Atomically re-point one region's routes at a promoted candidate."""
        displaced = self._region_deployment.get(region)
        if self.router is not None:
            self.router.set_routes(
                {stream.key: name for stream in self.region_streams(region)}
            )
        else:
            # No key routing available: the promotion moves the default route
            # (single-region fleets, or a custom router the fleet respects).
            self.server.promote(name)
        self._region_deployment[region] = name
        if (
            displaced is not None
            and displaced not in self._region_deployment.values()
            and displaced in self.server.pool
            and displaced != self.server.pool.default_name
        ):
            # The displaced generation is no longer routed by any region;
            # in-flight batches keep their snapshot, so retiring it is safe.
            self.server.undeploy(displaced)

    def join_refits(self, timeout: Optional[float] = 30.0) -> None:
        """Block until all in-flight coordinated refits have finished."""
        if self.coordinator is not None:
            self.coordinator.join(timeout=timeout)

    # ------------------------------------------------------------------ #
    # Ops
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """One metrics-endpoint-ready dict for the whole fleet.

        Bundles, per stream, the rolling monitor metrics
        (:meth:`StreamingMonitor.snapshot`) and the drift-event log; plus
        the fleet-level event log, refit-coordination and spatial-aggregator
        state, and the shared server's stats (serving counters, cache
        statistics and per-deployment :class:`~repro.serving.ModelPool`
        stats) — everything a ``/metrics`` endpoint needs in one call.

        The returned structure is strictly JSON-native
        (:func:`~repro.utils.jsonsafe.json_ready` runs at the end), so the
        gateway's ``/snapshot`` endpoint can ``json.dumps`` it verbatim.
        """
        streams: Dict[str, Any] = {}
        for name, stream in self.streams.items():
            streams[name] = {
                **stream.describe(),  # JSON-sanitized name/region/node/key
                "step": stream.core.step,
                "warmed_up": stream.core.warmed_up,
                "metrics": stream.core.monitor.snapshot(),
                "events": stream.core.event_log.to_records(),
            }
        snap: Dict[str, Any] = {
            "tick": self._tick,
            "num_streams": len(self.streams),
            "streams": streams,
            "events": self.event_log.to_records(),
            "region_deployments": dict(self._region_deployment),
        }
        if self.coordinator is not None:
            snap["refits"] = self.coordinator.stats()
        if self.spatial is not None:
            snap["spatial"] = self.spatial.stats()
        if hasattr(self.server, "stats"):
            snap["server"] = self.server.stats
        return json_ready(snap)

    # ------------------------------------------------------------------ #
    # Persistence (sharded per-stream checkpoints)
    # ------------------------------------------------------------------ #
    def save(self, directory: Union[str, Path]) -> Path:
        """Persist the whole fleet; see :func:`repro.fleet.checkpoint.save_fleet`."""
        from repro.fleet.checkpoint import save_fleet

        with obs_phase("checkpoint"):
            return save_fleet(self, directory)

    @classmethod
    def load(
        cls, directory: Union[str, Path], server: Any, **kwargs: Any
    ) -> "StreamFleet":
        """Rebuild a fleet from :meth:`save`; see :func:`repro.fleet.checkpoint.load_fleet`."""
        from repro.fleet.checkpoint import load_fleet

        return load_fleet(cls, directory, server, **kwargs)

    def __repr__(self) -> str:
        return (
            f"StreamFleet({len(self.streams)} streams, tick={self._tick}, "
            f"events={len(self.event_log)})"
        )
