"""Unified declarative API: one spec -> one forecaster -> one checkpoint.

The paper benchmarks ten UQ methods over one shared base architecture; this
package generalizes that to *any* (backbone x method x config) combination as
pure configuration:

* :class:`~repro.api.spec.ForecasterSpec` — a JSON-round-trippable
  description of the combination (method + backbone + kwargs + training);
* :class:`~repro.api.forecaster.Forecaster` — the facade that builds, fits,
  forecasts, saves and loads the described model.

Typical usage::

    from repro.api import Forecaster

    forecaster = Forecaster.from_spec({
        "method": "MCDO",
        "backbone": "DCRNN",
        "training": {"history": 12, "horizon": 12, "epochs": 10},
    })
    forecaster.fit(train, val)
    result = forecaster.predict(histories)
    forecaster.save("checkpoints/mcdo-dcrnn")

    restored = Forecaster.load("checkpoints/mcdo-dcrnn")  # bit-identical
    server = restored.serve(max_batch_size=32)
"""

from repro.api.forecaster import CHECKPOINT_FORMAT_VERSION, Forecaster
from repro.api.spec import ForecasterSpec

__all__ = ["Forecaster", "ForecasterSpec", "CHECKPOINT_FORMAT_VERSION"]
