"""The :class:`Forecaster` facade: spec in, fitted + checkpointable model out.

One declarative :class:`~repro.api.spec.ForecasterSpec` describes a
(backbone x UQ method x training config) combination; the facade builds it,
fits it, forecasts with it, and round-trips it through full-state directory
checkpoints::

    forecaster = Forecaster.from_spec({"method": "MCDO", "backbone": "DCRNN"})
    forecaster.fit(train, val).save("ckpt/")
    restored = Forecaster.load("ckpt/")          # bit-identical predictions
    server = restored.serve(max_batch_size=32)   # or InferenceServer.from_checkpoint

Graph-structured backbones need a road-network adjacency; ``fit`` takes it
from the training split's :class:`~repro.graph.road_network.RoadNetwork`, and
checkpoints persist it so a loaded forecaster never needs the dataset again.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.api.spec import ForecasterSpec
from repro.core.inference import PredictionResult
from repro.data.datasets import TrafficData
from repro.uq.base import UQMethod
from repro.uq.registry import create_method
from repro.utils.serialization import load_checkpoint, save_checkpoint

#: On-disk checkpoint format revision.
CHECKPOINT_FORMAT_VERSION = 1


class Forecaster:
    """Facade over one spec-described uncertainty-aware forecaster.

    Parameters
    ----------
    spec:
        A :class:`ForecasterSpec` or a dict accepted by
        :meth:`ForecasterSpec.from_dict`.
    num_nodes:
        Number of sensors; may be omitted and inferred from the training
        data at :meth:`fit` time.
    adjacency:
        Dense road-network adjacency for graph-structured backbones; may be
        omitted and taken from the training data's network at fit time.
    rng:
        Random generator for weight init and sampling (defaults to the
        training config's seed, exactly as the underlying methods do).
    """

    def __init__(
        self,
        spec: Union[ForecasterSpec, Dict[str, Any]],
        num_nodes: Optional[int] = None,
        adjacency: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.spec = ForecasterSpec.from_dict(spec)
        self.num_nodes = num_nodes
        self.adjacency = (
            np.asarray(adjacency, dtype=np.float64) if adjacency is not None else None
        )
        self._rng = rng
        self.method: Optional[UQMethod] = None
        self._stream = None

    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(
        cls,
        spec: Union[ForecasterSpec, Dict[str, Any], str],
        num_nodes: Optional[int] = None,
        adjacency: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "Forecaster":
        """Build a facade from a spec object, dict, or JSON document."""
        if isinstance(spec, str):
            spec = ForecasterSpec.from_json(spec)
        return cls(spec, num_nodes=num_nodes, adjacency=adjacency, rng=rng)

    @property
    def fitted(self) -> bool:
        return self.method is not None and self.method.fitted

    def _check_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError("the forecaster must be fitted (or loaded) before use")

    def _needs_adjacency(self) -> bool:
        from repro.models.registry import backbone_info

        return backbone_info(self.spec.backbone).requires_adjacency

    def _build_method(self) -> UQMethod:
        if self.num_nodes is None:
            raise RuntimeError(
                "num_nodes is unknown; pass it to the constructor or call fit() first"
            )
        if self.adjacency is None and self._needs_adjacency():
            raise RuntimeError(
                f"backbone {self.spec.backbone!r} needs an adjacency matrix; pass "
                "adjacency= or fit on a dataset whose network provides one"
            )
        self.method = create_method(
            self.spec.method,
            self.num_nodes,
            config=self.spec.training_config(),
            rng=self._rng,
            backbone=self.spec.backbone,
            backbone_kwargs=self.spec.backbone_kwargs,
            adjacency=self.adjacency,
            **self.spec.method_kwargs,
        )
        return self.method

    # ------------------------------------------------------------------ #
    # Training and inference
    # ------------------------------------------------------------------ #
    def fit(self, train_data: TrafficData, val_data: TrafficData) -> "Forecaster":
        """Build the spec-described method and train it on the given splits."""
        if self.num_nodes is None:
            self.num_nodes = train_data.num_nodes
        elif self.num_nodes != train_data.num_nodes:
            raise ValueError(
                f"forecaster is configured for {self.num_nodes} nodes but the "
                f"training data has {train_data.num_nodes}"
            )
        if self.adjacency is None and self._needs_adjacency():
            self.adjacency = train_data.network.adjacency_matrix()
        self._build_method()
        self.method.fit(train_data, val_data)
        return self

    def predict(self, histories: np.ndarray, **kwargs) -> PredictionResult:
        """Probabilistic forecast for raw history windows (original scale)."""
        self._check_fitted()
        return self.method.predict(histories, **kwargs)

    def predict_on(
        self, data: TrafficData, **kwargs
    ) -> Tuple[PredictionResult, np.ndarray]:
        """Forecast every sliding window of ``data``; returns (result, targets)."""
        self._check_fitted()
        return self.method.predict_on(data, **kwargs)

    def serve(self, model_version: Optional[str] = None, **kwargs):
        """Build an (unstarted) :class:`~repro.serving.InferenceServer`."""
        self._check_fitted()
        version = model_version if model_version is not None else self.default_version()
        return self.method.serve(model_version=version, **kwargs)

    def default_version(self) -> str:
        """Stable default serving version derived from the spec."""
        return f"{self.spec.method}-{self.spec.backbone}"

    def deploy(self, server, name: str, version: Optional[str] = None):
        """Register this fitted forecaster as a named deployment on ``server``.

        Convenience over :meth:`InferenceServer.deploy
        <repro.serving.server.InferenceServer.deploy>`: the version defaults
        to the spec-derived :meth:`default_version`, so several spec variants
        deployed side by side stay distinguishable in cache namespaces and
        stats.  Returns the created :class:`~repro.serving.pool.Deployment`.
        """
        self._check_fitted()
        version = version if version is not None else self.default_version()
        return server.deploy(name, self, version=version)

    # ------------------------------------------------------------------ #
    # Online / streaming operation
    # ------------------------------------------------------------------ #
    def stream(self, **kwargs):
        """Open an online forecasting loop over this fitted model.

        Builds (and remembers) a
        :class:`~repro.streaming.StreamingForecaster` that drives
        predict → observe → update with adaptive conformal calibration and
        drift detection; keyword arguments configure it (``aci=``,
        ``detectors=``, ``server=``, ``refit_fn=``, ...).  Feed observations
        either through the returned runner or via :meth:`observe`.
        """
        self._check_fitted()
        from repro.streaming import StreamingForecaster

        self._stream = StreamingForecaster(self, **kwargs)
        return self._stream

    def observe(self, observation: np.ndarray, mask: Optional[np.ndarray] = None):
        """Ingest one observation row into the active :meth:`stream` loop."""
        if self._stream is None:
            raise RuntimeError("no active stream; call stream() first")
        return self._stream.observe(observation, mask=mask)

    def fleet(self, server=None, **kwargs):
        """Open a multi-stream fleet served by this fitted model.

        Builds a :class:`~repro.fleet.StreamFleet` whose per-tick predicts
        all funnel through one shared batched
        :class:`~repro.serving.InferenceServer` — a tick over N corridor
        streams costs ``O(ceil(N / batch))`` model calls instead of N.  When
        ``server`` is omitted a server over this model is built *and
        started*; stop it (``fleet.server.stop()``) when done.  Keyword
        arguments configure the fleet (``aci=``, ``refit_fn=``,
        ``spatial=``, ...); register corridors with
        :meth:`StreamFleet.add_stream` and drive them with
        :meth:`StreamFleet.tick`.
        """
        self._check_fitted()
        from repro.fleet import StreamFleet

        config = self.method.config
        owns_server = server is None
        if owns_server:
            server = self.serve()
            server.start()
        try:
            return StreamFleet(server, config.history, config.horizon, **kwargs)
        except BaseException:
            if owns_server:
                # Don't leak a running dispatcher thread the caller has no
                # handle to stop when the fleet itself fails to construct.
                server.stop()
            raise

    # ------------------------------------------------------------------ #
    # Full-state checkpoints
    # ------------------------------------------------------------------ #
    def save(self, directory: Union[str, Path]) -> Path:
        """Persist spec + full inference state to a checkpoint directory.

        The directory holds the spec JSON, the backbone weights (plus any
        ensemble members / snapshots), the scaler statistics, calibration
        temperatures and conformal quantiles — everything
        :meth:`load` needs to reproduce :meth:`predict` bit-identically.
        """
        self._check_fitted()
        state = self.method.get_state()
        meta = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "spec": self.spec.to_dict(),
            "num_nodes": int(self.num_nodes),
            "state": state["meta"],
        }
        arrays = dict(state["arrays"])
        if self.adjacency is not None:
            arrays["adjacency"] = self.adjacency
        return save_checkpoint(Path(directory), meta, arrays)

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "Forecaster":
        """Rebuild a forecaster from a :meth:`save` checkpoint directory."""
        meta, arrays = load_checkpoint(Path(directory))
        version = meta.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format {version!r} "
                f"(this build reads version {CHECKPOINT_FORMAT_VERSION})"
            )
        adjacency = arrays.pop("adjacency", None)
        forecaster = cls(
            ForecasterSpec.from_dict(meta["spec"]),
            num_nodes=int(meta["num_nodes"]),
            adjacency=adjacency,
        )
        forecaster._build_method()
        forecaster.method.set_state({"meta": meta["state"], "arrays": arrays})
        return forecaster

    def __repr__(self) -> str:
        status = "fitted" if self.fitted else "unfitted"
        return (
            f"Forecaster(method={self.spec.method!r}, backbone={self.spec.backbone!r}, "
            f"num_nodes={self.num_nodes}, {status})"
        )
