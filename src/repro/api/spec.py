"""Declarative forecaster specifications (JSON-round-trippable).

A :class:`ForecasterSpec` pins down one (backbone x UQ method x training
configuration) combination as plain data: it can be built from / dumped to a
JSON document, stored inside a checkpoint, and handed to
:class:`~repro.api.forecaster.Forecaster` to construct the described model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Dict

from repro.core.trainer import TrainingConfig

#: TrainingConfig field names, accepted both nested under ``training`` and flat.
_TRAINING_FIELDS = {f.name for f in dataclass_fields(TrainingConfig)}


@dataclass
class ForecasterSpec:
    """One forecaster as configuration.

    Attributes
    ----------
    method:
        A UQ method name from :data:`repro.uq.registry.METHOD_INFO`.
    backbone:
        A base-architecture name from
        :data:`repro.models.registry.BACKBONE_INFO` (aliases accepted).
    method_kwargs:
        Method-specific constructor options (``num_members``,
        ``significance``, ``awa_config`` as a dict, ...).
    backbone_kwargs:
        Architecture-specific constructor options (``hidden_channels``,
        ``num_layers``, ...), forwarded to the backbone builder.
    training:
        :class:`TrainingConfig` field overrides (``epochs``, ``history``,
        ``seed``, ...).

    Examples
    --------
    >>> spec = ForecasterSpec.from_dict(
    ...     {"method": "MCDO", "backbone": "DCRNN", "history": 6, "horizon": 3}
    ... )
    >>> spec == ForecasterSpec.from_json(spec.to_json())
    True
    """

    method: str = "DeepSTUQ"
    backbone: str = "AGCRN"
    method_kwargs: Dict[str, Any] = field(default_factory=dict)
    backbone_kwargs: Dict[str, Any] = field(default_factory=dict)
    training: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        from repro.models.registry import backbone_info
        from repro.uq.registry import method_info

        method_info(self.method)  # raises KeyError on unknown names
        self.backbone = backbone_info(self.backbone).name
        unknown = set(self.training) - _TRAINING_FIELDS
        if unknown:
            raise ValueError(
                f"unknown training fields {sorted(unknown)}; "
                f"valid fields: {sorted(_TRAINING_FIELDS)}"
            )
        self.method_kwargs = dict(self.method_kwargs)
        self.backbone_kwargs = dict(self.backbone_kwargs)
        self.training = dict(self.training)

    # ------------------------------------------------------------------ #
    def training_config(self) -> TrainingConfig:
        """Materialize the training overrides as a :class:`TrainingConfig`."""
        return TrainingConfig(**self.training)

    # ------------------------------------------------------------------ #
    # Round-tripping
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (safe to ``json.dump``)."""
        return {
            "method": self.method,
            "backbone": self.backbone,
            "method_kwargs": dict(self.method_kwargs),
            "backbone_kwargs": dict(self.backbone_kwargs),
            "training": dict(self.training),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ForecasterSpec":
        """Build a spec from a dict.

        Top-level keys are the dataclass fields; as a convenience, any
        top-level key that names a :class:`TrainingConfig` field (``epochs``,
        ``history``, ...) is folded into ``training``, so flat specs like
        ``{"backbone": "DCRNN", "method": "MCDO", "epochs": 5}`` work.
        """
        if isinstance(data, ForecasterSpec):
            return data
        data = dict(data)
        training = dict(data.pop("training", {}))
        kwargs: Dict[str, Any] = {}
        for key in ("method", "backbone", "method_kwargs", "backbone_kwargs"):
            if key in data:
                kwargs[key] = data.pop(key)
        for key in list(data):
            if key in _TRAINING_FIELDS:
                training[key] = data.pop(key)
        if data:
            raise ValueError(
                f"unknown spec keys {sorted(data)}; expected method/backbone/"
                f"method_kwargs/backbone_kwargs/training or TrainingConfig fields"
            )
        return cls(training=training, **kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "ForecasterSpec":
        return cls.from_dict(json.loads(document))
