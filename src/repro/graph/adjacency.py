"""Adjacency normalizations and graph-spectral utilities.

These produce the dense support matrices consumed by the graph-convolution
layers in :mod:`repro.nn.graph`:

* :func:`gcn_support` — ``I + D^-1/2 A D^-1/2`` (paper Eq. 3).
* :func:`symmetric_normalized_adjacency` — ``D^-1/2 A D^-1/2``.
* :func:`random_walk_matrix` — ``D^-1 A`` used by diffusion convolution.
* :func:`scaled_laplacian` / :func:`chebyshev_polynomials` — ChebNet supports.
"""

from __future__ import annotations

from typing import List

import numpy as np


def _validate_square(adjacency: np.ndarray) -> np.ndarray:
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("adjacency must be a square matrix")
    if np.any(adjacency < 0):
        raise ValueError("adjacency weights must be non-negative")
    return adjacency


def symmetric_normalized_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """``D^-1/2 A D^-1/2`` with isolated nodes handled gracefully."""
    adjacency = _validate_square(adjacency)
    degree = adjacency.sum(axis=1)
    inv_sqrt = np.zeros_like(degree)
    nonzero = degree > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degree[nonzero])
    d_inv_sqrt = np.diag(inv_sqrt)
    return d_inv_sqrt @ adjacency @ d_inv_sqrt


def gcn_support(adjacency: np.ndarray) -> np.ndarray:
    """The propagation matrix ``I + D^-1/2 A D^-1/2`` of paper Eq. 3."""
    adjacency = _validate_square(adjacency)
    return np.eye(adjacency.shape[0]) + symmetric_normalized_adjacency(adjacency)


def normalized_laplacian(adjacency: np.ndarray) -> np.ndarray:
    """Symmetric normalized Laplacian ``I - D^-1/2 A D^-1/2``."""
    adjacency = _validate_square(adjacency)
    return np.eye(adjacency.shape[0]) - symmetric_normalized_adjacency(adjacency)


def scaled_laplacian(adjacency: np.ndarray, lambda_max: float = None) -> np.ndarray:
    """Laplacian rescaled to ``[-1, 1]``: ``2 L / lambda_max - I`` (ChebNet)."""
    laplacian = normalized_laplacian(adjacency)
    if lambda_max is None:
        eigenvalues = np.linalg.eigvalsh(laplacian)
        lambda_max = float(eigenvalues.max())
    if lambda_max <= 0:
        lambda_max = 2.0
    return 2.0 * laplacian / lambda_max - np.eye(adjacency.shape[0])


def chebyshev_polynomials(adjacency: np.ndarray, order: int) -> List[np.ndarray]:
    """Chebyshev polynomials ``T_0 .. T_{order-1}`` of the scaled Laplacian."""
    if order < 1:
        raise ValueError("order must be >= 1")
    scaled = scaled_laplacian(adjacency)
    num_nodes = scaled.shape[0]
    polynomials = [np.eye(num_nodes)]
    if order > 1:
        polynomials.append(scaled)
    for _ in range(2, order):
        polynomials.append(2.0 * scaled @ polynomials[-1] - polynomials[-2])
    return polynomials


def random_walk_matrix(adjacency: np.ndarray) -> np.ndarray:
    """Row-normalized transition matrix ``D^-1 A`` (forward random walk)."""
    adjacency = _validate_square(adjacency)
    degree = adjacency.sum(axis=1)
    inv = np.zeros_like(degree)
    nonzero = degree > 0
    inv[nonzero] = 1.0 / degree[nonzero]
    return np.diag(inv) @ adjacency


def diffusion_supports(adjacency: np.ndarray) -> List[np.ndarray]:
    """Forward and backward random-walk supports used by DCRNN."""
    adjacency = _validate_square(adjacency)
    return [random_walk_matrix(adjacency), random_walk_matrix(adjacency.T)]


def gaussian_kernel_adjacency(
    distances: np.ndarray, threshold: float = 0.1, sigma: float = None
) -> np.ndarray:
    """Thresholded Gaussian kernel adjacency from pairwise distances.

    This mirrors how the DCRNN/STGCN papers build weighted adjacency from
    road distances: ``A_ij = exp(-d_ij^2 / sigma^2)`` when above ``threshold``.
    """
    distances = np.asarray(distances, dtype=np.float64)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise ValueError("distances must be a square matrix")
    finite = distances[np.isfinite(distances)]
    if sigma is None:
        sigma = float(finite.std()) if finite.size else 1.0
    if sigma <= 0:
        sigma = 1.0
    weights = np.exp(-np.square(distances / sigma))
    weights[~np.isfinite(distances)] = 0.0
    weights[weights < threshold] = 0.0
    np.fill_diagonal(weights, 0.0)
    return weights
