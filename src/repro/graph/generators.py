"""Synthetic road-network generators.

The real PEMS networks are freeway sensor networks: long corridors of
consecutive detectors joined at interchanges, giving sparse graphs whose
edge count is close to the node count (average degree about 2-3).
:func:`pems_like_network` reproduces exactly that structure for a requested
``(num_nodes, num_edges)`` pair so the synthetic datasets report the same
Table I statistics as the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.road_network import RoadNetwork


def ring_network(num_nodes: int, name: str = "ring") -> RoadNetwork:
    """A simple ring: every sensor connected to its two neighbours."""
    if num_nodes < 3:
        raise ValueError("a ring needs at least 3 nodes")
    edges = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    return RoadNetwork(num_nodes, edges, name=name)


def grid_network(rows: int, cols: int, name: str = "grid") -> RoadNetwork:
    """A rows x cols Manhattan-style grid of sensors."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return RoadNetwork(rows * cols, edges, name=name)


def corridor_network(
    num_nodes: int,
    num_corridors: int = 4,
    rng: Optional[np.random.Generator] = None,
    name: str = "corridor",
) -> RoadNetwork:
    """Several freeway corridors (paths) joined by random interchange links."""
    if num_corridors < 1 or num_nodes < num_corridors * 2:
        raise ValueError("need at least two nodes per corridor")
    rng = rng if rng is not None else np.random.default_rng()
    sizes = np.full(num_corridors, num_nodes // num_corridors)
    sizes[: num_nodes % num_corridors] += 1
    edges = []
    start = 0
    corridor_nodes = []
    for size in sizes:
        nodes = list(range(start, start + size))
        corridor_nodes.append(nodes)
        edges.extend((nodes[i], nodes[i + 1]) for i in range(size - 1))
        start += size
    # Interchanges: connect consecutive corridors at random positions.
    for a, b in zip(corridor_nodes[:-1], corridor_nodes[1:]):
        edges.append((int(rng.choice(a)), int(rng.choice(b))))
    return RoadNetwork(num_nodes, edges, name=name)


def pems_like_network(
    num_nodes: int,
    num_edges: int,
    seed: int = 0,
    name: str = "pems-like",
) -> RoadNetwork:
    """A connected freeway-style network with exactly ``num_edges`` edges.

    The construction starts from a spanning set of corridors (paths), which
    uses ``num_nodes - num_corridors`` edges, links the corridors into one
    connected component, and then adds interchange shortcuts between nearby
    corridor positions until the requested edge budget is met.  If the budget
    is below ``num_nodes - 1`` the network is a forest of corridors plus as
    many links as the budget allows (PEMS04 and PEMS07 have fewer edges than
    nodes, i.e. their sensor graphs are not connected).
    """
    if num_nodes < 2:
        raise ValueError("num_nodes must be >= 2")
    min_edges = num_nodes // 2  # keep things road-like even for tiny budgets
    if num_edges < min_edges:
        raise ValueError(f"num_edges={num_edges} too small for {num_nodes} nodes")
    rng = np.random.default_rng(seed)

    # Choose a corridor count so corridors alone stay within the edge budget.
    num_corridors = max(1, num_nodes - num_edges + max(0, (num_edges - num_nodes) // 4))
    num_corridors = min(num_corridors, num_nodes // 2)
    num_corridors = max(num_corridors, 1)

    order = rng.permutation(num_nodes)
    corridors = np.array_split(order, num_corridors)
    edges = set()

    def add_edge(u: int, v: int) -> bool:
        if u == v:
            return False
        key = (min(u, v), max(u, v))
        if key in edges:
            return False
        edges.add(key)
        return True

    for corridor in corridors:
        for u, v in zip(corridor[:-1], corridor[1:]):
            if len(edges) >= num_edges:
                break
            add_edge(int(u), int(v))

    # Link consecutive corridors so the graph tends toward a single component.
    for a, b in zip(corridors[:-1], corridors[1:]):
        if len(edges) >= num_edges:
            break
        add_edge(int(rng.choice(a)), int(rng.choice(b)))

    # Spend the remaining budget on interchange shortcuts between random
    # sensors that are near each other in corridor order (locality keeps the
    # graph planar-ish like a real road network).
    attempts = 0
    max_attempts = 50 * num_edges
    max_offset = max(3, num_nodes // 10)
    while len(edges) < num_edges and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(num_nodes))
        offset = int(rng.integers(1, max_offset))
        v = (u + offset) % num_nodes
        add_edge(u, v)

    # Rare fall-back for tight budgets on small graphs: any non-duplicate pair.
    while len(edges) < num_edges:
        u, v = rng.choice(num_nodes, size=2, replace=False)
        add_edge(int(u), int(v))

    return RoadNetwork(num_nodes, sorted(edges), name=name)
