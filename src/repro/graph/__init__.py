"""Road-network substrate: graph construction, generators and normalizations.

A traffic sensor network is modelled as an undirected weighted graph whose
nodes are sensors and whose edges are road segments (paper Section IV-A).
This package provides the :class:`RoadNetwork` container, synthetic network
generators that match the topology statistics of the PEMS datasets, and the
adjacency normalizations used by the different graph convolutions.
"""

from repro.graph.road_network import RoadNetwork
from repro.graph.generators import (
    corridor_network,
    grid_network,
    pems_like_network,
    ring_network,
)
from repro.graph.adjacency import (
    chebyshev_polynomials,
    diffusion_supports,
    gaussian_kernel_adjacency,
    gcn_support,
    normalized_laplacian,
    random_walk_matrix,
    scaled_laplacian,
    symmetric_normalized_adjacency,
)

__all__ = [
    "RoadNetwork",
    "grid_network",
    "ring_network",
    "corridor_network",
    "pems_like_network",
    "symmetric_normalized_adjacency",
    "gcn_support",
    "normalized_laplacian",
    "scaled_laplacian",
    "random_walk_matrix",
    "chebyshev_polynomials",
    "diffusion_supports",
    "gaussian_kernel_adjacency",
]
