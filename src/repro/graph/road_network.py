"""The :class:`RoadNetwork` container."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np


class RoadNetwork:
    """An undirected, weighted road-sensor graph.

    Parameters
    ----------
    num_nodes:
        Number of sensors in the network.
    edges:
        Iterable of ``(u, v)`` or ``(u, v, weight)`` tuples with
        ``0 <= u, v < num_nodes``.  Duplicate edges and self-loops are
        rejected so the edge count matches the dataset statistics exactly.
    name:
        Optional human-readable name (e.g. ``"PEMS08"``).
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Tuple[int, ...]],
        name: str = "road-network",
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = int(num_nodes)
        self.name = name
        self._edges: List[Tuple[int, int, float]] = []
        seen = set()
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                weight = 1.0
            elif len(edge) == 3:
                u, v, weight = edge
            else:
                raise ValueError(f"edges must be (u, v) or (u, v, weight), got {edge}")
            u, v = int(u), int(v)
            if u == v:
                raise ValueError(f"self-loop on node {u} is not allowed")
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise ValueError(f"edge ({u}, {v}) references a node outside [0, {num_nodes})")
            key = (min(u, v), max(u, v))
            if key in seen:
                raise ValueError(f"duplicate edge {key}")
            seen.add(key)
            self._edges.append((u, v, float(weight)))

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def edges(self) -> List[Tuple[int, int, float]]:
        return list(self._edges)

    def degree(self) -> np.ndarray:
        """Unweighted degree of every node."""
        deg = np.zeros(self.num_nodes, dtype=np.int64)
        for u, v, _ in self._edges:
            deg[u] += 1
            deg[v] += 1
        return deg

    def adjacency_matrix(self, weighted: bool = True) -> np.ndarray:
        """Dense symmetric adjacency matrix."""
        adj = np.zeros((self.num_nodes, self.num_nodes))
        for u, v, weight in self._edges:
            value = weight if weighted else 1.0
            adj[u, v] = value
            adj[v, u] = value
        return adj

    def to_networkx(self) -> nx.Graph:
        """Export as a ``networkx.Graph`` (used for connectivity checks)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_nodes))
        graph.add_weighted_edges_from(self._edges)
        return graph

    def is_connected(self) -> bool:
        return nx.is_connected(self.to_networkx())

    def neighbors(self, node: int) -> List[int]:
        result = []
        for u, v, _ in self._edges:
            if u == node:
                result.append(v)
            elif v == node:
                result.append(u)
        return sorted(result)

    def shortest_path_hops(self) -> np.ndarray:
        """All-pairs shortest-path hop counts (``inf`` for disconnected pairs).

        Used by the synthetic traffic generator to create spatially correlated
        signals whose correlation decays with network distance.
        """
        graph = self.to_networkx()
        hops = np.full((self.num_nodes, self.num_nodes), np.inf)
        for source, lengths in nx.all_pairs_shortest_path_length(graph):
            for target, length in lengths.items():
                hops[source, target] = length
        return hops

    def __repr__(self) -> str:
        return f"RoadNetwork(name={self.name!r}, nodes={self.num_nodes}, edges={self.num_edges})"

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_adjacency(cls, adjacency: np.ndarray, name: str = "road-network") -> "RoadNetwork":
        """Build a network from a dense (symmetric) adjacency matrix."""
        adjacency = np.asarray(adjacency)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError("adjacency must be a square matrix")
        num_nodes = adjacency.shape[0]
        edges = []
        for u in range(num_nodes):
            for v in range(u + 1, num_nodes):
                weight = max(adjacency[u, v], adjacency[v, u])
                if weight > 0:
                    edges.append((u, v, float(weight)))
        return cls(num_nodes, edges, name=name)
