"""DeepSTUQ reproduction: unified uncertainty quantification for traffic forecasting.

This package reproduces "Uncertainty Quantification for Traffic Forecasting:
A Unified Approach" (ICDE 2023).  It contains:

* ``repro.tensor`` / ``repro.nn`` / ``repro.optim`` — a from-scratch NumPy
  deep-learning substrate (autodiff, layers, optimizers).
* ``repro.graph`` / ``repro.data`` — road-network and synthetic PEMS traffic
  data substrates.
* ``repro.models`` — the AGCRN base model and the paper's point-prediction
  baselines.
* ``repro.uq`` — uncertainty-quantification methods (MVE, MC dropout,
  temperature scaling, FGE, conformal, CFRNN, ...) and the DeepSTUQ pipeline.
* ``repro.core`` — the DeepSTUQ training stages: combined loss, AWA
  re-training, temperature calibration, Monte-Carlo inference.
* ``repro.metrics`` / ``repro.evaluation`` — metrics and the experiment
  harness regenerating every table and figure of the paper.
* ``repro.serving`` — request micro-batching, LRU prediction caching and a
  threaded inference server over the vectorized Monte-Carlo engine.
* ``repro.streaming`` — the online loop: adaptive conformal calibration,
  rolling monitors, drift detection and auto-recalibrating serving.
* ``repro.fleet`` — fleet-scale orchestration: many per-corridor streams
  over one shared batched server, spatial drift aggregation, coordinated
  region refits and whole-fleet checkpoints.
* ``repro.api`` — the unified Forecaster facade: declarative
  (backbone x method x config) specs, one fit/predict surface and
  full-state directory checkpoints.
* ``repro.obs`` — the observability layer: end-to-end request tracing,
  per-tick phase profiling and structured event logging (off by default,
  constant-time when off).
"""

__version__ = "1.0.0"

__all__ = [
    "tensor",
    "nn",
    "optim",
    "graph",
    "data",
    "models",
    "uq",
    "core",
    "metrics",
    "evaluation",
    "serving",
    "streaming",
    "fleet",
    "api",
    "obs",
    "utils",
]
